//! PR 7 parity-maintenance properties: the per-row parity words that the
//! block kernels maintain *incrementally* (one fused XOR-fold per write)
//! must always equal a from-scratch recompute over the row data — for
//! every vector operation, every SEW, masked/tail windows, arbitrary
//! operation sequences, and across a mid-sequence `save_registers` /
//! `restore_registers` round-trip. [`Csb::parity_consistent`] *is* that
//! recompute: it folds every live row and compares against the stored
//! parity word, so any kernel that forgets (or double-counts) a delta
//! fails here immediately.
//!
//! Also pins the two fault-layer behaviours the incremental scheme must
//! preserve: a strike is localized to exactly the struck subarray row,
//! and the spare allocator wear-levels across slots instead of burning
//! the same spare repeatedly.

use cape_csb::{Csb, CsbGeometry, FaultConfig, FaultKind};
use cape_ucode::{CompiledOp, LogicOp, VectorOp};
use proptest::prelude::*;

const CHAINS: usize = 4;

/// Every operation shape the sequencer accepts (same register layout as
/// the block differential suite: vd=3, vs1=1, vs2=2, mask v0, sparse
/// bits in v4), with scalar specializations that exercise the zero,
/// sign-bit and all-ones kernel fast paths.
fn all_ops() -> Vec<VectorOp> {
    let mut ops = vec![
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Add {
            vd: 1,
            vs1: 1,
            vs2: 2,
        }, // vd aliases vs1
        VectorOp::Sub {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::And {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Or {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Xor {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mseq {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Msne {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: false,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: false,
            signed: false,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: true,
            signed: true,
        },
        VectorOp::Macc {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mv { vd: 3, vs: 1 },
        VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::Cpop { vs: 4 },
        VectorOp::First { vs: 4 },
        VectorOp::Vid { vd: 3 },
        VectorOp::Increment { vd: 3 },
    ];
    for rs in [0u32, 0x8000_0001, u32::MAX] {
        ops.extend([
            VectorOp::AddScalar { vd: 3, vs1: 1, rs },
            VectorOp::SubScalar { vd: 3, vs1: 1, rs },
            VectorOp::RsubScalar { vd: 3, vs1: 1, rs },
            VectorOp::MulScalar { vd: 3, vs1: 1, rs },
            VectorOp::MseqScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsneScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsltScalar {
                vd: 3,
                vs1: 1,
                rs,
                signed: true,
            },
            VectorOp::MinMaxScalar {
                vd: 3,
                vs1: 1,
                rs,
                max: true,
                signed: false,
            },
            VectorOp::LogicScalar {
                op: LogicOp::And,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Or,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Xor,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::Broadcast { vd: 3, rs },
        ]);
    }
    for sh in [1u32, 7, 31] {
        ops.extend([
            VectorOp::ShiftLeft { vd: 3, vs: 1, sh },
            VectorOp::ShiftRight { vd: 3, vs: 1, sh },
            VectorOp::ShiftRightArith { vd: 3, vs: 1, sh },
        ]);
    }
    ops
}

/// A CSB with deterministic pseudorandom register contents, a mask in
/// v0 and sparse bits in v4, with the fault layer armed quiescent so
/// the kernels run their parity-maintaining (`PARITY = true`) paths.
fn armed_csb() -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(CHAINS));
    seed_registers(&mut csb);
    csb.enable_fault_injection(FaultConfig::quiescent(4));
    csb
}

fn seed_registers(csb: &mut Csb) {
    let n = csb.max_vl();
    let mut state = 0x9E37_79B9_u32;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for reg in [0usize, 1, 2, 3] {
        let vals: Vec<u32> = (0..n).map(|_| next()).collect();
        csb.write_vector(reg, &vals);
    }
    let sparse: Vec<u32> = (0..n).map(|e| u32::from(e % 97 == 41)).collect();
    csb.write_vector(4, &sparse);
}

/// The masked/tail windows the differential suite sweeps: full, restart
/// (vstart > 0), tail (vl < max) and both at once.
const WINDOWS: [(usize, usize); 4] = [(0, 128), (5, 128), (0, 97), (17, 103)];

#[test]
fn every_op_keeps_parity_consistent_at_every_sew_and_window() {
    for op in &all_ops() {
        for sew in [8usize, 16, 32] {
            for &(vstart, vl) in &WINDOWS {
                let mut csb = armed_csb();
                csb.set_active_window(vstart, vl);
                let compiled = CompiledOp::compile(op, sew);
                csb.execute_program(compiled.program());
                assert!(
                    csb.parity_consistent(),
                    "incremental parity diverged from recompute: \
                     {op:?} sew={sew} window={vstart}..{vl}"
                );
            }
        }
    }
}

/// One step of a random program: which op, at which SEW, over which
/// window.
fn step() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    let nops = all_ops().len();
    (0..nops, 0usize..3, 0usize..4).prop_map(|(op, sew, win)| {
        let (vstart, vl) = WINDOWS[win];
        (op, [8usize, 16, 32][sew], vstart, vl)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary microop sequences — with a `save_registers` /
    /// `restore_registers` round-trip spliced in mid-sequence — keep
    /// the incrementally-maintained parity equal to a from-scratch
    /// recompute after every single program, and leave the armed CSB's
    /// architectural results bit-identical to an unarmed twin running
    /// the same sequence (fault mode must observe, never perturb).
    #[test]
    fn random_sequences_with_save_restore_keep_parity_exact(
        steps in proptest::collection::vec(step(), 1..10),
        restore_at in 0usize..10,
    ) {
        let ops = all_ops();
        let mut armed = armed_csb();
        let mut clean = Csb::new(CsbGeometry::new(CHAINS));
        seed_registers(&mut clean);

        let mut snap = None;
        for (i, &(op, sew, vstart, vl)) in steps.iter().enumerate() {
            if i == restore_at % steps.len() {
                // Context switch away and back: the snapshot restore
                // runs through the same parity-maintaining write path
                // as the kernels, with no rescan.
                snap = Some((armed.save_registers(), clean.save_registers()));
            }
            let compiled = CompiledOp::compile(&ops[op], sew);
            armed.set_active_window(vstart, vl);
            clean.set_active_window(vstart, vl);
            armed.execute_program(compiled.program());
            clean.execute_program(compiled.program());
            prop_assert!(
                armed.parity_consistent(),
                "parity diverged after step {i}: {:?} sew={sew}",
                ops[op]
            );
            if let Some((a, c)) = snap.take() {
                armed.restore_registers(&a);
                clean.restore_registers(&c);
                prop_assert!(
                    armed.parity_consistent(),
                    "parity diverged across restore_registers at step {i}"
                );
            }
        }

        // Nothing was injected, so vigilance must have seen nothing…
        prop_assert_eq!(armed.pending_faults(), 0);
        let stats = armed.fault_stats();
        prop_assert_eq!(stats.detected_parity, 0, "false positive parity hit");
        // …and must not have perturbed the architecture.
        for reg in [0usize, 1, 2, 3, 4] {
            let n = armed.max_vl();
            prop_assert_eq!(
                armed.read_vector(reg, n),
                clean.read_vector(reg, n),
                "armed run diverged from clean twin in v{}", reg
            );
        }
    }
}

#[test]
fn injected_fault_is_localized_to_the_struck_row() {
    // Per-row parity pinpoints a strike to its subarray row: flag the
    // fault and the ledger must name exactly (subarray 11, row 7) in
    // exactly one block — not "somewhere in the block".
    let mut csb = armed_csb();
    csb.inject_fault(
        2,
        FaultKind::Transient {
            lane: 5,
            subarray: 11,
            row: 7,
            mask: 0x0040_0001,
            late: false,
        },
    );
    let _ = csb.scrub().expect("fault mode armed");
    assert_eq!(csb.pending_faults(), 1, "strike must be detected");
    let struck = csb.struck_rows();
    assert_eq!(struck.len(), 1, "exactly one row struck: {struck:?}");
    assert_eq!(struck[0].subarray, 11, "wrong subarray: {struck:?}");
    assert_eq!(struck[0].row, 7, "wrong row: {struck:?}");
    // Healing still works off the localized record.
    assert!(csb.quarantine_and_remap().fully_recovered());
    assert!(csb.parity_consistent(), "spare must carry rebuilt parity");
}

#[test]
fn spare_allocation_wear_levels_across_slots() {
    // Strike the same logical block three times, healing between
    // strikes: each strike after the first lands on the freshly-mapped
    // spare, so every heal asks the allocator for a new slot within one
    // shard. The round-robin cursor must spread those remaps across
    // distinct spare slots and record each in `FaultStats::spare_remaps`
    // (the old first-fit allocator would be indistinguishable here only
    // if it never reused a slot — which is exactly the property).
    let mut csb = Csb::new(CsbGeometry::new(CHAINS));
    csb.enable_fault_injection(FaultConfig::quiescent(3));
    for round in 0u8..3 {
        csb.inject_fault(
            0,
            FaultKind::Transient {
                lane: 0,
                subarray: round,
                row: round,
                mask: 1,
                late: false,
            },
        );
        let _ = csb.scrub().expect("armed");
        assert!(csb.quarantine_and_remap().fully_recovered());
    }
    let stats = csb.fault_stats();
    assert_eq!(stats.blocks_remapped, 3);
    let used: Vec<u64> = stats.spare_remaps.clone();
    assert_eq!(
        used.iter().sum::<u64>(),
        3,
        "every remap recorded: {used:?}"
    );
    assert_eq!(
        used.iter().filter(|&&n| n > 0).count(),
        3,
        "round-robin must use three distinct spare slots, got {used:?}"
    );
}

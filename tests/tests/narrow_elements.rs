//! End-to-end tests of sub-32-bit element support (Section V-A) through
//! the full machine, plus a realistic e8 use case: image thresholding.

use cape_core::{CapeConfig, CapeMachine};
use cape_isa::assemble;
use cape_mem::MainMemory;

fn run(src: &str, setup: impl FnOnce(&mut MainMemory)) -> (MainMemory, cape_core::RunReport) {
    let mut machine = CapeMachine::new(CapeConfig::tiny(4));
    let mut mem = MainMemory::new();
    setup(&mut mem);
    let prog = assemble(src).expect("assembles");
    let report = machine.run(&prog, &mut mem).expect("runs");
    (mem, report)
}

#[test]
fn e8_image_threshold_pipeline() {
    // Binarize an 8-bit image at a threshold: vmsltu.vx + vmerge, all at
    // SEW=8 — the paper's narrow-element configuration on a workload
    // where it genuinely applies (pixels are bytes).
    let pixels: Vec<u32> = (0..300u32).map(|i| (i * 37) % 256).collect();
    let src = r"
        li   s0, 300
        li   s1, 0x1000
        li   s3, 0x9000
        li   s4, 128          # threshold
        li   s5, 255
        loop:
          vsetvli t0, s0, e8, m1
          vle32.v v1, (s1)
          vmsltu.vx v0, v1, s4   # below-threshold mask
          vmv.v.x v2, zero
          vmv.v.x v3, s5
          vmerge.vvm v4, v3, v2, v0  # below -> 0, else -> 255
          vse32.v v4, (s3)
          sub  s0, s0, t0
          slli t1, t0, 2
          add  s1, s1, t1
          add  s3, s3, t1
          bnez s0, loop
        halt
    ";
    let px = pixels.clone();
    let (mem, report) = run(src, move |m| m.write_u32_slice(0x1000, &px));
    let out = mem.read_u32_slice(0x9000, 300);
    for (i, (&got, &p)) in out.iter().zip(&pixels).enumerate() {
        let want = if p < 128 { 0 } else { 255 };
        assert_eq!(got, want, "pixel {i} = {p}");
    }
    assert!(report.cycles > 0);
}

#[test]
fn e16_dot_product_matches_mod_65536() {
    let a: Vec<u32> = (0..200u32).map(|i| i % 251).collect();
    let b: Vec<u32> = (0..200u32).map(|i| (i * 7) % 241).collect();
    let src = r"
        li   s0, 200
        li   s1, 0x1000
        li   s2, 0x40000
        vsetvli t0, s0, e16, m1
        vmv.v.x v6, zero
        loop:
          vsetvli t0, s0, e16, m1
          vle32.v v1, (s1)
          vle32.v v2, (s2)
          vmul.vv v3, v1, v2
          vredsum.vs v6, v3, v6
          sub  s0, s0, t0
          slli t1, t0, 2
          add  s1, s1, t1
          add  s2, s2, t1
          bnez s0, loop
        vmv.x.s t5, v6
        li   a0, 0x90000
        sw   t5, 0(a0)
        halt
    ";
    let (ac, bc) = (a.clone(), b.clone());
    let (mem, _) = run(src, move |m| {
        m.write_u32_slice(0x1000, &ac);
        m.write_u32_slice(0x40000, &bc);
    });
    let want = a.iter().zip(&b).fold(0u16, |s, (&x, &y)| {
        s.wrapping_add((x as u16).wrapping_mul(y as u16))
    });
    assert_eq!(mem.read_u32(0x90000), u32::from(want));
}

#[test]
fn sew_switch_mid_program_is_honored() {
    // Compute at e8, then recompute the same data at e32: results differ
    // exactly by the wrap width.
    let src = r"
        li   t0, 4
        li   a0, 0x1000
        vsetvli t1, t0, e8, m1
        vle32.v v1, (a0)
        vadd.vv v2, v1, v1
        li   a1, 0x2000
        vse32.v v2, (a1)
        vsetvli t1, t0, e32, m1
        vadd.vv v3, v1, v1
        li   a2, 0x3000
        vse32.v v3, (a2)
        halt
    ";
    let (mem, _) = run(src, |m| m.write_u32_slice(0x1000, &[200, 100, 130, 7]));
    assert_eq!(mem.read_u32_slice(0x2000, 4), vec![144, 200, 4, 14]); // mod 256
                                                                      // The e32 pass reads the register reloaded? v1 was loaded once; its
                                                                      // stored cells hold the full 32-bit values, so e32 doubling is exact.
    assert_eq!(mem.read_u32_slice(0x3000, 4), vec![400, 200, 260, 14]);
}

//! Heavier exercises of the Section VII memory-only modes.

use cape_csb::CsbGeometry;
use cape_memmode::{KvError, KvStore, Scratchpad, VictimCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

#[test]
fn kv_store_agrees_with_a_hashmap_under_random_traffic() {
    let mut kv = KvStore::new(CsbGeometry::new(2));
    let mut oracle: HashMap<u32, u32> = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(42);
    for step in 0..3000 {
        let key = rng.gen_range(1..=400u32);
        match rng.gen_range(0..3) {
            0 => {
                let value = rng.gen();
                if oracle.len() < kv.capacity() || oracle.contains_key(&key) {
                    kv.insert(key, value).expect("capacity not exceeded");
                    oracle.insert(key, value);
                }
            }
            1 => {
                assert_eq!(
                    kv.get(key),
                    oracle.get(&key).copied(),
                    "step {step} get {key}"
                );
            }
            _ => {
                let got = kv.remove(key);
                match oracle.remove(&key) {
                    Some(v) => assert_eq!(got, Ok(v), "step {step} remove {key}"),
                    None => assert_eq!(got, Err(KvError::NotFound), "step {step}"),
                }
            }
        }
        assert_eq!(kv.len(), oracle.len(), "step {step}");
    }
    // Final sweep: every surviving pair is retrievable.
    for (&k, &v) in &oracle {
        assert_eq!(kv.get(k), Some(v));
    }
}

#[test]
fn victim_cache_behaves_like_a_fifo_set() {
    let mut vc = VictimCache::new(CsbGeometry::new(1)); // 32 lines
    let line = |a: u32| -> [u32; 16] { std::array::from_fn(|i| a ^ (i as u32)) };
    // Fill beyond capacity and verify the FIFO horizon.
    for a in 0..48u32 {
        vc.insert(a, &line(a));
    }
    for a in 0..16u32 {
        assert!(vc.probe(a).is_none(), "line {a} should have been evicted");
    }
    for a in 16..48u32 {
        assert_eq!(vc.probe(a), Some(line(a)), "line {a} should be resident");
    }
}

#[test]
fn victim_cache_as_l2_victim_buffer_improves_hits() {
    // Emulate an L2 evicting a hot set that is then re-requested.
    let mut vc = VictimCache::new(CsbGeometry::new(4));
    let hot: Vec<u32> = (0..64).map(|i| 0x1000 + i).collect();
    for &a in &hot {
        vc.insert(a, &[a; 16]);
    }
    let mut hits = 0;
    for &a in &hot {
        if vc.probe(a).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, 64, "all victims must be recoverable");
    assert!(vc.probe_cycles() > 0);
}

#[test]
fn scratchpad_stores_the_full_register_file_capacity() {
    let mut sp = Scratchpad::new(CsbGeometry::new(2));
    let n = sp.capacity_words();
    assert_eq!(n, 2 * 32 * 32); // chains x lanes x registers
                                // Write a pattern over the whole capacity and read it back.
    let data: Vec<u32> = (0..n as u32).map(|w| w.wrapping_mul(0x0101_0101)).collect();
    sp.write_block(0, &data);
    assert_eq!(sp.read_block(0, n), data);
}

//! Whole-system tests: assembly text in, verified memory out.

use cape_core::{CapeConfig, CapeMachine};
use cape_isa::{assemble, Program};
use cape_mem::MainMemory;

fn run(config: CapeConfig, src: &str, setup: impl FnOnce(&mut MainMemory)) -> MainMemory {
    let mut machine = CapeMachine::new(config);
    let mut mem = MainMemory::new();
    setup(&mut mem);
    let prog = assemble(src).expect("assembles");
    machine.run(&prog, &mut mem).expect("runs");
    mem
}

#[test]
fn saxpy_like_kernel_is_exact() {
    let src = r"
        li   s0, 500
        li   s1, 0x1000
        li   s2, 0x2000
        li   s3, 0x3000
        li   s4, 7          # scalar multiplier
        loop:
          vsetvli t0, s0
          vle32.v v1, (s1)
          vmul.vx v3, v1, s4
          vle32.v v2, (s2)
          vadd.vv v4, v3, v2
          vse32.v v4, (s3)
          sub s0, s0, t0
          slli t1, t0, 2
          add s1, s1, t1
          add s2, s2, t1
          add s3, s3, t1
          bnez s0, loop
        halt
    ";
    let a: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let b: Vec<u32> = (0..500u32).map(|i| i ^ 0xFFFF_0000).collect();
    let (ac, bc) = (a.clone(), b.clone());
    let mem = run(CapeConfig::tiny(4), src, move |m| {
        m.write_u32_slice(0x1000, &ac);
        m.write_u32_slice(0x2000, &bc);
    });
    for i in 0..500 {
        let want = a[i].wrapping_mul(7).wrapping_add(b[i]);
        assert_eq!(mem.read_u32(0x3000 + (i as u64) * 4), want, "element {i}");
    }
}

#[test]
fn results_are_identical_across_csb_sizes() {
    // The same program must produce the same answers regardless of how
    // many chains the machine has (vector-length agnosticism).
    let src = r"
        li   s0, 300
        li   s1, 0x1000
        li   s3, 0x3000
        li   s4, 0
        loop:
          vsetvli t0, s0
          vle32.v v1, (s1)
          vmslt.vx v2, v1, s4   # negative elements (signed)
          vcpop.m t2, v2
          add s5, s5, t2
          sub s0, s0, t0
          slli t1, t0, 2
          add s1, s1, t1
          bnez s0, loop
        sw s5, 0(s3)
        halt
    ";
    let data: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let mut results = Vec::new();
    for chains in [1usize, 2, 4, 16] {
        let d = data.clone();
        let mem = run(CapeConfig::tiny(chains), src, move |m| {
            m.write_u32_slice(0x1000, &d);
        });
        results.push(mem.read_u32(0x3000));
    }
    let want = data.iter().filter(|&&x| (x as i32) < 0).count() as u32;
    assert!(results.iter().all(|&r| r == want), "{results:?} vs {want}");
}

#[test]
fn runs_are_deterministic() {
    let w = cape_workloads::phoenix::Kmeans {
        n: 200,
        k: 3,
        iters: 2,
    };
    let r1 = cape_workloads::run_cape(&w, &CapeConfig::tiny(4));
    let r2 = cape_workloads::run_cape(&w, &CapeConfig::tiny(4));
    assert_eq!(r1.digest, r2.digest);
    assert_eq!(r1.report.cycles, r2.report.cycles);
    assert_eq!(r1.report.microops, r2.report.microops);
}

#[test]
fn binary_roundtrip_of_a_whole_workload_program() {
    // Encode a real workload program to machine words and decode it back.
    let w = cape_workloads::phoenix::Matmul { n: 8 };
    let mut mem = MainMemory::new();
    let prog = {
        use cape_workloads::Workload;
        w.cape_setup(&mut mem)
    };
    let words = prog.encode();
    let back = Program::decode(&words).expect("decodes");
    assert_eq!(back, prog);
}

#[test]
fn larger_csb_is_never_slower_on_data_parallel_work() {
    let w = cape_workloads::micro::Vvadd { n: 3000 };
    let small = cape_workloads::run_cape(&w, &CapeConfig::tiny(2));
    let big = cape_workloads::run_cape(&w, &CapeConfig::tiny(32));
    assert_eq!(small.digest, big.digest);
    assert!(
        big.report.cycles <= small.report.cycles,
        "32 chains ({}) must beat 2 chains ({})",
        big.report.cycles,
        small.report.cycles
    );
}

#[test]
fn vector_engine_reports_busy_cycles() {
    let w = cape_workloads::micro::DotProd { n: 1000 };
    let run = cape_workloads::run_cape(&w, &CapeConfig::tiny(4));
    assert!(run.report.cp.vector_busy_cycles > 0);
    assert!(run.report.cp.vector > 0);
    assert!(run.report.vcu_cycles > 0);
    assert!(run.report.vmu_cycles > 0);
}

#[test]
fn phoenix_loops_hit_the_program_cache() {
    // Strip-mined loops re-issue the same static vector instructions, so
    // after the first strip compiles them the VCU program cache serves
    // every repeat. Sizes are chosen so each workload runs several strips
    // on the 4-chain (128-lane) test machine.
    use cape_workloads::phoenix::{Histogram, Kmeans, LinearRegression, StringMatch, WordCount};
    let workloads: Vec<Box<dyn cape_workloads::Workload>> = vec![
        Box::new(LinearRegression { n: 8_192 }),
        Box::new(Histogram { n: 8_192 }),
        Box::new(Kmeans {
            n: 2_048,
            k: 4,
            iters: 5,
        }),
        Box::new(WordCount {
            n: 8_192,
            vocab: 64,
            top: 8,
        }),
        Box::new(StringMatch {
            n: 8_192,
            needles: 4,
        }),
    ];
    for w in workloads {
        let run = cape_workloads::run_cape(w.as_ref(), &CapeConfig::tiny(4));
        let r = run.report;
        assert!(
            r.program_cache_hit_rate() > 0.9,
            "{}: hit rate {:.3} (hits {} misses {})",
            w.name(),
            r.program_cache_hit_rate(),
            r.program_cache_hits,
            r.program_cache_misses
        );
    }
}

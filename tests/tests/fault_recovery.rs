//! Machine-layer self-healing properties: save → inject → detect →
//! restore-from-snapshot must yield results bit-identical to an
//! uninjected run, for every fault class, strike location and strike
//! timing. (The `Csb`-layer version of these properties lives in the
//! `cape-csb` unit tests; this file drives the same invariants through
//! `CapeMachine`'s checkpointed slice loop — the exact recovery
//! protocol `cape-engine` runs in production.)

use cape_core::{CapeConfig, CapeMachine, FaultConfig, FaultKind};
use cape_cp::SliceOutcome;
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;
use proptest::prelude::*;

const CHAINS: usize = 4;
const IN_A: u64 = 0x1000;
const IN_B: u64 = 0x40000;
const OUT: u64 = 0x80000;

/// Strip-mined `out[i] = a[i] * b[i] + a[i]` kernel: enough vector
/// instructions per iteration that a small `max_vector` yields several
/// slices, giving strikes distinct checkpoints to corrupt.
fn kernel(n: usize) -> Program {
    let mut p = Program::builder();
    p.li(Reg::S0, n as i64);
    p.li(Reg::S1, IN_A as i64);
    p.li(Reg::S2, IN_B as i64);
    p.li(Reg::S3, OUT as i64);
    p.label("loop");
    p.vsetvli(Reg::T0, Reg::S0);
    p.vle32(VReg::V1, Reg::S1);
    p.vle32(VReg::V2, Reg::S2);
    p.vmul_vv(VReg::V3, VReg::V1, VReg::V2);
    p.vadd_vv(VReg::V4, VReg::V3, VReg::V1);
    p.vse32(VReg::V4, Reg::S3);
    p.sub(Reg::S0, Reg::S0, Reg::T0);
    p.slli(Reg::T1, Reg::T0, 2);
    p.add(Reg::S1, Reg::S1, Reg::T1);
    p.add(Reg::S2, Reg::S2, Reg::T1);
    p.add(Reg::S3, Reg::S3, Reg::T1);
    p.bnez(Reg::S0, "loop");
    p.halt();
    p.build().expect("builds")
}

fn memory(a: &[u32], b: &[u32]) -> MainMemory {
    let mut mem = MainMemory::new();
    mem.write_u32_slice(IN_A, a);
    mem.write_u32_slice(IN_B, b);
    mem
}

/// The clean reference: one uninterrupted run on a fault-free machine.
fn reference(program: &Program, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut m = CapeMachine::new(CapeConfig::tiny(CHAINS));
    let mut mem = memory(a, b);
    m.run(program, &mut mem).expect("clean run halts");
    mem.read_u32_slice(OUT, a.len())
}

/// Runs `program` sliced, injecting `strikes` (slice index → fault) at
/// slice boundaries, healing exactly the way `cape-engine` does:
/// checkpoint before each slice, scrub after it, and on any detection
/// quarantine + remap + roll back to the checkpoint. Returns the output
/// region and the number of rollbacks performed.
fn run_with_healing(
    program: &Program,
    a: &[u32],
    b: &[u32],
    strikes: &[(u64, usize, FaultKind)],
) -> (Vec<u32>, u64) {
    let mut machine = CapeMachine::new(CapeConfig::tiny(CHAINS));
    machine.enable_fault_injection(FaultConfig::quiescent(strikes.len() + 1));
    let mut cp = machine.new_control_processor();
    let mut ctx = machine.fresh_context();
    let mut mem = memory(a, b);
    let mut slice: u64 = 0;
    let mut retries: u64 = 0;
    let mut struck = vec![false; strikes.len()];
    loop {
        let checkpoint_cp = cp.clone();
        let checkpoint_mem = mem.clone();
        machine.restore_context(&ctx);
        let outcome = machine
            .run_slice(&mut cp, program, &mut mem, 2, u64::MAX)
            .expect("kernel has no processor errors");
        // Land every strike scheduled for this slice — at most once,
        // so a rolled-back slice re-executes on healed silicon.
        for (i, (at, chain, kind)) in strikes.iter().enumerate() {
            if *at == slice && !struck[i] {
                machine.inject_csb_fault(*chain, *kind);
                struck[i] = true;
            }
        }
        let _ = machine.scrub().expect("fault mode armed");
        if machine.pending_faults() > 0 {
            let remap = machine.quarantine_and_remap();
            assert!(remap.fully_recovered(), "spares sized for the strike set");
            cp = checkpoint_cp;
            mem = checkpoint_mem;
            retries += 1;
            // `ctx` still holds the last known-good context; the next
            // iteration restores it over the healed blocks.
            continue;
        }
        ctx = machine.save_context();
        slice += 1;
        match outcome {
            SliceOutcome::Halted => break,
            SliceOutcome::Preempted => {}
            SliceOutcome::TimedOut => unreachable!("watchdog disabled"),
        }
    }
    let stats = machine.fault_stats();
    assert!(
        stats.fully_accounted(),
        "every injected fault must be attributed: {stats:?}"
    );
    (mem.read_u32_slice(OUT, a.len()), retries)
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    let loc = (0u8..16, 0u8..32, 0u8..36, any::<u32>());
    prop_oneof![
        (loc.clone(), any::<bool>()).prop_map(|((lane, subarray, row, mask), value)| {
            FaultKind::StuckAt {
                lane,
                subarray,
                row,
                mask: mask | 1,
                value,
            }
        }),
        loc.prop_map(|(lane, subarray, row, mask)| {
            FaultKind::Transient {
                lane,
                subarray,
                row,
                mask: mask | 1,
                late: false,
            }
        }),
        Just(FaultKind::DeadBlock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One random fault, struck at a random slice boundary of a random
    /// kernel length, heals to a bit-identical result.
    #[test]
    fn machine_heals_bit_identical_after_one_strike(
        n in 1usize..120,
        at in 0u64..6,
        chain in 0usize..CHAINS,
        kind in fault_kind(),
    ) {
        let a: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(40_503) ^ 0xA5A5).collect();
        let program = kernel(n);
        let clean = reference(&program, &a, &b);
        let (healed, retries) = run_with_healing(&program, &a, &b, &[(at, chain, kind)]);
        prop_assert_eq!(&healed, &clean, "retries={}", retries);
    }

    /// Two independent strikes on different blocks of the same run still
    /// heal to the clean result.
    #[test]
    fn machine_heals_bit_identical_after_two_strikes(
        n in 16usize..120,
        at1 in 0u64..3,
        at2 in 3u64..6,
        kinds in (fault_kind(), fault_kind()),
    ) {
        let a: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let b: Vec<u32> = (0..n as u32).rev().collect();
        let program = kernel(n);
        let clean = reference(&program, &a, &b);
        let strikes = [(at1, 0, kinds.0), (at2, CHAINS - 1, kinds.1)];
        let (healed, _) = run_with_healing(&program, &a, &b, &strikes);
        prop_assert_eq!(&healed, &clean);
    }
}

/// The slice watchdog fires on a runaway program, and the machine it
/// fired on is still healthy: restoring the pre-slice checkpoint and
/// running a real kernel produces the clean answer.
#[test]
fn watchdog_timeout_leaves_machine_recoverable() {
    let mut machine = CapeMachine::new(CapeConfig::tiny(CHAINS));
    machine.enable_fault_injection(FaultConfig::quiescent(1));
    let runaway = {
        let mut p = Program::builder();
        p.label("spin");
        p.j("spin");
        p.halt();
        p.build().expect("builds")
    };
    let ctx = machine.fresh_context();
    machine.restore_context(&ctx);
    let mut cp = machine.new_control_processor();
    let mut mem = MainMemory::new();
    let outcome = machine
        .run_slice(&mut cp, &runaway, &mut mem, u64::MAX, 1_000)
        .expect("spinning is not a processor error");
    assert_eq!(outcome, SliceOutcome::TimedOut);

    // The timed-out CP is at an arbitrary boundary and must be
    // discarded; a fresh CP from the checkpoint computes cleanly.
    let n = 40;
    let a: Vec<u32> = (0..n as u32).collect();
    let b: Vec<u32> = (0..n as u32).map(|i| i + 7).collect();
    let program = kernel(n);
    let clean = reference(&program, &a, &b);
    let (healed, retries) = run_with_healing(&program, &a, &b, &[]);
    assert_eq!(healed, clean);
    assert_eq!(retries, 0);
}

//! Every workload's CAPE program must produce bit-identical results to
//! its native baseline kernel, across machine sizes.

use cape_core::CapeConfig;
use cape_workloads::{micro, phoenix, run_cape};

#[test]
fn micro_suite_is_equivalent_on_two_machine_sizes() {
    for w in micro::suite(800) {
        for chains in [2usize, 8] {
            let cape = run_cape(w.as_ref(), &CapeConfig::tiny(chains));
            let base = w.run_baseline();
            assert_eq!(
                cape.digest,
                base.digest,
                "{} diverged on {chains} chains",
                w.name()
            );
        }
    }
}

#[test]
fn phoenix_suite_is_equivalent_on_two_machine_sizes() {
    for w in phoenix::tiny_suite() {
        for chains in [4usize, 16] {
            let cape = run_cape(w.as_ref(), &CapeConfig::tiny(chains));
            let base = w.run_baseline();
            assert_eq!(
                cape.digest,
                base.digest,
                "{} diverged on {chains} chains",
                w.name()
            );
        }
    }
}

#[test]
fn baselines_expose_nonzero_profiles() {
    for w in phoenix::tiny_suite() {
        let b = w.run_baseline();
        assert!(b.report.instructions > 0, "{}", w.name());
        assert!(
            (0.0..=1.0).contains(&b.parallel_fraction),
            "{} parallel fraction",
            w.name()
        );
        let s = b.simd;
        assert!(
            s.vec_ops + s.vec_mul_ops + s.vec_red_ops + s.scalar_ops > 0,
            "{} SIMD profile is empty",
            w.name()
        );
    }
}

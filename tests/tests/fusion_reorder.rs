//! Property-based differential suite for the v2 window compiler: random
//! fusible op sequences — dense with RAW/WAR/WAW hazards on a small
//! vector-register set and salted with unchanged-`vl` `vsetvli`s that
//! retarget SEW mid-window — must execute bit-identically on three
//! machines: per-op (`fusion_window = 1`), fused in issue order
//! (`fusion_reorder = false`, the PR 9 pipeline) and fused with
//! dependence-aware rescheduling (`fusion_reorder = true`). Identical
//! means the full run report (cycles, CP stats, microop ledger, energy,
//! HBM traffic) and every output byte — plus the same guarantee under a
//! mid-window context switch and with the fault layer's parity
//! machinery armed.

use cape_core::{CapeConfig, CapeMachine, FaultConfig, MachineCounters, RunReport};
use cape_cp::SliceOutcome;
use cape_isa::{Program, Reg, Sew, VAluOp, VReg};
use cape_mem::MainMemory;
use proptest::prelude::*;

const CHAINS: usize = 4; // max_vl = 128
const IN_A: u64 = 0x1000;
const IN_B: u64 = 0x4000;
const OUT: u64 = 0x8000;
const SCALAR_OUT: u64 = 0xf000;
/// Vector registers the random body reads and writes (v1..=v8).
const BODY_REGS: u8 = 8;
/// Fixed stride between per-register output regions (max_vl words).
const OUT_STRIDE: u64 = 128 * 4;

/// One step of a random window body.
#[derive(Debug, Clone)]
enum BodyOp {
    /// A `.vv` compute op over the shared register set.
    Vv {
        op: VAluOp,
        vd: u8,
        vs1: u8,
        vs2: u8,
    },
    /// A `.vx` compute op (scalar operand preloaded in `S4`).
    Vx { op: VAluOp, vd: u8, vs1: u8 },
    /// An unchanged-`vl` `vsetvli` selecting a new element width — a
    /// window no-op, never a barrier.
    SetSew(Sew),
}

const VALU_POOL: [VAluOp; 10] = [
    VAluOp::Add,
    VAluOp::Sub,
    VAluOp::Mul,
    VAluOp::And,
    VAluOp::Or,
    VAluOp::Xor,
    VAluOp::Mseq,
    VAluOp::Mslt,
    VAluOp::Min,
    VAluOp::Maxu,
];

fn valu() -> impl Strategy<Value = VAluOp> {
    (0usize..VALU_POOL.len()).prop_map(|i| VALU_POOL[i])
}

/// Ops whose lowering rejects a destination aliasing a source (their
/// microprograms consume the sources while building the result).
fn needs_distinct_dest(op: VAluOp) -> bool {
    matches!(
        op,
        VAluOp::Mul
            | VAluOp::Mseq
            | VAluOp::Msne
            | VAluOp::Mslt
            | VAluOp::Msltu
            | VAluOp::Min
            | VAluOp::Minu
            | VAluOp::Max
            | VAluOp::Maxu
    )
}

/// Rotates `vd` away from the sources when the op demands it — keeps
/// random sequences legal without losing hazard density.
fn legal_dest(op: VAluOp, mut vd: u8, vs1: u8, vs2: u8) -> u8 {
    if needs_distinct_dest(op) {
        while vd == vs1 || vd == vs2 {
            vd = vd % BODY_REGS + 1;
        }
    }
    vd
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    // The vendored proptest's union is unweighted; arms are duplicated
    // to bias toward `.vv` hazards over SEW retargeting.
    let vv = || {
        (valu(), 1..=BODY_REGS, 1..=BODY_REGS, 1..=BODY_REGS).prop_map(|(op, vd, vs1, vs2)| {
            BodyOp::Vv {
                op,
                vd: legal_dest(op, vd, vs1, vs2),
                vs1,
                vs2,
            }
        })
    };
    let vx = || {
        (valu(), 1..=BODY_REGS, 1..=BODY_REGS).prop_map(|(op, vd, vs1)| BodyOp::Vx {
            op,
            vd: legal_dest(op, vd, vs1, vs1),
            vs1,
        })
    };
    let sew = (0usize..3).prop_map(|i| BodyOp::SetSew([Sew::E8, Sew::E16, Sew::E32][i]));
    prop_oneof![vv(), vv(), vv(), vv(), vx(), vx(), sew]
}

/// A random window body: long enough to overflow one 32-op window now
/// and then, short enough to keep the differential runs cheap.
fn body() -> impl Strategy<Value = Vec<BodyOp>> {
    proptest::collection::vec(body_op(), 8..48)
}

/// Straight-line program: seed v1..=v8 (loads + broadcasts), run the
/// random body, then pin every register and a reduction into memory.
fn build_program(body: &[BodyOp], n: usize) -> Program {
    let mut p = Program::builder();
    p.li(Reg::S0, n as i64);
    p.li(Reg::S1, IN_A as i64);
    p.li(Reg::S2, IN_B as i64);
    p.li(Reg::S4, 29);
    p.li(Reg::A0, SCALAR_OUT as i64);
    p.vsetvli_sew(Reg::T0, Reg::S0, Sew::E32);
    p.vle32(VReg::V1, Reg::S1);
    p.vle32(VReg::V2, Reg::S2);
    for r in 3..=BODY_REGS {
        p.li(Reg::T2, i64::from(r) * 1103 + 7);
        p.vmv_vx(VReg::new(r), Reg::T2);
    }
    for step in body {
        match *step {
            BodyOp::Vv { op, vd, vs1, vs2 } => {
                p.vop_vv(op, VReg::new(vd), VReg::new(vs1), VReg::new(vs2));
            }
            BodyOp::Vx { op, vd, vs1 } => {
                p.vop_vx(op, VReg::new(vd), VReg::new(vs1), Reg::S4);
            }
            BodyOp::SetSew(sew) => {
                p.vsetvli_sew(Reg::T1, Reg::S0, sew);
            }
        }
    }
    p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E32);
    for r in 1..=BODY_REGS {
        p.li(Reg::S3, (OUT + u64::from(r) * OUT_STRIDE) as i64);
        p.vse32(VReg::new(r), Reg::S3);
    }
    p.vredsum(VReg::V9, VReg::V8, VReg::V1);
    p.vmv_xs(Reg::T4, VReg::V9);
    p.sw(Reg::T4, 0, Reg::A0);
    p.halt();
    p.build().expect("builds")
}

fn config(fusion_window: usize, fusion_reorder: bool) -> CapeConfig {
    let mut c = CapeConfig::tiny(CHAINS);
    c.fusion_window = fusion_window;
    c.fusion_reorder = fusion_reorder;
    c
}

fn memory(n: usize) -> MainMemory {
    let mut mem = MainMemory::new();
    let a: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let b: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(40_503) ^ 0xa5a5)
        .collect();
    mem.write_u32_slice(IN_A, &a);
    mem.write_u32_slice(IN_B, &b);
    mem
}

/// Every output byte the program can produce.
fn outputs(mem: &MainMemory, n: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for r in 1..=u64::from(BODY_REGS) {
        out.extend(mem.read_u32_slice(OUT + r * OUT_STRIDE, n));
    }
    out.extend(mem.read_u32_slice(SCALAR_OUT, 1));
    out
}

fn run_full(
    fusion_window: usize,
    fusion_reorder: bool,
    program: &Program,
    n: usize,
    faults: bool,
) -> (Vec<u32>, RunReport, MachineCounters) {
    let mut machine = CapeMachine::new(config(fusion_window, fusion_reorder));
    if faults {
        machine.enable_fault_injection(FaultConfig::quiescent(2));
    }
    let mut mem = memory(n);
    let report = machine.run(program, &mut mem).expect("runs");
    (outputs(&mem, n), report, machine.counters())
}

/// Interleaves the program with itself under a 3-op vector budget so
/// preemptions land inside open windows, context-switching between two
/// jobs every slice.
fn run_sliced(
    fusion_window: usize,
    fusion_reorder: bool,
    program: &Program,
    n: usize,
) -> (Vec<Vec<u32>>, MachineCounters) {
    let mut machine = CapeMachine::new(config(fusion_window, fusion_reorder));
    let mut mems = [memory(n), memory(n)];
    let mut cps = [
        machine.new_control_processor(),
        machine.new_control_processor(),
    ];
    let mut ctxs = [machine.fresh_context(), machine.fresh_context()];
    let mut done = [false, false];
    while !(done[0] && done[1]) {
        for j in 0..2 {
            if done[j] {
                continue;
            }
            machine.restore_context(&ctxs[j]);
            let outcome = machine
                .run_slice(&mut cps[j], program, &mut mems[j], 3, u64::MAX)
                .expect("slices run clean");
            ctxs[j] = machine.save_context();
            done[j] = outcome == SliceOutcome::Halted;
        }
    }
    let outs = mems.iter().map(|m| outputs(m, n)).collect();
    (outs, machine.counters())
}

fn assert_reports_identical(fused: &RunReport, plain: &RunReport, what: &str) {
    assert_eq!(fused.cycles, plain.cycles, "{what}: cycles");
    assert_eq!(fused.cp, plain.cp, "{what}: cp stats");
    assert_eq!(fused.microops, plain.microops, "{what}: microop ledger");
    assert_eq!(fused.lane_ops, plain.lane_ops, "{what}: lane ops");
    assert_eq!(fused.vmu_cycles, plain.vmu_cycles, "{what}: vmu cycles");
    assert_eq!(fused.vcu_cycles, plain.vcu_cycles, "{what}: vcu cycles");
    assert_eq!(fused.hbm_bytes_read, plain.hbm_bytes_read, "{what}: hbm r");
    assert_eq!(
        fused.hbm_bytes_written, plain.hbm_bytes_written,
        "{what}: hbm w"
    );
    assert!(
        (fused.csb_energy_uj - plain.csb_energy_uj).abs()
            <= 1e-12 * plain.csb_energy_uj.abs().max(1.0),
        "{what}: energy {} vs {}",
        fused.csb_energy_uj,
        plain.csb_energy_uj
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_hazard_sequences_execute_bit_identically(
        body in body(),
        n in 1usize..=128,
    ) {
        let program = build_program(&body, n);
        let (plain_out, plain, _) = run_full(1, true, &program, n, false);
        let (inorder_out, inorder, _) = run_full(32, false, &program, n, false);
        let (reordered_out, reordered, _) = run_full(32, true, &program, n, false);

        assert_reports_identical(&inorder, &plain, "in-order fusion");
        assert_reports_identical(&reordered, &plain, "reordered fusion");
        prop_assert_eq!(&inorder_out, &plain_out, "in-order outputs");
        prop_assert_eq!(&reordered_out, &plain_out, "reordered outputs");

        // The no-op vsetvli guarantee, machine-level: SEW retargeting
        // with an unchanged vl never flushes a window.
        prop_assert_eq!(reordered.window_flushes.vsetvli, 0);
        prop_assert_eq!(inorder.window_flushes.vsetvli, 0);
    }

    #[test]
    fn reordered_windows_survive_mid_window_context_switches(
        body in body(),
        n in 1usize..=96,
    ) {
        let program = build_program(&body, n);
        let (plain_out, plain) = run_sliced(1, true, &program, n);
        let (reordered_out, reordered) = run_sliced(32, true, &program, n);
        prop_assert_eq!(&reordered_out, &plain_out, "sliced outputs");
        prop_assert_eq!(reordered.microops, plain.microops);
        prop_assert_eq!(reordered.lane_ops, plain.lane_ops);
        prop_assert_eq!(reordered.vcu_cycles, plain.vcu_cycles);
    }

    #[test]
    fn reordered_windows_are_identical_under_armed_parity(
        body in body(),
        n in 1usize..=96,
    ) {
        let program = build_program(&body, n);
        let (plain_out, plain, plain_counters) = run_full(1, true, &program, n, true);
        let (reordered_out, reordered, reordered_counters) =
            run_full(32, true, &program, n, true);
        assert_reports_identical(&reordered, &plain, "fault mode");
        prop_assert_eq!(&reordered_out, &plain_out, "fault-mode outputs");
        prop_assert_eq!(
            reordered_counters.fault,
            plain_counters.fault,
            "parity machinery saw identical traffic"
        );
    }
}

//! Differential tests for the block-SoA kernel layer: the block-backed
//! broadcast path inside [`Csb`] must be bit-identical to the scalar
//! [`Chain`] reference model — same reduction sums, same register file,
//! same tags/accumulators/metadata — for every vector operation, every
//! SEW, and masked/tail windows, and a `save_registers` /
//! `restore_registers` context switch through the block layout must
//! round-trip bit-exactly.

use cape_csb::{Chain, Csb, CsbGeometry, MicroOp, MicroProgram};
use cape_ucode::{CompiledOp, LogicOp, VectorOp};

/// Every operation shape the sequencer accepts, with registers chosen to
/// satisfy the aliasing rules (vd=3, vs1=1, vs2=2, mask v0) and scalars
/// covering zero, small, sign-bit and all-ones specializations.
fn all_ops() -> Vec<VectorOp> {
    let mut ops = vec![
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Add {
            vd: 1,
            vs1: 1,
            vs2: 2,
        }, // vd aliases vs1
        VectorOp::Add {
            vd: 2,
            vs1: 1,
            vs2: 2,
        }, // vd aliases vs2
        VectorOp::Sub {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Sub {
            vd: 2,
            vs1: 1,
            vs2: 2,
        }, // vd aliases the subtrahend
        VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::And {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Or {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Xor {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mseq {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Msne {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: false,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: false,
            signed: false,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: true,
            signed: true,
        },
        VectorOp::Macc {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mv { vd: 3, vs: 1 },
        VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::Cpop { vs: 4 },
        VectorOp::First { vs: 4 },
        VectorOp::Vid { vd: 3 },
        VectorOp::Increment { vd: 3 },
    ];
    for rs in [0u32, 1, 0x7F, 0x8000_0001, u32::MAX] {
        ops.extend([
            VectorOp::AddScalar { vd: 3, vs1: 1, rs },
            VectorOp::SubScalar { vd: 3, vs1: 1, rs },
            VectorOp::RsubScalar { vd: 3, vs1: 1, rs },
            VectorOp::MulScalar { vd: 3, vs1: 1, rs },
            VectorOp::MseqScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsneScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsltScalar {
                vd: 3,
                vs1: 1,
                rs,
                signed: false,
            },
            VectorOp::MsltScalar {
                vd: 3,
                vs1: 1,
                rs,
                signed: true,
            },
            VectorOp::MinMaxScalar {
                vd: 3,
                vs1: 1,
                rs,
                max: false,
                signed: true,
            },
            VectorOp::MinMaxScalar {
                vd: 3,
                vs1: 1,
                rs,
                max: true,
                signed: false,
            },
            VectorOp::LogicScalar {
                op: LogicOp::And,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Or,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Xor,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::Broadcast { vd: 3, rs },
        ]);
    }
    for sh in [0u32, 1, 7, 31, 35] {
        ops.extend([
            VectorOp::ShiftLeft { vd: 3, vs: 1, sh },
            VectorOp::ShiftRight { vd: 3, vs: 1, sh },
            VectorOp::ShiftRightArith { vd: 3, vs: 1, sh },
        ]);
    }
    ops
}

/// A CSB with deterministic pseudorandom contents in the source
/// registers, a mask in v0, and a sparse bit pattern in v4 (for
/// `vfirst`/`vcpop`).
fn seeded_csb(chains: usize) -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(chains));
    let n = csb.max_vl();
    let mut state = 0x9E37_79B9_u32;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for reg in [0usize, 1, 2, 3] {
        let vals: Vec<u32> = (0..n).map(|_| next()).collect();
        csb.write_vector(reg, &vals);
    }
    let sparse: Vec<u32> = (0..n).map(|e| u32::from(e % 97 == 41)).collect();
    csb.write_vector(4, &sparse);
    csb
}

/// Runs a microop program over scalar reference [`Chain`]s, exactly as
/// the pre-block broadcast loop did: chain by chain, op by op, skipping
/// power-gated (fully-masked) chains, summing `ReduceTags` popcounts.
fn reference_program(chains: &mut [Chain], windows: &[u32], program: &MicroProgram) -> Vec<u64> {
    let mut sums = vec![0u64; program.reduce_count()];
    for (chain, &window) in chains.iter_mut().zip(windows) {
        if window == 0 {
            continue; // power-gated chain: never executes anything
        }
        let mut k = 0;
        for op in program.ops() {
            let r = chain.execute(op, window);
            if matches!(op, MicroOp::ReduceTags { .. }) {
                sums[k] += u64::from(r.expect("ReduceTags returns a count"));
                k += 1;
            }
        }
    }
    sums
}

/// Runs `op`'s compiled microop program through the block-backed CSB and
/// through scalar reference chains seeded with identical state, then
/// asserts bit-exact agreement of reduction sums and complete chain state
/// (registers, metadata rows, tags, accumulators).
fn assert_block_matches_scalar(op: &VectorOp, sew: usize, vstart: usize, vl: usize, chains: usize) {
    let mut csb = seeded_csb(chains);
    csb.set_active_window(vstart, vl);

    // Materialize the scalar reference of the identical starting state.
    let mut reference: Vec<Chain> = (0..chains).map(|c| csb.chain(c)).collect();
    let windows: Vec<u32> = (0..chains).map(|c| csb.window(c)).collect();

    let compiled = CompiledOp::compile(op, sew);
    let block_sums = csb.execute_program(compiled.program());
    let ref_sums = reference_program(&mut reference, &windows, compiled.program());

    let ctx = format!("{op:?} sew={sew} window={vstart}..{vl} chains={chains}");
    assert_eq!(block_sums, ref_sums, "reduction sums: {ctx}");
    for (c, want) in reference.iter().enumerate() {
        assert_eq!(&csb.chain(c), want, "chain {c}: {ctx}");
    }
}

#[test]
fn every_op_matches_scalar_chains_at_every_sew() {
    for op in &all_ops() {
        for sew in [8usize, 16, 32] {
            assert_block_matches_scalar(op, sew, 0, 128, 4);
        }
    }
}

#[test]
fn every_op_matches_scalar_chains_on_masked_and_tail_windows() {
    // vstart > 0 (restart), vl < max (tail), and both at once. The tail
    // windows gate whole chains and partially mask others, exercising
    // both the block-level active list and the per-lane act blending.
    for op in &all_ops() {
        for &(vstart, vl) in &[(0usize, 77usize), (13, 128), (5, 99)] {
            assert_block_matches_scalar(op, 32, vstart, vl, 4);
        }
    }
}

#[test]
fn representative_ops_match_scalar_chains_through_the_worker_pool() {
    // 600 active chains of 1,024 engages the threaded broadcast path on
    // multi-core hosts; chains 600..1024 are fully power-gated, and 1,024
    // chains span many 16-lane blocks per shard.
    let ops = [
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::MseqScalar {
            vd: 3,
            vs1: 1,
            rs: 0x7F,
        },
    ];
    for op in &ops {
        assert_block_matches_scalar(op, 32, 0, 600, 1024);
    }
}

#[test]
fn context_switch_round_trips_through_chain_block() {
    // Save/restore through the block pack/unpack paths must reproduce
    // every chain bit-exactly — including mid-program metadata rows,
    // tags and accumulators left behind by a previous instruction.
    let mut csb = seeded_csb(64);
    csb.set_active_window(3, 1500);
    let compiled = CompiledOp::compile(
        &VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        32,
    );
    csb.execute_program(compiled.program());

    let before: Vec<Chain> = (0..64).map(|c| csb.chain(c)).collect();
    let snap = csb.save_registers();

    // Trash the state with a different op and window, then restore.
    csb.set_active_window(0, csb.max_vl());
    let trash = CompiledOp::compile(&VectorOp::Broadcast { vd: 3, rs: !0 }, 32);
    csb.execute_program(trash.program());
    csb.restore_registers(&snap);

    for (c, want) in before.iter().enumerate() {
        assert_eq!(&csb.chain(c), want, "chain {c} after restore");
    }
    // A second capture of the restored state is bit-identical.
    assert_eq!(csb.save_registers(), snap);
}

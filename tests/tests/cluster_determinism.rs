//! Cluster determinism: a fleet of machines serving the multi-tenant
//! stress workload must be invisible in the outputs.
//!
//! These tests back the cluster's headline claims:
//!
//! * **Distribution transparency** — the 64-job Phoenix mix from the
//!   `engine_multitenant` stress (8 kernels × 8 instances) served by a
//!   4-machine fleet produces per-job memory digests bit-identical to
//!   the single-engine baseline (which PR 3 pinned bit-exact to solo
//!   runs), no matter how the router spread the jobs.
//! * **Migration transparency** — the same mix with one machine struck
//!   by `dead-block` faults mid-drain: the struck machine leaves
//!   rotation, its queue migrates, and every job still completes
//!   bit-exactly somewhere — zero lost, zero duplicated.

use cape_cluster::{Cluster, ClusterConfig, ClusterJobId, HealthState};
use cape_core::{CapeConfig, FaultKind};
use cape_engine::{Engine, EngineConfig, FaultPolicy, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;
const MACHINES: usize = 4;

fn phoenix_job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
        .with_priority((instance % 4) as u8)
}

/// Solo-run digest per kernel: the ground truth every serving layer —
/// engine or cluster — must reproduce bit-exactly.
fn solo_digests(config: &CapeConfig) -> Vec<u64> {
    phoenix::tiny_suite()
        .iter()
        .map(|w| run_cape(w.as_ref(), config).digest)
        .collect()
}

fn submit_mix(cluster: &mut Cluster) -> Vec<(ClusterJobId, usize)> {
    let suite = phoenix::tiny_suite();
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            let id = cluster
                .submit(phoenix_job(w.as_ref(), instance))
                .expect("fleet queue sized for the mix");
            ids.push((id, k));
        }
    }
    assert_eq!(ids.len(), 64);
    ids
}

fn engine_config(config: CapeConfig, fault: Option<FaultPolicy>, max_batch: usize) -> EngineConfig {
    EngineConfig {
        queue_capacity: 64,
        slice_vectors: 16,
        max_batch,
        machine: config,
        fault,
    }
}

#[test]
fn four_machine_fleet_matches_the_single_engine_baseline_bit_for_bit() {
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    let solo = solo_digests(&config);

    // Single-engine baseline over the identical mix.
    let mut single = Engine::new(engine_config(config, None, INSTANCES_PER_KERNEL));
    let mut single_ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            single_ids.push((single.submit(phoenix_job(w.as_ref(), instance)).unwrap(), k));
        }
    }
    let single_report = single.run();
    assert_eq!(single_report.completed(), 64);

    let mut cluster = Cluster::new(ClusterConfig::new(
        MACHINES,
        engine_config(config, None, INSTANCES_PER_KERNEL),
    ));
    let ids = submit_mix(&mut cluster);
    let report = cluster.run();

    assert_eq!(report.admitted(), 64);
    assert_eq!(report.completed(), 64, "every job must halt cleanly");
    assert_eq!(report.lost(), 0);
    assert_eq!(report.migrations, 0, "no faults, no migration");

    // Bit-exact against both references: the solo machine and the
    // single-engine serving baseline.
    for ((cid, k), (sid, _)) in ids.iter().zip(&single_ids) {
        let cluster_digest = suite[*k].digest(cluster.memory(*cid).expect("finished"));
        let single_digest = suite[*k].digest(single.memory(*sid).expect("finished"));
        assert_eq!(cluster_digest, solo[*k], "cluster diverged from solo run");
        assert_eq!(
            cluster_digest, single_digest,
            "cluster diverged from single engine"
        );
    }

    // The router actually used the fleet: with 8 distinct kernels over
    // 4 machines, more than one machine serves.
    let used: std::collections::HashSet<usize> =
        report.jobs.iter().filter_map(|j| j.machine).collect();
    assert!(
        used.len() > 1,
        "fleet must spread distinct kernels: {used:?}"
    );
    // And affinity kept every instance of one kernel on one machine.
    for k in 0..suite.len() {
        let homes: std::collections::HashSet<usize> = ids
            .iter()
            .filter(|(_, kk)| *kk == k)
            .filter_map(|(id, _)| report.jobs[id.0 as usize].machine)
            .collect();
        assert_eq!(homes.len(), 1, "kernel {k} scattered: {homes:?}");
    }
}

#[test]
fn dead_block_storm_mid_drain_migrates_without_losing_or_duplicating_jobs() {
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    let solo = solo_digests(&config);

    // Small batches keep the victim's queue loaded across several
    // scheduling steps, so the strikes land while it still holds
    // unstarted work — the drain path this test exists to cover.
    let mut cluster = Cluster::new(ClusterConfig::new(
        MACHINES,
        engine_config(config, Some(FaultPolicy::quiescent()), 2),
    ));
    let ids = submit_mix(&mut cluster);

    // Let the fleet serve a couple of rounds, then strike one machine
    // with repeated dead-block faults while its queue still holds
    // unstarted work: each strike is detected, retried and remapped
    // until the health monitor pulls the machine from rotation.
    assert!(cluster.step());
    let victim = 0;
    for _ in 0..4 {
        cluster
            .strike(victim, 0, FaultKind::DeadBlock)
            .expect("fault policy armed");
        cluster.step();
    }
    let report = cluster.run();

    // Zero lost: every admitted job has exactly one final accounting.
    assert_eq!(report.admitted(), 64);
    assert_eq!(report.lost(), 0);
    assert_eq!(
        report.completed() + report.failed() + report.stranded(),
        64,
        "ledger must cover every job"
    );
    assert_eq!(report.completed(), 64, "healthy peers absorb the storm");

    // The victim left rotation and its queue moved.
    assert!(
        cluster.health(victim) > HealthState::Healthy,
        "victim stayed {}",
        cluster.health(victim)
    );
    assert!(
        report.migrations + report.resubmissions > 0,
        "strikes on a loaded machine must force migration"
    );
    assert!(
        !report.transitions.is_empty(),
        "health transitions must be logged"
    );

    // Zero duplicated: per-job ledger is one final report each, and the
    // fleet-level counters match the per-job sums exactly.
    assert_eq!(
        report.migrations,
        report.jobs.iter().map(|j| j.migrations).sum::<u64>()
    );
    assert_eq!(
        report.resubmissions,
        report.jobs.iter().map(|j| j.resubmissions).sum::<u64>()
    );

    // Bit-exact everywhere, migrated jobs included.
    let mut migrated_and_checked = 0;
    for (id, k) in &ids {
        let digest = suite[*k].digest(cluster.memory(*id).expect("completed"));
        assert_eq!(
            digest, solo[*k],
            "job {id} (kernel {k}) diverged after the storm"
        );
        let job = &report.jobs[id.0 as usize];
        if job.migrated() {
            migrated_and_checked += 1;
            // Stable identity across the move: the engine-side report
            // carries the cluster id as its tag.
            assert_eq!(job.report.as_ref().unwrap().tag, Some(id.0));
        }
    }
    assert!(
        migrated_and_checked > 0,
        "at least one migrated job must be digest-checked"
    );
}

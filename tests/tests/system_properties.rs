//! Property-based tests over the whole machine: random data through real
//! RISC-V vector programs must match native semantics.

use cape_core::{CapeConfig, CapeMachine};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;
use proptest::prelude::*;

fn machine() -> CapeMachine {
    CapeMachine::new(CapeConfig::tiny(3))
}

/// Builds the canonical strip-mined two-input kernel for one vv op.
fn two_input_program(n: usize, op: cape_isa::VAluOp) -> Program {
    let mut p = Program::builder();
    p.li(Reg::S0, n as i64);
    p.li(Reg::S1, 0x1000);
    p.li(Reg::S2, 0x40000);
    p.li(Reg::S3, 0x80000);
    p.label("loop");
    p.vsetvli(Reg::T0, Reg::S0);
    p.vle32(VReg::V1, Reg::S1);
    p.vle32(VReg::V2, Reg::S2);
    p.vop_vv(op, VReg::V3, VReg::V1, VReg::V2);
    p.vse32(VReg::V3, Reg::S3);
    p.sub(Reg::S0, Reg::S0, Reg::T0);
    p.slli(Reg::T1, Reg::T0, 2);
    p.add(Reg::S1, Reg::S1, Reg::T1);
    p.add(Reg::S2, Reg::S2, Reg::T1);
    p.add(Reg::S3, Reg::S3, Reg::T1);
    p.bnez(Reg::S0, "loop");
    p.halt();
    p.build().expect("builds")
}

fn data() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..200).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n),
            proptest::collection::vec(any::<u32>(), n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn vector_programs_match_native_semantics((a, b) in data()) {
        use cape_isa::VAluOp;
        type BinOp = fn(u32, u32) -> u32;
        let cases: [(VAluOp, BinOp); 5] = [
            (VAluOp::Add, |x, y| x.wrapping_add(y)),
            (VAluOp::Sub, |x, y| x.wrapping_sub(y)),
            (VAluOp::Mul, |x, y| x.wrapping_mul(y)),
            (VAluOp::Xor, |x, y| x ^ y),
            (VAluOp::And, |x, y| x & y),
        ];
        for (op, f) in cases {
            let mut m = machine();
            let mut mem = MainMemory::new();
            mem.write_u32_slice(0x1000, &a);
            mem.write_u32_slice(0x40000, &b);
            let prog = two_input_program(a.len(), op);
            m.run(&prog, &mut mem).expect("runs");
            let got = mem.read_u32_slice(0x80000, a.len());
            let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| f(x, y)).collect();
            prop_assert_eq!(got, want, "op {:?}", op);
        }
    }

    #[test]
    fn cycle_counts_are_positive_and_traffic_is_accounted((a, b) in data()) {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &a);
        mem.write_u32_slice(0x40000, &b);
        let prog = two_input_program(a.len(), cape_isa::VAluOp::Add);
        let report = m.run(&prog, &mut mem).expect("runs");
        prop_assert!(report.cycles > 0);
        // Two input streams + one output stream of n words each.
        prop_assert_eq!(report.hbm_bytes_read, 2 * 4 * a.len() as u64);
        prop_assert_eq!(report.hbm_bytes_written, 4 * a.len() as u64);
        prop_assert_eq!(report.lane_ops, a.len() as u64);
        prop_assert!(report.csb_energy_uj > 0.0);
    }
}

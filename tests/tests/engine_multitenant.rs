//! Multi-tenant serving stress: many concurrent jobs on one shared
//! machine must behave exactly as if each ran alone on a fresh one.
//!
//! These tests back the engine's two core claims:
//!
//! * **Isolation** — with 64 jobs from the full Phoenix tiny suite
//!   interleaved through context switches, every job's output digest is
//!   bit-identical to a solo run on a fresh `CapeMachine`, including
//!   when one tenant takes a Section V-C page fault mid-batch.
//! * **Amortization** — batching same-kernel tenants makes the shared
//!   VCU program cache serve most hits across tenant boundaries
//!   (cross-tenant hit rate > 50% on the mixed job mix).

use cape_core::CapeConfig;
use cape_engine::{AdmissionError, Engine, EngineConfig, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;

/// Builds one engine job per (kernel, instance) pair of the Phoenix
/// tiny suite, tagging names so failures identify the tenant.
fn phoenix_job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
        .with_priority((instance % 4) as u8)
}

#[test]
fn sixty_four_concurrent_jobs_match_their_solo_runs() {
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();

    // Reference digests: each kernel alone on a fresh machine.
    let solo: Vec<u64> = suite
        .iter()
        .map(|w| run_cape(w.as_ref(), &config).digest)
        .collect();

    let mut engine = Engine::new(EngineConfig {
        queue_capacity: suite.len() * INSTANCES_PER_KERNEL,
        slice_vectors: 16,
        max_batch: INSTANCES_PER_KERNEL,
        machine: config,
        fault: None,
    });

    // Admit the full mix: 8 kernels x 8 instances = 64 concurrent jobs.
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            let id = engine
                .submit(phoenix_job(w.as_ref(), instance))
                .expect("queue sized for the whole mix");
            ids.push((id, k));
        }
    }
    assert_eq!(ids.len(), 64);

    // The bounded queue pushes back on the 65th submission.
    let overflow = engine.submit(phoenix_job(suite[0].as_ref(), 99));
    assert!(matches!(overflow, Err(AdmissionError::QueueFull { .. })));

    let report = engine.run();
    assert_eq!(report.jobs.len(), 64);
    assert_eq!(report.completed(), 64, "every tenant must halt cleanly");

    // Bit-exact isolation: each tenant's outputs equal its solo run.
    for (id, k) in &ids {
        let mem = engine.memory(*id).expect("job finished");
        let digest = suite[*k].digest(mem);
        assert_eq!(
            digest,
            solo[*k],
            "{} diverged from its solo run",
            engine.job_report(*id).unwrap().name
        );
    }

    // Cross-tenant amortization: with 8 tenants per kernel, at most one
    // pays each compile and the rest hit its entry.
    assert!(
        report.cross_tenant_hit_rate > 0.5,
        "cross-tenant hit rate {:.3} should exceed 0.5",
        report.cross_tenant_hit_rate
    );
    assert!(report.cross_tenant_hits > 0);

    // Same-kernel batching actually happened, and jobs were preempted
    // and context-switched rather than run to completion back-to-back.
    assert!(
        report.batches >= suite.len() as u64,
        "at least one batch per kernel"
    );
    assert!(report.context_switches > 64, "contexts must actually cycle");
    assert!(report.jobs.iter().any(|j| j.preemptions > 0));

    // Queue-latency percentiles are coherent and non-trivial.
    let q = report.queue_latency;
    assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
    assert!(q.max > 0, "64 queued jobs cannot all start at cycle 0");
    assert!(report.jobs_per_ms() > 0.0);
}

#[test]
fn page_fault_restart_is_invisible_to_co_scheduled_tenants() {
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    // Histogram faults mid-load while linear regression and string
    // match share the machine; a 4-instruction slice budget forces the
    // fault to land between other tenants' slices.
    let hist = &suite[3];
    let lreg = &suite[2];
    let strm = &suite[7];
    let solo_hist = run_cape(hist.as_ref(), &config).digest;
    let solo_lreg = run_cape(lreg.as_ref(), &config).digest;
    let solo_strm = run_cape(strm.as_ref(), &config).digest;

    let mut engine = Engine::new(EngineConfig {
        queue_capacity: 16,
        slice_vectors: 4,
        max_batch: 4,
        machine: config,
        fault: None,
    });
    let faulty = engine
        .submit(phoenix_job(hist.as_ref(), 0).with_fault_at(17))
        .unwrap();
    let clean_hist = engine.submit(phoenix_job(hist.as_ref(), 1)).unwrap();
    let bystander_a = engine.submit(phoenix_job(lreg.as_ref(), 0)).unwrap();
    let bystander_b = engine.submit(phoenix_job(strm.as_ref(), 0)).unwrap();

    let report = engine.run();
    assert_eq!(report.completed(), 4);

    let job = |id| engine.job_report(id).unwrap();
    assert_eq!(job(faulty).faults, 1, "the armed fault must fire");
    assert_eq!(job(clean_hist).faults, 0);
    assert_eq!(job(bystander_a).faults, 0);
    assert_eq!(job(bystander_b).faults, 0);

    // The restart is architecturally invisible: the faulting tenant
    // still produces its solo digest, and so does everyone else.
    assert_eq!(hist.digest(engine.memory(faulty).unwrap()), solo_hist);
    assert_eq!(hist.digest(engine.memory(clean_hist).unwrap()), solo_hist);
    assert_eq!(lreg.digest(engine.memory(bystander_a).unwrap()), solo_lreg);
    assert_eq!(strm.digest(engine.memory(bystander_b).unwrap()), solo_strm);

    // The fault's handler penalty lands on the faulting tenant's own
    // clock, not a bystander's.
    assert!(job(faulty).report.cycles > job(clean_hist).report.cycles + 1000);
}

#[test]
fn deadline_jobs_jump_the_fifo_queue() {
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: 16,
        slice_vectors: 16,
        max_batch: 1,
        machine: config,
        fault: None,
    });
    // Four bulk jobs first, then one urgent job with a deadline.
    let bulk: Vec<_> = (0..4)
        .map(|i| engine.submit(phoenix_job(suite[0].as_ref(), i)).unwrap())
        .collect();
    let urgent = engine
        .submit(phoenix_job(suite[1].as_ref(), 0).with_deadline(1))
        .unwrap();
    engine.run();
    let urgent_finish = engine.job_report(urgent).unwrap().finish_cycle;
    for id in bulk {
        assert!(
            urgent_finish < engine.job_report(id).unwrap().finish_cycle,
            "EDF job must finish before every FIFO bulk job"
        );
    }
}

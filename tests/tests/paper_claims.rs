//! Checks of the paper's quantitative claims that must hold in this
//! reproduction (the per-figure shape checks live in EXPERIMENTS.md and
//! the bench binaries; these are the always-on invariants).

use cape_core::{microop_energy_pj, CapeConfig, Roofline};
use cape_csb::{Csb, CsbGeometry, ReductionTree};
use cape_ucode::metrics::{measure, paper_row};
use cape_ucode::truth_table::BitSerialAlgorithm;
use cape_ucode::{Sequencer, VectorOp, VectorOpKind};
use cape_vcu::Vcu;

#[test]
fn table1_cycle_formulas_match_the_paper() {
    let rows = [
        (VectorOpKind::Add, 258u64),
        (VectorOpKind::Sub, 258),
        (VectorOpKind::Mul, 3968),
        (VectorOpKind::RedSum, 32),
        (VectorOpKind::And, 3),
        (VectorOpKind::Or, 3),
        (VectorOpKind::Xor, 4),
        (VectorOpKind::MseqVx, 33),
        (VectorOpKind::MseqVv, 36),
        (VectorOpKind::Mslt, 102),
        (VectorOpKind::Merge, 4),
    ];
    for (kind, cycles) in rows {
        let row = paper_row(kind).expect("listed in Table I");
        assert_eq!(row.total_cycles.eval(32), cycles, "{kind:?}");
    }
}

#[test]
fn emulated_microops_track_table1_within_ten_percent_for_bit_serial_ops() {
    for (kind, paper) in [
        (VectorOpKind::Add, 258i64),
        (VectorOpKind::Sub, 258),
        (VectorOpKind::Mul, 3968),
        (VectorOpKind::MseqVv, 36),
        (VectorOpKind::MseqVx, 33),
    ] {
        let ours = measure(kind).microops as i64;
        let err = (ours - paper).abs() as f64 / paper as f64;
        assert!(err < 0.10, "{kind:?}: {ours} vs paper {paper} ({err:.2})");
    }
}

#[test]
fn bit_parallel_ops_match_table1_exactly() {
    for (kind, paper) in [
        (VectorOpKind::And, 3),
        (VectorOpKind::Or, 3),
        (VectorOpKind::Xor, 4),
        (VectorOpKind::Merge, 4),
    ] {
        assert_eq!(measure(kind).microops, paper, "{kind:?}");
    }
}

#[test]
fn truth_table_sizes_match_table1() {
    assert_eq!(BitSerialAlgorithm::adder().entries(), 5);
    assert_eq!(BitSerialAlgorithm::subtractor().entries(), 5);
    assert_eq!(BitSerialAlgorithm::adder().max_search_rows(), 3);
}

#[test]
fn redsum_is_roughly_eight_times_faster_than_vadd() {
    // Section V-G: "A vector redsum instruction is thus eight times
    // faster than an element-wise vector addition."
    let vcu = Vcu::new(1024);
    let mut csb = Csb::new(CsbGeometry::new(1024));
    csb.write_vector(1, &[1, 2, 3]);
    csb.write_vector(2, &[4, 5, 6]);
    let add = vcu
        .execute(
            &mut csb,
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        )
        .cycles;
    let red = vcu
        .execute(&mut csb, &VectorOp::RedSum { vd: 4, vs: 1 })
        .cycles;
    let ratio = add as f64 / red as f64;
    assert!((4.0..10.0).contains(&ratio), "redsum advantage {ratio}");
}

#[test]
fn reduction_tree_matches_the_synthesized_design() {
    // Section VI-C: 5 pipeline stages for 1,024 chains.
    assert_eq!(ReductionTree::new(1024).stages(), 5);
}

#[test]
fn vmul_performs_thousands_of_searches_and_updates() {
    // Section VI-B: vmul "performs more than 3,000 searches and updates,
    // combined".
    let m = measure(VectorOpKind::Mul);
    assert!(m.searches + m.updates > 3000, "{}", m.searches + m.updates);
}

#[test]
fn capacity_arithmetic_matches_the_paper() {
    assert_eq!(CapeConfig::cape32k().max_vl(), 32_768);
    assert_eq!(CapeConfig::cape131k().max_vl(), 131_072);
    // Section VII: 512 KV pairs per chain, ~half a million in CAPE32k.
    let kv = cape_memmode::KvStore::new(CsbGeometry::cape32k());
    assert_eq!(kv.capacity(), 524_288);
}

#[test]
fn derived_instruction_energies_track_table1() {
    // The Table II microop energies, multiplied by emulated microop
    // counts, must land near Table I's per-lane energies.
    let cases = [
        (
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            8.4,
            1.5,
        ),
        (
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            99.9,
            50.0,
        ),
        (
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            0.4,
            0.2,
        ),
        (
            VectorOp::Merge {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            0.5,
            0.3,
        ),
        (
            VectorOp::Mslt {
                vd: 3,
                vs1: 1,
                vs2: 2,
                signed: true,
            },
            3.2,
            2.0,
        ),
    ];
    for (op, paper, tol) in cases {
        let mut csb = Csb::new(CsbGeometry::new(1));
        let a: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        csb.write_vector(1, &a);
        csb.write_vector(2, &a);
        let out = Sequencer::new(&mut csb).execute(&op);
        let per_lane = microop_energy_pj(&out.stats, 1) / 32.0;
        assert!(
            (per_lane - paper).abs() <= tol,
            "{op:?}: {per_lane:.2} pJ/lane vs paper {paper}"
        );
    }
}

#[test]
fn cape_clock_comes_from_the_read_critical_path() {
    // 237 ps read -> 4.22 GHz, derated 65% -> 2.7 GHz.
    let raw_ghz = 1000.0 / cape_core::TABLE2_DELAYS.read_ps;
    assert!((raw_ghz - 4.22).abs() < 0.01);
    assert_eq!(CapeConfig::cape32k().freq_ghz, 2.7);
}

#[test]
fn roofline_ridge_sits_between_streaming_and_search_kernels() {
    let r = Roofline::cape(&CapeConfig::cape32k());
    // Streaming kernels (~0.08 ops/B) must classify memory-bound;
    // CSB-resident compute (>10 ops/B) compute-bound.
    assert!(0.08 < r.ridge_intensity());
    assert!(r.ridge_intensity() < 10.0);
}

//! Section VII's third memory-only mode, exercised in context: a CAPE
//! tile emulating a victim cache behind an L2. On an L2 miss the
//! controller probes the CAPE tile concurrently with the next level
//! (the paper's description); evicted L2 lines are inserted as victims.

use cape_csb::CsbGeometry;
use cape_mem::{Cache, CacheConfig};
use cape_memmode::VictimCache;

/// A small L2 so the test working set thrashes it: 16 KiB, 4-way, 64 B.
fn small_l2() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 16 * 1024,
        ways: 4,
        line_bytes: 64,
        latency: 14,
    })
}

/// Drives a line-address trace through L2(+victim). Returns the number
/// of accesses that had to go to the next memory level.
fn run_trace(trace: &[u64], victim: Option<&mut VictimCache>) -> u64 {
    let mut l2 = small_l2();
    let mut memory_fetches = 0;
    match victim {
        None => {
            for &addr in trace {
                if !l2.access(addr, false) {
                    memory_fetches += 1;
                }
            }
        }
        Some(vc) => {
            for &addr in trace {
                if !l2.access(addr, false) {
                    let block = (addr / 64) as u32;
                    if vc.probe(block).is_none() {
                        memory_fetches += 1;
                    }
                    // The line now lives in L2; a displaced line becomes a
                    // victim. (We approximate the victim as the probed
                    // block's set neighbour by inserting every refill —
                    // the CP-managed tile tolerates duplicates.)
                    vc.insert(block, &[block; 16]);
                }
            }
        }
    }
    memory_fetches
}

#[test]
fn victim_tile_recovers_l2_thrash_misses() {
    // A cyclic working set of 512 lines (32 KiB): twice the 16 KiB L2, but
    // comfortably within a 16-chain CAPE victim tile (512 lines).
    let lines: Vec<u64> = (0..512u64).map(|i| i * 64).collect();
    let mut trace = Vec::new();
    for _ in 0..8 {
        trace.extend_from_slice(&lines);
    }
    let without = run_trace(&trace, None);
    let mut vc = VictimCache::new(CsbGeometry::new(16)); // 512 lines
    let with = run_trace(&trace, Some(&mut vc));
    assert!(
        with * 3 < without,
        "victim tile must absorb most thrash misses: {with} vs {without}"
    );
    assert!(vc.hits() > 0);
    // Cold misses can never be recovered.
    assert!(with >= 512);
}

#[test]
fn victim_tile_does_not_help_streaming() {
    // A pure stream never revisits lines: the victim tile stays useless,
    // matching the intuition that it only pays off for re-referenced
    // evictions.
    let trace: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
    let without = run_trace(&trace, None);
    let mut vc = VictimCache::new(CsbGeometry::new(16));
    let with = run_trace(&trace, Some(&mut vc));
    assert_eq!(with, without, "no reuse, no benefit");
    assert_eq!(vc.hits(), 0);
}

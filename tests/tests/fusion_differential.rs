//! Differential suite for cross-instruction microprogram fusion: a
//! machine with fusion enabled (default `fusion_window`) must be
//! bit-identical — memory image, cycle count, lane-op/VCU/VMU/HBM
//! accounting, microop ledger — to the same machine with fusion
//! disabled (`fusion_window = 1`, the exact legacy per-op path).
//!
//! Coverage: every vector instruction the ISA encodes (fusible compute
//! ops and every barrier class: reductions, scalar element reads,
//! loads/stores, `vsetvli`/`vsetstart`), SEW 8/16/32, masked windows,
//! tail strips, a context switch landing mid-window, and fault-mode
//! execution with the parity machinery armed.

use cape_core::{CapeConfig, CapeMachine, FaultConfig, MachineCounters, RunReport};
use cape_cp::SliceOutcome;
use cape_isa::{Program, Reg, Sew, VAluOp, VReg};
use cape_mem::MainMemory;

const CHAINS: usize = 4;
const IN_A: u64 = 0x1000;
const IN_B: u64 = 0x4000;
const OUT: u64 = 0x8000;
const SCALAR_OUT: u64 = 0xf000;

const ALL_VALU: [VAluOp; 14] = [
    VAluOp::Add,
    VAluOp::Sub,
    VAluOp::Mul,
    VAluOp::And,
    VAluOp::Or,
    VAluOp::Xor,
    VAluOp::Mseq,
    VAluOp::Msne,
    VAluOp::Mslt,
    VAluOp::Msltu,
    VAluOp::Min,
    VAluOp::Minu,
    VAluOp::Max,
    VAluOp::Maxu,
];

fn config(fusion_window: usize) -> CapeConfig {
    let mut c = CapeConfig::tiny(CHAINS);
    c.fusion_window = fusion_window;
    c
}

fn memory(n: usize) -> MainMemory {
    let mut mem = MainMemory::new();
    let a: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let b: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(40_503) ^ 0x5a5a)
        .collect();
    mem.write_u32_slice(IN_A, &a);
    mem.write_u32_slice(IN_B, &b);
    mem
}

/// A strip-mined kernel that runs *every* vector instruction each
/// iteration — all fourteen ALU ops in `.vv` and `.vx` form, the
/// multiply-accumulate, shifts, moves, `vid`, a mask compute plus a
/// masked merge — folding everything into one xor accumulator so any
/// divergence lands in memory. After the loop, every barrier class
/// fires: reduction, population count, first-set, scalar element read,
/// and an explicit `vsetstart`.
fn all_ops_program(sew: Sew, n: usize) -> Program {
    let mut p = Program::builder();
    p.li(Reg::S0, n as i64);
    p.li(Reg::S1, IN_A as i64);
    p.li(Reg::S2, IN_B as i64);
    p.li(Reg::S3, OUT as i64);
    p.li(Reg::S4, 29);
    p.li(Reg::A0, SCALAR_OUT as i64);
    p.vsetvli_sew(Reg::T0, Reg::S0, sew);
    p.vmv_vx(VReg::V20, Reg::ZERO); // xor accumulator
    p.vmv_vx(VReg::V21, Reg::ZERO); // vmacc accumulator
    p.label("loop");
    p.vsetvli_sew(Reg::T0, Reg::S0, sew);
    p.vle32(VReg::V1, Reg::S1);
    p.vle32(VReg::V2, Reg::S2);
    for op in ALL_VALU {
        p.vop_vv(op, VReg::V3, VReg::V1, VReg::V2);
        p.vxor_vv(VReg::V20, VReg::V20, VReg::V3);
        p.vop_vx(op, VReg::V4, VReg::V1, Reg::S4);
        p.vxor_vv(VReg::V20, VReg::V20, VReg::V4);
    }
    p.vmacc_vv(VReg::V21, VReg::V1, VReg::V2);
    p.vrsub_vx(VReg::V5, VReg::V1, Reg::S4);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V5);
    p.vsra_vi(VReg::V6, VReg::V2, 3);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V6);
    p.vsll_vi(VReg::V7, VReg::V1, 2);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V7);
    p.vsrl_vi(VReg::V8, VReg::V2, 1);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V8);
    p.vid(VReg::V9);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V9);
    p.vmv_vv(VReg::V10, VReg::V1);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V10);
    p.vmv_vx(VReg::V11, Reg::S4);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V11);
    // Masked window: compute a data-dependent mask, then merge on it.
    p.vmslt_vv(VReg::V0, VReg::V1, VReg::V2);
    p.vmerge(VReg::V12, VReg::V1, VReg::V2);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V12);
    p.vxor_vv(VReg::V20, VReg::V20, VReg::V21);
    p.vse32(VReg::V20, Reg::S3);
    p.sub(Reg::S0, Reg::S0, Reg::T0);
    p.slli(Reg::T1, Reg::T0, 2);
    p.add(Reg::S1, Reg::S1, Reg::T1);
    p.add(Reg::S2, Reg::S2, Reg::T1);
    p.add(Reg::S3, Reg::S3, Reg::T1);
    p.bnez(Reg::S0, "loop");
    // Every scalar-read barrier class, values pinned into memory.
    p.vredsum(VReg::V22, VReg::V20, VReg::V21);
    p.vmv_xs(Reg::T4, VReg::V22);
    p.sw(Reg::T4, 0, Reg::A0);
    p.vcpop(Reg::T2, VReg::V0);
    p.sw(Reg::T2, 4, Reg::A0);
    p.vfirst(Reg::T3, VReg::V0);
    p.sw(Reg::T3, 8, Reg::A0);
    p.vsetstart(Reg::ZERO);
    p.vadd_vv(VReg::V23, VReg::V20, VReg::V12);
    p.vse32(VReg::V23, Reg::S3);
    p.halt();
    p.build().expect("builds")
}

fn run_with(fusion_window: usize, program: &Program, n: usize) -> (MainMemory, RunReport) {
    let mut machine = CapeMachine::new(config(fusion_window));
    let mut mem = memory(n);
    let report = machine.run(program, &mut mem).expect("runs");
    (mem, report)
}

/// Everything in a report that fused execution must reproduce exactly.
/// Energy is an f64 accumulation charged in the same order on both
/// paths, so even it is compared exactly.
fn assert_reports_identical(fused: &RunReport, plain: &RunReport, what: &str) {
    assert_eq!(fused.cycles, plain.cycles, "{what}: cycles");
    assert_eq!(fused.cp, plain.cp, "{what}: cp stats");
    assert_eq!(fused.microops, plain.microops, "{what}: microop ledger");
    assert_eq!(fused.lane_ops, plain.lane_ops, "{what}: lane ops");
    assert_eq!(fused.vmu_cycles, plain.vmu_cycles, "{what}: vmu cycles");
    assert_eq!(fused.vcu_cycles, plain.vcu_cycles, "{what}: vcu cycles");
    assert_eq!(
        fused.hbm_bytes_read, plain.hbm_bytes_read,
        "{what}: hbm reads"
    );
    assert_eq!(
        fused.hbm_bytes_written, plain.hbm_bytes_written,
        "{what}: hbm writes"
    );
    assert_eq!(
        fused.program_cache_hits + fused.program_cache_misses,
        plain.program_cache_hits + plain.program_cache_misses,
        "{what}: per-op cache traffic"
    );
    assert!(
        (fused.csb_energy_uj - plain.csb_energy_uj).abs()
            <= 1e-12 * plain.csb_energy_uj.abs().max(1.0),
        "{what}: energy {} vs {}",
        fused.csb_energy_uj,
        plain.csb_energy_uj
    );
}

fn assert_memories_identical(fused: &MainMemory, plain: &MainMemory, n: usize, what: &str) {
    assert_eq!(
        fused.read_u32_slice(OUT, n),
        plain.read_u32_slice(OUT, n),
        "{what}: output region"
    );
    assert_eq!(
        fused.read_u32_slice(SCALAR_OUT, 3),
        plain.read_u32_slice(SCALAR_OUT, 3),
        "{what}: scalar barrier results"
    );
}

#[test]
fn every_vector_op_fuses_bit_identically_across_sews() {
    for sew in [Sew::E8, Sew::E16, Sew::E32] {
        // 64 fills strips exactly; 205 leaves a ragged tail strip.
        for n in [64usize, 205] {
            let what = format!("sew={sew:?} n={n}");
            let program = all_ops_program(sew, n);
            let (fused_mem, fused) = run_with(32, &program, n);
            let (plain_mem, plain) = run_with(1, &program, n);
            assert_reports_identical(&fused, &plain, &what);
            assert_memories_identical(&fused_mem, &plain_mem, n, &what);
            assert!(fused.fused_windows > 0, "{what}: windows actually fused");
            assert!(
                fused.fused_joins_saved >= fused.fused_windows,
                "{what}: every window saves at least one join"
            );
            assert_eq!(plain.fused_windows, 0, "{what}: window=1 disables fusion");
            assert_eq!(plain.fused_joins_saved, 0, "{what}");
        }
    }
}

/// A straight-line kernel whose single fusion window genuinely mixes
/// element widths: unchanged-`vl` `vsetvli`s retarget SEW mid-window
/// without flushing, so the e32, e16 and e8 ops all land in one fused
/// super-program.
fn mixed_sew_program(n: usize) -> Program {
    let mut p = Program::builder();
    p.li(Reg::S0, n as i64);
    p.li(Reg::S1, IN_A as i64);
    p.li(Reg::S2, IN_B as i64);
    p.li(Reg::S3, OUT as i64);
    p.li(Reg::S4, 29);
    p.li(Reg::A0, SCALAR_OUT as i64);
    p.vsetvli_sew(Reg::T0, Reg::S0, Sew::E32);
    p.vle32(VReg::V1, Reg::S1);
    p.vle32(VReg::V2, Reg::S2);
    p.vadd_vv(VReg::V3, VReg::V1, VReg::V2);
    p.vxor_vv(VReg::V4, VReg::V3, VReg::V1);
    p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E16); // same vl: joins the window
    p.vop_vv(VAluOp::Sub, VReg::V5, VReg::V4, VReg::V2);
    p.vop_vv(VAluOp::And, VReg::V6, VReg::V5, VReg::V3);
    p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E8); // same vl again
    p.vop_vx(VAluOp::Add, VReg::V7, VReg::V1, Reg::S4);
    p.vxor_vv(VReg::V8, VReg::V7, VReg::V6);
    p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E32);
    p.vse32(VReg::V8, Reg::S3); // VMU barrier: the window lands here
    p.vredsum(VReg::V9, VReg::V8, VReg::V3);
    p.vmv_xs(Reg::T4, VReg::V9);
    p.sw(Reg::T4, 0, Reg::A0);
    p.halt();
    p.build().expect("builds")
}

#[test]
fn mixed_sew_windows_fuse_without_a_vsetvli_flush() {
    let n = 64;
    let program = mixed_sew_program(n);
    let (fused_mem, fused) = run_with(32, &program, n);
    let (plain_mem, plain) = run_with(1, &program, n);
    assert_reports_identical(&fused, &plain, "mixed sew");
    assert_memories_identical(&fused_mem, &plain_mem, n, "mixed sew");
    // All six compute ops — spanning three element widths — formed one
    // window, and no vsetvli ever flushed it.
    assert_eq!(fused.fused_windows, 1, "one mixed-SEW window");
    assert_eq!(fused.fused_ops, 6);
    assert_eq!(fused.window_flushes.vsetvli, 0, "no effective vl change");
    assert_eq!(fused.window_flushes.vmu, 1, "the store flushed it");
}

/// Counter fields a sliced, context-switched run must reproduce exactly
/// (fusion bookkeeping excluded — that is the one intentional delta).
fn assert_counters_identical(fused: &MachineCounters, plain: &MachineCounters, what: &str) {
    assert_eq!(fused.lane_ops, plain.lane_ops, "{what}: lane ops");
    assert_eq!(fused.vmu_cycles, plain.vmu_cycles, "{what}: vmu cycles");
    assert_eq!(fused.vcu_cycles, plain.vcu_cycles, "{what}: vcu cycles");
    assert_eq!(
        fused.hbm_bytes_read, plain.hbm_bytes_read,
        "{what}: hbm reads"
    );
    assert_eq!(
        fused.hbm_bytes_written, plain.hbm_bytes_written,
        "{what}: hbm writes"
    );
    assert_eq!(fused.microops, plain.microops, "{what}: microop ledger");
    assert_eq!(fused.fault, plain.fault, "{what}: fault counters");
    assert!(
        (fused.energy_pj - plain.energy_pj).abs() <= 1e-12 * plain.energy_pj.abs().max(1.0),
        "{what}: energy"
    );
}

/// Two jobs interleaved on one machine with a vector budget small
/// enough that every preemption lands *inside* an open fusion window:
/// the context switch must flush the window and the result must still
/// be bit-identical to the per-op machine doing the same dance.
fn run_interleaved(fusion_window: usize, n: usize) -> (Vec<Vec<u32>>, MachineCounters) {
    let mut machine = CapeMachine::new(config(fusion_window));
    let programs = [all_ops_program(Sew::E32, n), all_ops_program(Sew::E16, n)];
    let mut mems = [memory(n), memory(n)];
    let mut cps = [
        machine.new_control_processor(),
        machine.new_control_processor(),
    ];
    let mut ctxs = [machine.fresh_context(), machine.fresh_context()];
    let mut done = [false, false];
    while !(done[0] && done[1]) {
        for j in 0..2 {
            if done[j] {
                continue;
            }
            machine.restore_context(&ctxs[j]);
            let outcome = machine
                .run_slice(&mut cps[j], &programs[j], &mut mems[j], 3, u64::MAX)
                .expect("slices run clean");
            ctxs[j] = machine.save_context();
            if outcome == SliceOutcome::Halted {
                done[j] = true;
            }
        }
    }
    let outputs = mems
        .iter()
        .map(|m| {
            let mut region = m.read_u32_slice(OUT, n);
            region.extend(m.read_u32_slice(SCALAR_OUT, 3));
            region
        })
        .collect();
    (outputs, machine.counters())
}

#[test]
fn context_switch_mid_window_flushes_and_stays_bit_identical() {
    let n = 97;
    let (fused_out, fused) = run_interleaved(32, n);
    let (plain_out, plain) = run_interleaved(1, n);
    assert_eq!(fused_out, plain_out, "sliced outputs diverged");
    assert_counters_identical(&fused, &plain, "sliced");
    // A 3-op slice budget means windows are cut by preemption, so
    // fusion still forms (small) windows.
    assert!(fused.fused_windows > 0, "preempted windows still fuse");
    assert_eq!(plain.fused_windows, 0);
}

#[test]
fn fault_mode_with_parity_armed_is_bit_identical() {
    let n = 205;
    let program = all_ops_program(Sew::E32, n);
    let run = |fusion_window: usize| {
        let mut machine = CapeMachine::new(config(fusion_window));
        machine.enable_fault_injection(FaultConfig::quiescent(2));
        let mut mem = memory(n);
        let report = machine.run(&program, &mut mem).expect("runs");
        let counters = machine.counters();
        (mem, report, counters)
    };
    let (fused_mem, fused, fused_counters) = run(32);
    let (plain_mem, plain, plain_counters) = run(1);
    assert_reports_identical(&fused, &plain, "fault mode");
    assert_memories_identical(&fused_mem, &plain_mem, n, "fault mode");
    assert_eq!(
        fused_counters.fault, plain_counters.fault,
        "parity machinery saw identical traffic"
    );
    assert!(fused.fused_windows > 0);
}

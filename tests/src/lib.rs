//! Cross-crate integration tests for the CAPE system live in `tests/`.
//!
//! This crate intentionally exports nothing; it exists so the workspace
//! has a single home for tests that span `cape-csb` → `cape-core` →
//! `cape-workloads`.

//! Quickstart: build a CAPE machine, assemble a RISC-V vector program,
//! run it, and inspect the report.
//!
//! ```text
//! cargo run -p cape-examples --bin quickstart
//! ```

use cape_core::{CapeConfig, CapeMachine};
use cape_isa::assemble;
use cape_mem::MainMemory;

fn main() {
    // A small machine: 8 chains x 32 lanes = 256 vector lanes, with the
    // full CAPE timing model (use CapeConfig::cape32k() for the paper's
    // 32,768-lane design point).
    let config = CapeConfig::tiny(8);
    let mut machine = CapeMachine::new(config);
    let mut mem = MainMemory::new();

    // Inputs: two 200-element vectors.
    let a: Vec<u32> = (0..200).collect();
    let b: Vec<u32> = (0..200).map(|i| 1000 + i).collect();
    mem.write_u32_slice(0x1000, &a);
    mem.write_u32_slice(0x2000, &b);

    // Standard RISC-V vector assembly, strip-mined the RVV way.
    let program = assemble(
        r"
        li   s0, 200          # remaining elements
        li   s1, 0x1000       # a
        li   s2, 0x2000       # b
        li   s3, 0x3000       # c
        loop:
          vsetvli t0, s0, e32, m1
          vle32.v v1, (s1)
          vle32.v v2, (s2)
          vadd.vv v3, v1, v2
          vse32.v v3, (s3)
          sub  s0, s0, t0
          slli t1, t0, 2
          add  s1, s1, t1
          add  s2, s2, t1
          add  s3, s3, t1
          bnez s0, loop
        halt
    ",
    )
    .expect("assembles");

    let report = machine.run(&program, &mut mem).expect("runs");

    let c = mem.read_u32_slice(0x3000, 200);
    assert!(c.iter().enumerate().all(|(i, &v)| v == a[i] + b[i]));
    println!("c[0..6]           = {:?}", &c[..6]);
    println!("cycles            = {}", report.cycles);
    println!("time              = {:.3} us", report.time_ms() * 1000.0);
    println!("vector instrs     = {}", report.cp.vector);
    println!("CSB microops      = {}", report.microops.total());
    println!("CSB energy        = {:.3} uJ", report.csb_energy_uj);
    println!(
        "ucode cache       = {} hits / {} misses ({:.1}% hit rate)",
        report.program_cache_hits,
        report.program_cache_misses,
        report.program_cache_hit_rate() * 100.0
    );
    println!(
        "HBM read/written  = {} / {} bytes",
        report.hbm_bytes_read, report.hbm_bytes_written
    );
    println!("op intensity      = {:.3} ops/byte", report.intensity());
}

//! Memory-only mode (Section VII): the CSB as a content-addressable
//! key-value store, a victim cache, and a scratchpad.
//!
//! ```text
//! cargo run -p cape-examples --bin kv_store
//! ```

use cape_csb::CsbGeometry;
use cape_memmode::{KvStore, Scratchpad, VictimCache};

fn main() {
    // ---- key-value storage -------------------------------------------
    let mut kv = KvStore::new(CsbGeometry::new(4));
    println!(
        "KV store on a 4-chain CSB: capacity {} pairs",
        kv.capacity()
    );
    println!("(a chain holds 16 x 32 = 512 pairs; CAPE32k holds ~half a million)\n");

    for i in 0..1000u32 {
        kv.insert(i.wrapping_mul(2_654_435_761), i).expect("fits");
    }
    println!("inserted 1000 pairs; len = {}", kv.len());
    let probe = 400u32.wrapping_mul(2_654_435_761);
    println!("get({probe:#x}) = {:?}", kv.get(probe));
    println!(
        "lookup cost so far: {} search cycles (one bulk search + tag fold per slot)",
        kv.lookup_cycles()
    );
    kv.remove(probe).expect("present");
    println!("after remove: get -> {:?}\n", kv.get(probe));

    // ---- victim cache --------------------------------------------------
    let mut vc = VictimCache::new(CsbGeometry::new(2));
    println!(
        "victim cache: {} fully-associative 64 B lines",
        vc.capacity_lines()
    );
    let line = core::array::from_fn(|i| i as u32 * 3);
    vc.insert(0xABCD, &line);
    println!("probe(0xABCD) hit  = {}", vc.probe(0xABCD).is_some());
    println!("probe(0x1234) hit  = {}", vc.probe(0x1234).is_some());
    println!("hits/misses = {}/{}\n", vc.hits(), vc.misses());

    // ---- scratchpad ----------------------------------------------------
    let mut sp = Scratchpad::new(CsbGeometry::cape32k());
    println!("scratchpad: {} KiB addressable", sp.capacity_bytes() / 1024);
    sp.write_block(100, &[7, 8, 9]);
    println!("read_block(100, 3) = {:?}", sp.read_block(100, 3));
    println!(
        "a 32k-word transfer takes ~{} cycles (one word/chain/cycle)",
        sp.transfer_cycles(32_768)
    );
}

//! The histogram trick from Section II: instead of updating a shared
//! table per pixel (the thread-parallel way), CAPE issues one bulk
//! search per possible pixel value and counts matches with the
//! reduction tree.
//!
//! ```text
//! cargo run -p cape-examples --bin histogram
//! ```

use cape_core::CapeConfig;
use cape_workloads::phoenix::Histogram;
use cape_workloads::{run_cape, Workload};

fn main() {
    let w = Histogram { n: 20_000 };

    println!("histogram over {} pixels, 256 buckets\n", w.n);

    let cape = run_cape(&w, &CapeConfig::tiny(64)); // 2,048 lanes
    let base = w.run_baseline();
    assert_eq!(cape.digest, base.digest, "both implementations must agree");

    println!(
        "CAPE (2,048 lanes): {:>10} cycles  {:>8.3} ms",
        cape.report.cycles,
        cape.report.time_ms()
    );
    println!(
        "1 OoO core:         {:>10} cycles  {:>8.3} ms",
        base.report.cycles,
        base.report.time_ms()
    );
    println!(
        "speedup:            {:>9.1}x",
        base.report.time_ms() / cape.report.time_ms()
    );
    println!();
    println!(
        "vector instructions: {} (one vmseq.vx + vcpop.m per bucket per strip)",
        cape.report.cp.vector
    );
    println!("bulk searches:       {}", cape.report.microops.searches());
    println!("baseline bound by:   {}", base.report.bound_by());
    println!();
    println!("The paper reports 13x for this inversion on an area-equivalent");
    println!("core; at full CAPE32k scale (run fig11_phoenix) the gap widens");
    println!("with the lane count.");
}

//! Dense matrix multiply with the replica vector load (`vlrw`), the
//! CAPE-specific instruction of Section V-G, plus windowed reductions.
//!
//! ```text
//! cargo run -p cape-examples --bin matmul
//! ```

use cape_core::CapeConfig;
use cape_workloads::phoenix::Matmul;
use cape_workloads::{run_cape, Workload};

fn main() {
    let w = Matmul { n: 24 };
    println!("C = A x B, {0}x{0} matrices\n", w.n);

    let cape = run_cape(&w, &CapeConfig::tiny(32)); // 1,024 lanes
    let base = w.run_baseline();
    assert_eq!(
        cape.digest, base.digest,
        "CAPE result must equal the native product"
    );

    println!("vectorization recipe (Section V-G):");
    println!("  1. vle32.v  — load whole rows of A into one long register");
    println!("  2. vlrw.v   — replicate one row of B-transposed across it");
    println!("  3. vmul.vv + windowed vredsum.vs per row (vsetstart/vsetvli)");
    println!();
    println!(
        "CAPE:     {:>9} cycles, {:>6} bytes from HBM",
        cape.report.cycles, cape.report.hbm_bytes_read
    );
    println!(
        "baseline: {:>9} cycles, {:>6} bytes from memory",
        base.report.cycles, base.report.memory_bytes
    );
    println!(
        "speedup:  {:>8.2}x",
        base.report.time_ms() / cape.report.time_ms()
    );
    println!();
    println!(
        "The replica load fetched each B row once ({} bytes per row)",
        w.n * 4
    );
    println!("instead of once per replicated copy — run the `ablations` bench");
    println!("binary to quantify the traffic saved.");
}

//! Walk through Fig. 1 of the paper: the associative *increment*
//! instruction as a bit-serial sequence of search/update pairs, shown at
//! the subarray level.
//!
//! ```text
//! cargo run -p cape-examples --bin associative_basics
//! ```

use cape_csb::{Csb, CsbGeometry, ROW_CARRY};
use cape_ucode::truth_table::BitSerialAlgorithm;
use cape_ucode::{Sequencer, VectorOp};

fn show_state(csb: &Csb, label: &str, lanes: usize) {
    let values = csb.read_vector(1, lanes);
    let carries: Vec<u8> = (0..4)
        .map(|i| u8::from(csb.chain_row(0, i, ROW_CARRY) & 1 == 1))
        .collect();
    println!("{label:<22} v1 = {values:?}   carry rows (bits 0-3, lane 0) = {carries:?}");
}

fn main() {
    println!("The Fig. 1 increment: half-adder truth table, searched and");
    println!("updated one bit position at a time, on ALL elements at once.\n");

    let alg = BitSerialAlgorithm::incrementer();
    println!("truth-table entries: {}", alg.entries());
    println!("  group A (d=0, c=1 -> d:=1):         latched in the accumulator");
    println!("  group B (d=1, c=1 -> d:=0, c+1:=1): latched in the tags");
    println!("  carry row initialized to 1 (add one at the LSB)\n");
    println!("packed TTM encoding: {:04x?}\n", alg.encode());

    let mut csb = Csb::new(CsbGeometry::new(1));
    csb.write_vector(1, &[0b01, 0b10, 0b11, u32::MAX]);
    csb.set_active_window(0, 4);
    show_state(&csb, "before increment:", 4);

    let outcome = Sequencer::new(&mut csb).execute(&VectorOp::Increment { vd: 1 });
    show_state(&csb, "after increment:", 4);
    println!("\nmicroops executed: {}", outcome.stats);
    println!("(u32::MAX wrapped to 0 — the carry walked off the MSB.)");

    // The same machinery runs a full adder: vadd.vv.
    println!(
        "\nFull adder (vadd.vv): {} truth-table entries, searching at most",
        BitSerialAlgorithm::adder().entries()
    );
    println!(
        "{} rows/subarray — exactly the Table I row for vadd.",
        BitSerialAlgorithm::adder().max_search_rows()
    );
    csb.write_vector(2, &[10, 20, 30, 40]);
    let out = Sequencer::new(&mut csb).execute(&VectorOp::Add {
        vd: 3,
        vs1: 1,
        vs2: 2,
    });
    println!(
        "v3 = v1 + v2 = {:?}  ({} microops ~ the paper's 8n+2 = 258)",
        csb.read_vector(3, 4),
        out.stats.total()
    );
}

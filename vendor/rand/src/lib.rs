//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface this workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}` over
//! integer and float ranges — backed by a deterministic SplitMix64 stream.
//! The sequences differ from upstream `rand`, which is fine here: every
//! consumer seeds explicitly and compares CAPE output against a baseline
//! computed on the *same* generated inputs, so only determinism matters.
#![allow(clippy::all)]

/// A random number generator. The single required method yields 64 uniform
/// bits; everything else is derived from it.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its full/unit range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seeding support. Upstream `rand` derives `seed_from_u64` from a
/// byte-array seed; the stub takes the u64 directly.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64). Not the same
    /// stream as upstream's xoshiro-based `SmallRng`, but API-compatible
    /// for seeded use.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(500..3500);
            assert!((500..3500).contains(&v));
            let w: u32 = rng.gen_range(1..=400u32);
            assert!((1..=400).contains(&w));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let m: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&m));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.6)).count();
        assert!((5500..6500).contains(&hits), "got {hits}");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — `Strategy`
//! with `prop_map`/`prop_flat_map`, range/tuple/`Just`/`any` strategies,
//! `proptest::collection::vec`, `proptest::option::of`, and the
//! `proptest!`/`prop_oneof!`/`prop_assert*` macros — as plain deterministic
//! random sampling. No shrinking, no persisted failure files: a failing
//! case panics through `assert!`, and the per-test RNG is seeded from the
//! test's module path so every run explores the same cases.
#![allow(clippy::all)]

/// Strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Only `sample` is object-safe; the combinators consume `self` and are
    /// gated on `Sized` so `Box<dyn Strategy<Value = T>>` works (this is
    /// what `prop_oneof!` builds).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty variant list.
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Full-range values of `T` (`any::<T>()`).
    #[derive(Debug)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` roughly three times out of four, `None` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Wraps `strategy` to also produce `None`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy { inner: strategy }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each test body runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 stream seeded from the test's name, so each test sees a
    /// distinct but fully reproducible case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from `name` via FNV-1a.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among heterogeneous strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts within a property body (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property body (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
        (1usize..=8).prop_flat_map(|len| {
            (
                crate::collection::vec(any::<u32>(), len),
                crate::collection::vec(any::<u32>(), len),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pairs_have_matching_lengths((a, b) in pair()) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert!((1..=8).contains(&a.len()));
        }

        #[test]
        fn oneof_and_just_cover_all_variants(v in prop_oneof![Just(1u8), Just(2), 10u8..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn option_of_yields_both_cases(o in crate::option::of(any::<bool>()), extra in 0u32..5) {
            if let Some(b) = o {
                prop_assert!(b || !b);
            }
            prop_assert!(extra < 5);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(any::<u32>(), 0..5);
        let mut r1 = TestRng::for_test("x");
        let mut r2 = TestRng::for_test("x");
        let a: Vec<Vec<u32>> = (0..16).map(|_| s.sample(&mut r1)).collect();
        let b: Vec<Vec<u32>> = (0..16).map(|_| s.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Keeps the API this workspace's benches use — `Criterion`,
//! `benchmark_group`/`BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — and measures with plain
//! `std::time::Instant` sampling: a one-iteration probe sizes each sample,
//! then `sample_size` samples run and the mean/min/max are printed one
//! line per benchmark. When the binary is invoked with `--test` (as
//! `cargo test` does for `harness = false` bench targets) every benchmark
//! body runs exactly once so the suite stays fast and only checks that the
//! benches still execute.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterised benchmark as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Runs the measured closure; handed to benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples (or running it once in
    /// test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Probe once to size samples at roughly 5 ms each.
        let start = Instant::now();
        black_box(f());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("test {id} ... ok (bench smoke)");
            return;
        }
        let n = self.samples_ns.len().max(1) as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!("{id:<48} time: [{min:12.1} ns {mean:12.1} ns {max:12.1} ns]");
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_STUB_TEST_MODE").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: 10,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// Collects benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        std::env::set_var("CRITERION_STUB_TEST_MODE", "1");
        let mut c = Criterion::default();
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("group");
            g.sample_size(10);
            g.bench_function("plain", |b| b.iter(|| hits += 1));
            g.bench_with_input(BenchmarkId::new("param", 42), &42u32, |b, &v| {
                b.iter(|| hits += v)
            });
            g.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| hits += 1));
        assert!(
            hits >= 3,
            "each bench body must run at least once, got {hits}"
        );
    }
}

//! Offline stand-in for the `serde` facade crate.
//!
//! The simulator workspace derives `Serialize`/`Deserialize` on its report
//! and configuration types so downstream tooling can persist them, but no
//! in-tree code performs serialization. This stub keeps the source-level
//! API (`use serde::{Serialize, Deserialize}` plus the derive macros)
//! compiling in a network-less build environment; swapping the real serde
//! back in is a one-line `Cargo.toml` change because the item paths are
//! identical.
#![allow(clippy::all)]

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`. The real trait carries a
/// `'de` lifetime; no in-tree code names it explicitly, so the stub omits
/// it.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stub defines `Serialize`/`Deserialize` as
//! marker traits, so the derives only need to emit `impl serde::Trait for
//! Type {}`. The input item is parsed by hand (no `syn`/`quote`): skip
//! attributes and visibility, find the `struct`/`enum`/`union` keyword,
//! and take the following identifier as the type name. Generic types are
//! rejected — nothing in this workspace derives serde traits on generics,
//! and a loud error beats a silently wrong impl.
#![allow(clippy::all)]

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    assert!(
                        p.as_char() != '<',
                        "serde stub derive does not support generic type `{name}`"
                    );
                }
                return name.to_string();
            }
            other => panic!("expected a type name after `{kw}`, found {other:?}"),
        }
    }
    panic!("serde stub derive: no struct/enum/union found in input")
}

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}

//! `cape-cluster`: a multi-machine fleet scheduler that puts N
//! independent [`Engine`](cape_engine::Engine)s behind the same front
//! door one engine presents — typed admission, drain-to-completion,
//! per-job reports — and adds the robustness a fleet is for:
//!
//! * **Health-aware routing** — jobs are placed by program-fingerprint
//!   affinity (same-kernel jobs land where the program cache is already
//!   warm) with a least-loaded fallback, per-machine bounded queues and
//!   fleet-level typed backpressure.
//! * **A health model** — between scheduling steps every machine's
//!   fault-layer counters (strike detections, checkpointed retries,
//!   spare-block inventory, unremappable faults) are sampled and
//!   classified Healthy → Degraded → Quarantined against the
//!   [`HealthThresholds`] in `cape-core`'s config. Demotion is
//!   automatic and one-way; the only route back is an explicit repair
//!   ([`Cluster::readmit`]): spares are replenished, pending faults
//!   remapped, and the machine walks a Probation ladder — N consecutive
//!   clean windows to re-enter rotation, one dirty window and it is
//!   quarantined for good.
//! * **Drain/resubmit migration** — when a machine leaves `Healthy`
//!   mid-run, its unstarted queue is drained and resubmitted to healthy
//!   peers, and jobs it failed with machine-side errors are re-run
//!   elsewhere from their pristine specs. Completed-job digests are
//!   bit-identical to a single-engine run and zero admitted jobs are
//!   ever lost — every one gets a final accounting, even if the whole
//!   fleet degrades (then it is reported *stranded*, not dropped).
//! * **Fleet reporting** — [`ClusterReport`] aggregates the per-machine
//!   engine reports into makespan throughput, utilization skew,
//!   migration counts and cross-machine queue-latency percentiles.
//!
//! # Quick start
//!
//! ```
//! use cape_cluster::{Cluster, ClusterConfig};
//! use cape_core::CapeConfig;
//! use cape_engine::{EngineConfig, JobSpec};
//! use cape_isa::assemble;
//! use cape_mem::MainMemory;
//!
//! let engine = EngineConfig::new(CapeConfig::tiny(2));
//! let mut fleet = Cluster::new(ClusterConfig::new(2, engine));
//!
//! let program = assemble(
//!     "li t0, 8
//!      vsetvli t1, t0
//!      li a0, 0x1000
//!      vle32.v v1, (a0)
//!      vadd.vv v2, v1, v1
//!      li a1, 0x2000
//!      vse32.v v2, (a1)
//!      halt",
//! )
//! .unwrap();
//! let mut ids = Vec::new();
//! for tenant in 0..4u32 {
//!     let mut mem = MainMemory::new();
//!     let input: Vec<u32> = (0..8).map(|i| i + tenant * 10).collect();
//!     mem.write_u32_slice(0x1000, &input);
//!     let spec = JobSpec::new(format!("tenant{tenant}"), program.clone(), mem);
//!     ids.push(fleet.submit(spec).unwrap());
//! }
//!
//! let report = fleet.run();
//! assert_eq!(report.completed(), 4);
//! assert_eq!(report.lost(), 0);
//! // Same-kernel jobs shared one warm machine (fingerprint affinity).
//! let out = fleet.memory(ids[3]).unwrap().read_u32_slice(0x2000, 8);
//! assert_eq!(out, (0..8).map(|i| (i + 30) * 2).collect::<Vec<u32>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod health;
mod report;

pub use cape_core::HealthThresholds;
pub use cluster::{Cluster, ClusterConfig, ClusterJobId};
pub use health::{HealthMonitor, HealthProbe, HealthState};
pub use report::{ClusterJobReport, ClusterReport, HealthTransition, MachineReport};

#[cfg(test)]
mod tests {
    use super::*;
    use cape_core::{CapeConfig, FaultConfig, FaultKind};
    use cape_engine::{AdmissionError, EngineConfig, FaultApiError, FaultPolicy, JobSpec};
    use cape_isa::assemble;
    use cape_mem::MainMemory;

    fn add_job(n: u32, scale: u32) -> JobSpec {
        let mut mem = MainMemory::new();
        let data: Vec<u32> = (0..n).map(|i| i * scale + 1).collect();
        mem.write_u32_slice(0x1000, &data);
        let prog = assemble(&format!(
            "li t0, {n}
vsetvli t1, t0
li a0, 0x1000
vle32.v v1, (a0)
vadd.vv v2, v1, v1
li a1, 0x4000
vse32.v v2, (a1)
halt"
        ))
        .unwrap();
        JobSpec::new(format!("add{n}x{scale}"), prog, mem)
    }

    fn fleet(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::new(
            machines,
            EngineConfig::new(CapeConfig::tiny(2)),
        ))
    }

    #[test]
    fn same_fingerprint_jobs_colocate_and_distinct_kernels_spread() {
        let mut c = fleet(3);
        // Three instances of one kernel (same fingerprint, different
        // inputs), then two distinct kernels.
        for scale in 1..=3 {
            c.submit(add_job(8, scale)).unwrap();
        }
        c.submit(add_job(16, 1)).unwrap();
        c.submit(add_job(32, 1)).unwrap();
        let report = c.run();
        assert_eq!(report.completed(), 5);
        // The three same-kernel jobs all ran on one machine…
        let homes: Vec<usize> = report.jobs[..3]
            .iter()
            .map(|j| j.machine.unwrap())
            .collect();
        assert!(
            homes.windows(2).all(|w| w[0] == w[1]),
            "affinity broken: {homes:?}"
        );
        // …and the distinct kernels landed on the other two machines.
        let others: Vec<usize> = report.jobs[3..]
            .iter()
            .map(|j| j.machine.unwrap())
            .collect();
        assert!(!others.contains(&homes[0]), "least-loaded fallback broken");
        assert_ne!(others[0], others[1]);
    }

    #[test]
    fn fleet_backpressure_is_typed_and_counts_every_queue() {
        let mut c = Cluster::new(ClusterConfig::new(
            2,
            EngineConfig {
                queue_capacity: 2,
                ..EngineConfig::new(CapeConfig::tiny(2))
            },
        ));
        for scale in 0..4 {
            c.submit(add_job(4, scale)).unwrap();
        }
        let err = c.submit(add_job(4, 9)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 4 });
        c.run();
        assert!(c.submit(add_job(4, 9)).is_ok(), "drain frees the fleet");
    }

    #[test]
    fn outputs_are_bit_identical_to_a_single_engine() {
        let jobs: Vec<JobSpec> = (1..=6).map(|s| add_job(16, s)).collect();

        let mut solo = cape_engine::Engine::new(EngineConfig::new(CapeConfig::tiny(2)));
        let solo_ids: Vec<_> = jobs
            .iter()
            .map(|j| solo.submit(j.clone()).unwrap())
            .collect();
        solo.run();

        let mut c = fleet(3);
        let ids: Vec<_> = jobs.iter().map(|j| c.submit(j.clone()).unwrap()).collect();
        let report = c.run();
        assert_eq!(report.completed(), 6);
        assert_eq!(report.lost(), 0);
        for (cid, sid) in ids.iter().zip(&solo_ids) {
            assert_eq!(
                c.memory(*cid).unwrap().read_u32_slice(0x4000, 16),
                solo.memory(*sid).unwrap().read_u32_slice(0x4000, 16),
                "fleet output diverged from the single engine"
            );
        }
    }

    #[test]
    fn strike_without_a_fault_policy_is_a_typed_error() {
        let mut c = fleet(2);
        assert_eq!(
            c.strike(0, 0, FaultKind::DeadBlock),
            Err(FaultApiError::NoFaultPolicy)
        );
    }

    #[test]
    fn degraded_machine_drains_and_its_jobs_complete_elsewhere() {
        let mut c = Cluster::new(ClusterConfig::new(
            2,
            EngineConfig {
                fault: Some(FaultPolicy::quiescent()),
                slice_vectors: 1,
                max_batch: 1,
                ..EngineConfig::new(CapeConfig::tiny(2))
            },
        ));
        // Pin everything to machine 0 via shared fingerprints: 6
        // same-kernel jobs, served one per batch.
        let ids: Vec<_> = (0..6).map(|_| c.submit(add_job(16, 5)).unwrap()).collect();
        assert!(c.step(), "first round serves a batch");
        // Now wedge machine 0: repeated dead blocks burn its retries and
        // spares while its queue still holds unstarted jobs.
        for _ in 0..3 {
            c.strike(0, 0, FaultKind::DeadBlock).unwrap();
            c.step();
        }
        let report = c.run();
        assert_eq!(report.lost(), 0, "zero jobs lost");
        assert_eq!(report.completed() + report.failed() + report.stranded(), 6);
        assert!(
            c.health(0) > HealthState::Healthy,
            "machine 0 must leave rotation, got {}",
            c.health(0)
        );
        assert!(
            report.migrations + report.resubmissions > 0,
            "the drain must move jobs"
        );
        assert_eq!(
            report.migrations,
            report.jobs.iter().map(|j| j.migrations).sum::<u64>(),
            "every migration accounted per job"
        );
        assert_eq!(
            report.resubmissions,
            report.jobs.iter().map(|j| j.resubmissions).sum::<u64>(),
        );
        // Whatever completed is bit-exact.
        let want: Vec<u32> = (0..16).map(|i| (i * 5 + 1) * 2).collect();
        for id in ids {
            if c.job_report(id).is_some_and(|r| r.succeeded()) {
                assert_eq!(c.memory(id).unwrap().read_u32_slice(0x4000, 16), want);
            }
        }
    }

    #[test]
    fn a_fully_degraded_fleet_strands_jobs_instead_of_losing_them() {
        let mut c = Cluster::new(ClusterConfig::new(
            1,
            EngineConfig {
                fault: Some(FaultPolicy {
                    csb: FaultConfig::quiescent(0), // zero spares
                    ..FaultPolicy::quiescent()
                }),
                max_batch: 1,
                ..EngineConfig::new(CapeConfig::tiny(2))
            },
        ));
        for _ in 0..3 {
            c.submit(add_job(8, 2)).unwrap();
        }
        c.strike(0, 0, FaultKind::DeadBlock).unwrap();
        let report = c.run();
        assert_eq!(report.lost(), 0);
        assert_eq!(
            report.completed() + report.failed() + report.stranded(),
            3,
            "every admitted job has a final accounting: {report:?}"
        );
        assert!(report.failed() >= 1, "the struck job fails typed");
        assert!(
            report.stranded() >= 1,
            "unplaceable queue is stranded, not dropped"
        );
        assert_eq!(c.health(0), HealthState::Quarantined);
    }

    #[test]
    fn a_readmitted_machine_walks_probation_and_receives_new_work() {
        let mut c = Cluster::new(ClusterConfig::new(
            2,
            EngineConfig {
                fault: Some(FaultPolicy {
                    csb: FaultConfig::quiescent(0), // zero spares: one dead block quarantines
                    ..FaultPolicy::quiescent()
                }),
                max_batch: 1,
                ..EngineConfig::new(CapeConfig::tiny(2))
            },
        ));
        // Wedge machine 0: the struck job's dead block has no spare to
        // remap onto, so the machine quarantines.
        c.submit(add_job(8, 2)).unwrap();
        c.strike(0, 0, FaultKind::DeadBlock).unwrap();
        c.run();
        assert_eq!(c.health(0), HealthState::Quarantined);

        // Field service: fresh spares absorb the pending fault and the
        // machine drops to Probation. The credit is single-use.
        assert!(c.readmit(0, 8));
        assert_eq!(c.health(0), HealthState::Probation);
        assert!(!c.readmit(0, 8), "repair credit is once per machine");

        // On probation it gets no new work…
        let during = c.submit(add_job(16, 3)).unwrap();
        let report = c.run();
        assert_eq!(
            report.jobs.last().unwrap().machine,
            Some(1),
            "probation machines are out of rotation"
        );
        // …and clean scheduling rounds walk it back to Healthy (some
        // clean windows may already have accrued while the job above
        // was served — every round probes the whole fleet).
        let clean = c.config().health.probation_clean_windows;
        let mut rounds = 0;
        while c.health(0) == HealthState::Probation {
            c.step();
            rounds += 1;
            assert!(
                rounds <= clean,
                "probation must end within {clean} clean rounds"
            );
        }
        assert_eq!(c.health(0), HealthState::Healthy);

        // Re-admitted for real: a fresh kernel routes to it (least
        // loaded, lowest index) and completes bit-exact.
        let after = c.submit(add_job(4, 7)).unwrap();
        let report = c.run();
        let placed = report.jobs.last().unwrap();
        assert_eq!(
            placed.machine,
            Some(0),
            "re-admitted machine idle, gets work"
        );
        assert!(c.job_report(during).unwrap().succeeded());
        assert!(c.job_report(after).unwrap().succeeded());
        let want: Vec<u32> = (0..4).map(|i| (i * 7 + 1) * 2).collect();
        assert_eq!(c.memory(after).unwrap().read_u32_slice(0x4000, 4), want);
        // The ladder's moves are all on the transition record.
        let hops: Vec<(HealthState, HealthState)> = report
            .transitions
            .iter()
            .filter(|t| t.machine == 0)
            .map(|t| (t.from, t.to))
            .collect();
        assert!(hops.contains(&(HealthState::Quarantined, HealthState::Probation)));
        assert!(hops.contains(&(HealthState::Probation, HealthState::Healthy)));
    }

    #[test]
    fn report_aggregates_queue_latency_and_skew() {
        let mut c = fleet(2);
        for s in 1..=4 {
            c.submit(add_job(8, s)).unwrap();
        }
        let report = c.run();
        assert_eq!(report.completed(), 4);
        assert!(report.makespan_cycles() > 0);
        assert!(report.jobs_per_ms() > 0.0);
        assert!(report.utilization_skew() >= 1.0);
        assert!(report.queue_latency().max >= report.queue_latency().p50);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.migration_queue_latency(), Default::default());
    }
}

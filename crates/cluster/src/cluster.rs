//! The fleet scheduler: N independent engines behind one front door.

use std::collections::HashSet;

use cape_core::{FaultKind, HealthThresholds};
use cape_engine::{
    fingerprint, AdmissionError, Engine, EngineConfig, FaultApiError, JobError, JobId, JobSpec,
};
use cape_mem::MainMemory;

use crate::health::{HealthMonitor, HealthProbe, HealthState};
use crate::report::{ClusterJobReport, ClusterReport, HealthTransition, MachineReport};

/// Fleet-wide job identity handed out at admission. Stable across
/// migrations: engine-local [`JobId`]s change every time a job moves,
/// but the cluster id is stamped into the spec's tag and travels with
/// it, so every engine-side report stays correlatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterJobId(pub u64);

impl std::fmt::Display for ClusterJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cjob#{}", self.0)
    }
}

/// Fleet tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Machines in the fleet, each an independent [`Engine`] (own CSB,
    /// own program cache, own virtual clock).
    pub machines: usize,
    /// Per-machine engine configuration: machine model, bounded queue
    /// depth, slice budget, batch size and fault policy, identical
    /// across the fleet.
    pub engine: EngineConfig,
    /// When the health monitor stops trusting a machine.
    pub health: HealthThresholds,
    /// Placements one job may consume (the initial submit plus re-runs
    /// after machine-fault failures) before the cluster accepts the
    /// typed failure instead of trying yet another machine.
    pub max_attempts: u32,
}

impl ClusterConfig {
    /// Defaults: `machines` machines, default health thresholds, and
    /// enough attempts to try every machine once.
    pub fn new(machines: usize, engine: EngineConfig) -> Self {
        Self {
            machines,
            engine,
            health: HealthThresholds::default(),
            max_attempts: machines.max(2) as u32,
        }
    }
}

/// One machine of the fleet.
struct Machine {
    engine: Engine,
    health: HealthMonitor,
    /// Program fingerprints routed here — the affinity signal: these
    /// kernels' compiled microprograms are (or will shortly be) warm in
    /// this machine's program cache.
    warm: HashSet<u64>,
}

/// Lifecycle record of one admitted job.
struct Track {
    /// Pristine copy of the spec as admitted (tag stamped). Failure
    /// re-runs restart from this, never from a partially-executed
    /// memory image.
    spec: JobSpec,
    fingerprint: u64,
    /// Where the job currently waits or runs, while unfinished.
    location: Option<(usize, JobId)>,
    /// Where the final report lives, once finished.
    finished: Option<(usize, JobId)>,
    migrations: u64,
    resubmissions: u64,
    attempts: u32,
    /// Admitted but unplaceable: every machine that could take it has
    /// left rotation. Re-placement is retried each step.
    stranded: bool,
}

/// A fleet of [`Engine`]s presenting the single-engine front door:
/// [`Cluster::submit`] with typed admission errors, [`Cluster::run`]
/// to drain, per-job reports and memory images afterwards.
///
/// Placement is fingerprint-affine: jobs whose program already ran on
/// some healthy machine land there (warm program cache), everything
/// else goes to the least-loaded healthy machine. Between scheduling
/// steps every machine's fault counters are re-sampled; a machine that
/// leaves `Healthy` has its unstarted queue drained and resubmitted to
/// healthy peers, and jobs it failed with machine-side errors are
/// re-run elsewhere from their pristine specs — completed work is
/// bit-identical to a single-engine run and no admitted job is ever
/// lost.
pub struct Cluster {
    config: ClusterConfig,
    machines: Vec<Machine>,
    jobs: Vec<Track>,
    migrations: u64,
    resubmissions: u64,
    transitions: Vec<HealthTransition>,
}

impl Cluster {
    /// A fleet of freshly built machines.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero (engine-config invariants are
    /// checked by [`Engine::new`]).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.machines > 0, "a cluster needs at least one machine");
        let machines = (0..config.machines)
            .map(|_| Machine {
                engine: Engine::new(config.engine),
                health: HealthMonitor::new(config.health),
                warm: HashSet::new(),
            })
            .collect();
        Self {
            config,
            machines,
            jobs: Vec::new(),
            migrations: 0,
            resubmissions: 0,
            transitions: Vec::new(),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Machines in the fleet.
    pub fn machines(&self) -> usize {
        self.machines.len()
    }

    /// The current health classification of machine `i`.
    pub fn health(&self, machine: usize) -> HealthState {
        self.machines[machine].health.state()
    }

    /// Jobs waiting fleet-wide (stranded jobs included).
    pub fn pending_jobs(&self) -> usize {
        let queued: usize = self.machines.iter().map(|m| m.engine.pending_jobs()).sum();
        queued + self.jobs.iter().filter(|t| t.stranded).count()
    }

    /// Total queue slots across the fleet (the bound behind fleet-level
    /// backpressure; slots on non-healthy machines stop counting once
    /// those machines leave rotation).
    pub fn fleet_queue_capacity(&self) -> usize {
        self.machines.len() * self.config.engine.queue_capacity
    }

    /// Plants one CSB fault at `chain` of machine `machine` — the
    /// strike hook fleet stress harnesses use to degrade one machine
    /// mid-run.
    ///
    /// # Errors
    ///
    /// [`FaultApiError::NoFaultPolicy`] when the engines were built
    /// without a fault policy (nothing to inject into).
    pub fn strike(
        &mut self,
        machine: usize,
        chain: usize,
        kind: FaultKind,
    ) -> Result<(), FaultApiError> {
        self.machines[machine].engine.inject_fault(chain, kind)
    }

    /// Re-admits a repaired machine onto the probation ladder: models a
    /// field service that installs `spares_per_shard` fresh spare
    /// blocks, remaps every still-pending faulty block onto them
    /// ([`cape_engine::Engine::service_spares`]), and moves the health
    /// monitor `Quarantined → Probation`. The machine receives no new
    /// work yet — it must post `probation_clean_windows` consecutive
    /// clean health windows (one per [`Cluster::step`]) to re-enter
    /// rotation, and one dirty window re-quarantines it permanently
    /// (the repair credit is once per machine).
    ///
    /// Returns whether the machine was eligible: `false` when it is not
    /// quarantined, its repair credit is already spent, or the
    /// replenished spares still cannot absorb its pending faults.
    pub fn readmit(&mut self, machine: usize, spares_per_shard: usize) -> bool {
        let m = &mut self.machines[machine];
        if m.health.state() != HealthState::Quarantined {
            return false;
        }
        let _ = m.engine.service_spares(spares_per_shard);
        if m.engine.machine().pending_faults() > 0 || !m.health.mark_repaired() {
            return false;
        }
        self.transitions.push(HealthTransition {
            machine,
            from: HealthState::Quarantined,
            to: HealthState::Probation,
        });
        true
    }

    /// Admits a job to the fleet, routing it by fingerprint affinity:
    /// a healthy machine already warm for this program wins, otherwise
    /// the least-loaded healthy machine takes it.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when no healthy machine has queue
    /// room (fleet-level backpressure — resubmit after a drain), plus
    /// everything [`Engine::submit`] refuses (empty or unencodable
    /// programs), bounced before any state changes.
    pub fn submit(&mut self, spec: JobSpec) -> Result<ClusterJobId, AdmissionError> {
        let fp = fingerprint(&spec.program);
        let Some(target) = self.route(fp, None) else {
            return Err(AdmissionError::QueueFull {
                capacity: self.fleet_queue_capacity(),
            });
        };
        let gid = self.jobs.len() as u64;
        let spec = spec.with_tag(gid);
        let local = self.machines[target].engine.submit(spec.clone())?;
        self.machines[target].warm.insert(fp);
        self.jobs.push(Track {
            spec,
            fingerprint: fp,
            location: Some((target, local)),
            finished: None,
            migrations: 0,
            resubmissions: 0,
            attempts: 1,
            stranded: false,
        });
        Ok(ClusterJobId(gid))
    }

    /// Serves every admitted job to its final accounting and reports
    /// the drain. Terminates even if the whole fleet degrades: jobs
    /// with no healthy machine left to run on are reported stranded,
    /// never dropped.
    pub fn run(&mut self) -> ClusterReport {
        while self.step() {}
        self.report()
    }

    /// One scheduling round: re-places stranded jobs, then lets every
    /// healthy machine serve one batch, re-sampling every machine's
    /// health (and draining it if it degraded) afterwards. Machines out
    /// of rotation are still probed each round — that is what advances
    /// a re-admitted machine's probation clock. Returns whether any
    /// progress was made — `false` means the fleet is drained (or
    /// wedged with only stranded jobs, which [`Cluster::run`] reports
    /// rather than spins on).
    ///
    /// Public so tests and stress harnesses can interleave strikes with
    /// scheduling rounds deterministically.
    pub fn step(&mut self) -> bool {
        let mut progressed = self.place_stranded() > 0;
        for i in 0..self.machines.len() {
            let served = self.machines[i].health.state() == HealthState::Healthy
                && self.machines[i].engine.run_next_batch();
            progressed |= served;
            // Health first: if the batch burned the machine's trust, its
            // queue must move before anything else lands on it.
            self.observe(i);
            if served {
                self.collect_finished(i);
            }
        }
        progressed
    }

    /// Routes one job: warm-affinity first, least-loaded fallback, only
    /// healthy machines with queue room, `exclude` never (the machine a
    /// drain or failure is moving work *off*).
    fn route(&self, fp: u64, exclude: Option<usize>) -> Option<usize> {
        let eligible = |i: usize, m: &Machine| {
            Some(i) != exclude
                && m.health.state() == HealthState::Healthy
                && m.engine.pending_jobs() < m.engine.config().queue_capacity
        };
        self.machines
            .iter()
            .enumerate()
            .filter(|(i, m)| eligible(*i, m) && m.warm.contains(&fp))
            .min_by_key(|(i, m)| (m.engine.pending_jobs(), *i))
            .or_else(|| {
                self.machines
                    .iter()
                    .enumerate()
                    .filter(|(i, m)| eligible(*i, m))
                    .min_by_key(|(i, m)| (m.engine.pending_jobs(), *i))
            })
            .map(|(i, _)| i)
    }

    /// Samples machine `i`'s health; on a downward transition, drains
    /// its unstarted queue onto healthy peers. Upward transitions
    /// (probation earning its way back to Healthy) are recorded but
    /// drain nothing — there is nothing queued on a machine that just
    /// re-entered rotation.
    fn observe(&mut self, i: usize) {
        let m = &mut self.machines[i];
        let probe = HealthProbe {
            fault: m.engine.machine().fault_stats(),
            retries: m.engine.total_retries(),
            pending_faults: m.engine.machine().pending_faults(),
            spare_blocks_free: m.engine.machine().spare_blocks_free(),
            quarantined_blocks: m.engine.machine().quarantined_blocks(),
        };
        let before = m.health.state();
        let after = m.health.observe(&probe);
        if after != before {
            self.transitions.push(HealthTransition {
                machine: i,
                from: before,
                to: after,
            });
            if after > before {
                self.drain(i);
            }
        }
    }

    /// Moves machine `i`'s entire pending queue to healthy peers. A
    /// pending job has not run a single slice, so the drained spec is
    /// exactly what was admitted — resubmission elsewhere is
    /// bit-equivalent to having routed there in the first place. Jobs
    /// with nowhere to go are parked stranded and retried each step.
    fn drain(&mut self, i: usize) {
        for (local, spec) in self.machines[i].engine.drain_pending() {
            let gid = spec.tag.expect("cluster jobs are tagged") as usize;
            debug_assert_eq!(self.jobs[gid].location, Some((i, local)));
            match self.route(self.jobs[gid].fingerprint, Some(i)) {
                Some(target) => {
                    let new_local = self.machines[target]
                        .engine
                        .submit(spec)
                        .expect("routed machine has room and the spec was admitted once already");
                    self.machines[target]
                        .warm
                        .insert(self.jobs[gid].fingerprint);
                    self.jobs[gid].location = Some((target, new_local));
                    self.jobs[gid].migrations += 1;
                    self.migrations += 1;
                }
                None => {
                    self.jobs[gid].location = None;
                    self.jobs[gid].stranded = true;
                }
            }
        }
    }

    /// Maps machine `i`'s newly finished jobs to their cluster records.
    /// Machine-fault failures (retries exhausted, spares exhausted) are
    /// re-run on a healthy peer from the pristine spec; program-bug
    /// failures are deterministic and accepted as final.
    fn collect_finished(&mut self, i: usize) {
        for gid in 0..self.jobs.len() {
            let Some((m, local)) = self.jobs[gid].location else {
                continue;
            };
            if m != i {
                continue;
            }
            let Some(report) = self.machines[i].engine.job_report(local) else {
                continue;
            };
            let machine_fault = matches!(
                report.error,
                Some(JobError::FaultRetriesExhausted { .. })
                    | Some(JobError::SparesExhausted { .. })
            );
            if !machine_fault || self.jobs[gid].attempts >= self.config.max_attempts {
                self.jobs[gid].finished = Some((i, local));
                self.jobs[gid].location = None;
                continue;
            }
            match self.route(self.jobs[gid].fingerprint, Some(i)) {
                Some(target) => {
                    let new_local = self.machines[target]
                        .engine
                        .submit(self.jobs[gid].spec.clone())
                        .expect("routed machine has room and the spec was admitted once already");
                    self.machines[target]
                        .warm
                        .insert(self.jobs[gid].fingerprint);
                    self.jobs[gid].location = Some((target, new_local));
                    self.jobs[gid].attempts += 1;
                    self.jobs[gid].resubmissions += 1;
                    self.resubmissions += 1;
                }
                // No healthy machine left: the typed failure stands.
                None => {
                    self.jobs[gid].finished = Some((i, local));
                    self.jobs[gid].location = None;
                }
            }
        }
    }

    /// Retries placement of stranded jobs (queue room frees up as
    /// machines drain). Returns how many were placed.
    fn place_stranded(&mut self) -> usize {
        let mut placed = 0;
        for gid in 0..self.jobs.len() {
            if !self.jobs[gid].stranded || self.jobs[gid].finished.is_some() {
                continue;
            }
            let Some(target) = self.route(self.jobs[gid].fingerprint, None) else {
                continue;
            };
            let local = self.machines[target]
                .engine
                .submit(self.jobs[gid].spec.clone())
                .expect("routed machine has room and the spec was admitted once already");
            self.machines[target]
                .warm
                .insert(self.jobs[gid].fingerprint);
            self.jobs[gid].location = Some((target, local));
            self.jobs[gid].stranded = false;
            self.jobs[gid].migrations += 1;
            self.migrations += 1;
            placed += 1;
        }
        placed
    }

    /// The fleet report over everything admitted so far.
    pub fn report(&self) -> ClusterReport {
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(gid, t)| ClusterJobReport {
                id: ClusterJobId(gid as u64),
                machine: t.finished.map(|(m, _)| m),
                migrations: t.migrations,
                resubmissions: t.resubmissions,
                attempts: t.attempts,
                report: t.finished.map(|(m, local)| {
                    self.machines[m]
                        .engine
                        .job_report(local)
                        .expect("finished jobs have reports")
                        .clone()
                }),
                stranded: t.finished.is_none() && t.location.is_none(),
            })
            .collect();
        let machines = self
            .machines
            .iter()
            .enumerate()
            .map(|(index, m)| MachineReport {
                index,
                state: m.health.state(),
                engine: m.engine.report(),
            })
            .collect();
        ClusterReport {
            jobs,
            machines,
            migrations: self.migrations,
            resubmissions: self.resubmissions,
            transitions: self.transitions.clone(),
            freq_ghz: self.config.engine.machine.freq_ghz,
        }
    }

    /// The final report of one cluster job (after [`Cluster::run`]).
    pub fn job_report(&self, id: ClusterJobId) -> Option<cape_engine::JobReport> {
        let t = self.jobs.get(id.0 as usize)?;
        let (m, local) = t.finished?;
        self.machines[m].engine.job_report(local).cloned()
    }

    /// A served job's memory image — where its outputs live, on
    /// whichever machine finally ran it.
    pub fn memory(&self, id: ClusterJobId) -> Option<&MainMemory> {
        let t = self.jobs.get(id.0 as usize)?;
        let (m, local) = t.finished?;
        self.machines[m].engine.memory(local)
    }
}

//! Machine health classification for the fleet scheduler.
//!
//! Each machine's CSB fault layer already counts everything a fleet
//! needs to know about its trustworthiness — detections by tier,
//! checkpointed retries, spare-block inventory, unremappable faults.
//! The [`HealthMonitor`] turns those raw counters into a three-state
//! classification by sampling them between scheduling steps and
//! comparing the *deltas* (new strikes since the last look, not
//! lifetime totals) against the [`HealthThresholds`] in the cluster
//! configuration.

use cape_core::{FaultStats, HealthThresholds};

/// How much the fleet trusts one machine.
///
/// The ladder is one-way within a serving run: a machine that leaves
/// `Healthy` never re-enters rotation (re-admitting flaky hardware
/// mid-run would trade a bounded migration cost for an unbounded
/// retry bill). Operators re-arm a repaired machine by rebuilding the
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// In rotation: takes new jobs and serves its queue.
    Healthy,
    /// Still computing correctly (checkpointed retry heals its jobs)
    /// but burning retries and spares: its unstarted queue is drained
    /// to healthy peers and the router stops sending it work.
    Degraded,
    /// Unremappable faults pending — it can no longer guarantee
    /// bit-exact results. Out of rotation entirely; anything it failed
    /// is re-run elsewhere.
    Quarantined,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One sample of a machine's observable health signals, read off the
/// engine between batches (all cheap counter reads — no report clone).
#[derive(Debug, Clone)]
pub struct HealthProbe {
    /// Cumulative fault-layer counters ([`cape_engine::Engine::machine`]
    /// → `fault_stats()`).
    pub fault: FaultStats,
    /// Cumulative checkpointed slice re-executions
    /// ([`cape_engine::Engine::total_retries`]).
    pub retries: u64,
    /// Faulty blocks pending with no spare left to remap onto.
    pub pending_faults: usize,
    /// Spare blocks still unused.
    pub spare_blocks_free: usize,
    /// Physical blocks quarantined so far.
    pub quarantined_blocks: usize,
}

/// Per-machine health tracker: feed it [`HealthProbe`]s, read back the
/// [`HealthState`].
#[derive(Debug)]
pub struct HealthMonitor {
    thresholds: HealthThresholds,
    state: HealthState,
    last_strikes: u64,
    last_retries: u64,
    transitions: u64,
}

impl HealthMonitor {
    /// A monitor that trusts its machine until the counters say not to.
    pub fn new(thresholds: HealthThresholds) -> Self {
        Self {
            thresholds,
            state: HealthState::Healthy,
            last_strikes: 0,
            last_retries: 0,
            transitions: 0,
        }
    }

    /// The current classification.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Downward state transitions taken so far (at most two).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Re-classifies from a fresh sample, returning the new state.
    ///
    /// Strike and retry signals are evaluated as deltas over the window
    /// since the previous `observe` call; the spare-block and
    /// pending-fault signals are absolute (inventory does not reset).
    /// The state only ever moves down the ladder.
    pub fn observe(&mut self, probe: &HealthProbe) -> HealthState {
        let strikes =
            probe.fault.detected_parity + probe.fault.detected_golden + probe.fault.detected_scrub;
        let new_strikes = strikes.saturating_sub(self.last_strikes);
        let new_retries = probe.retries.saturating_sub(self.last_retries);
        self.last_strikes = strikes;
        self.last_retries = probe.retries;

        let next = if probe.pending_faults >= self.thresholds.quarantine_pending_faults {
            HealthState::Quarantined
        } else if new_strikes >= self.thresholds.degraded_strikes
            || new_retries >= self.thresholds.degraded_retries
            || (probe.quarantined_blocks > 0
                && probe.spare_blocks_free <= self.thresholds.degraded_spares_free)
        {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        if next > self.state {
            self.transitions += 1;
            self.state = next;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> HealthProbe {
        HealthProbe {
            fault: FaultStats::default(),
            retries: 0,
            pending_faults: 0,
            spare_blocks_free: 8,
            quarantined_blocks: 0,
        }
    }

    #[test]
    fn quiet_machines_stay_healthy() {
        let mut m = HealthMonitor::new(HealthThresholds::default());
        for _ in 0..10 {
            assert_eq!(m.observe(&probe()), HealthState::Healthy);
        }
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn strike_bursts_degrade_and_health_is_sticky() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.fault.detected_parity = t.degraded_strikes; // burst in one window
        assert_eq!(m.observe(&p), HealthState::Degraded);
        // The same cumulative count in the next window is a zero delta,
        // but the ladder is one-way.
        assert_eq!(m.observe(&p), HealthState::Degraded);
        assert_eq!(m.transitions(), 1);
    }

    #[test]
    fn slow_strike_accrual_below_the_window_rate_stays_healthy() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        // One detection per window, forever: normal wear, never a burst.
        for round in 1..=20 {
            p.fault.detected_parity = round;
            assert_eq!(m.observe(&p), HealthState::Healthy);
        }
    }

    #[test]
    fn retry_burn_degrades() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.retries = t.degraded_retries;
        assert_eq!(m.observe(&p), HealthState::Degraded);
    }

    #[test]
    fn spare_exhaustion_degrades_and_pending_faults_quarantine() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.quarantined_blocks = 3;
        p.spare_blocks_free = t.degraded_spares_free;
        assert_eq!(m.observe(&p), HealthState::Degraded);
        p.pending_faults = t.quarantine_pending_faults;
        assert_eq!(m.observe(&p), HealthState::Quarantined);
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn a_full_spare_rack_never_trips_the_inventory_signal() {
        let mut m = HealthMonitor::new(HealthThresholds::default());
        let mut p = probe();
        // Low absolute spares but nothing ever quarantined: that is just
        // a small machine, not a worn one.
        p.spare_blocks_free = 0;
        p.quarantined_blocks = 0;
        assert_eq!(m.observe(&p), HealthState::Healthy);
    }
}

//! Machine health classification for the fleet scheduler.
//!
//! Each machine's CSB fault layer already counts everything a fleet
//! needs to know about its trustworthiness — detections by tier,
//! checkpointed retries, spare-block inventory, unremappable faults.
//! The [`HealthMonitor`] turns those raw counters into a four-state
//! classification by sampling them between scheduling steps and
//! comparing the *deltas* (new strikes since the last look, not
//! lifetime totals) against the [`HealthThresholds`] in the cluster
//! configuration. Demotion is automatic; the only way back up is the
//! explicit-repair probation ladder (see [`HealthState`]).

use cape_core::{FaultStats, HealthThresholds};

/// How much the fleet trusts one machine.
///
/// The ladder is one-way downward while a machine serves: leaving
/// `Healthy` on raw signals never reverses itself (re-admitting flaky
/// hardware on its own say-so would trade a bounded migration cost for
/// an unbounded retry bill). The single sanctioned way back is an
/// explicit repair: [`HealthMonitor::mark_repaired`] moves a
/// `Quarantined` machine to `Probation` — once per monitor lifetime —
/// and only `probation_clean_windows` consecutive clean windows
/// promote it back to `Healthy`. One dirty window on probation and it
/// is `Quarantined` for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// In rotation: takes new jobs and serves its queue.
    Healthy,
    /// Repaired after quarantine and earning trust back: probed every
    /// window but not yet eligible for new work. Clean windows count
    /// toward re-admission; any strike re-quarantines permanently.
    Probation,
    /// Still computing correctly (checkpointed retry heals its jobs)
    /// but burning retries and spares: its unstarted queue is drained
    /// to healthy peers and the router stops sending it work.
    Degraded,
    /// Unremappable faults pending — it can no longer guarantee
    /// bit-exact results. Out of rotation entirely; anything it failed
    /// is re-run elsewhere.
    Quarantined,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Probation => write!(f, "probation"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One sample of a machine's observable health signals, read off the
/// engine between batches (all cheap counter reads — no report clone).
#[derive(Debug, Clone)]
pub struct HealthProbe {
    /// Cumulative fault-layer counters ([`cape_engine::Engine::machine`]
    /// → `fault_stats()`).
    pub fault: FaultStats,
    /// Cumulative checkpointed slice re-executions
    /// ([`cape_engine::Engine::total_retries`]).
    pub retries: u64,
    /// Faulty blocks pending with no spare left to remap onto.
    pub pending_faults: usize,
    /// Spare blocks still unused.
    pub spare_blocks_free: usize,
    /// Physical blocks quarantined so far.
    pub quarantined_blocks: usize,
}

/// Per-machine health tracker: feed it [`HealthProbe`]s, read back the
/// [`HealthState`].
#[derive(Debug)]
pub struct HealthMonitor {
    thresholds: HealthThresholds,
    state: HealthState,
    last_strikes: u64,
    last_retries: u64,
    transitions: u64,
    /// Consecutive clean windows posted since entering Probation.
    clean_windows: u64,
    /// Whether the one-per-lifetime repair credit has been spent.
    repaired: bool,
}

impl HealthMonitor {
    /// A monitor that trusts its machine until the counters say not to.
    pub fn new(thresholds: HealthThresholds) -> Self {
        Self {
            thresholds,
            state: HealthState::Healthy,
            last_strikes: 0,
            last_retries: 0,
            transitions: 0,
            clean_windows: 0,
            repaired: false,
        }
    }

    /// The current classification.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// State transitions taken so far (downward demotions, the repair
    /// drop to Probation, and the probation-earned promotion back).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Clean windows posted so far on Probation (zero elsewhere).
    pub fn probation_clean_windows(&self) -> u64 {
        self.clean_windows
    }

    /// Registers an explicit hardware repair: a `Quarantined` machine
    /// drops to `Probation` and starts earning clean windows toward
    /// re-admission. Allowed exactly once per monitor lifetime — a
    /// machine that gets struck again after its one repair is
    /// quarantined for good. Returns whether the transition happened
    /// (`false` when not quarantined or the repair credit is spent).
    pub fn mark_repaired(&mut self) -> bool {
        if self.state != HealthState::Quarantined || self.repaired {
            return false;
        }
        self.repaired = true;
        self.clean_windows = 0;
        self.transitions += 1;
        self.state = HealthState::Probation;
        true
    }

    /// Re-classifies from a fresh sample, returning the new state.
    ///
    /// Strike and retry signals are evaluated as deltas over the window
    /// since the previous `observe` call; the spare-block and
    /// pending-fault signals are absolute (inventory does not reset).
    /// The state only moves down the ladder, with one exception: on
    /// `Probation` a clean window increments the re-admission counter
    /// and the `probation_clean_windows`-th promotes back to `Healthy`,
    /// while any dirty window demotes straight to `Quarantined` (the
    /// repair credit is already spent, so that is final).
    pub fn observe(&mut self, probe: &HealthProbe) -> HealthState {
        let strikes =
            probe.fault.detected_parity + probe.fault.detected_golden + probe.fault.detected_scrub;
        let new_strikes = strikes.saturating_sub(self.last_strikes);
        let new_retries = probe.retries.saturating_sub(self.last_retries);
        self.last_strikes = strikes;
        self.last_retries = probe.retries;

        let raw = if probe.pending_faults >= self.thresholds.quarantine_pending_faults {
            HealthState::Quarantined
        } else if new_strikes >= self.thresholds.degraded_strikes
            || new_retries >= self.thresholds.degraded_retries
            || (probe.quarantined_blocks > 0
                && probe.spare_blocks_free <= self.thresholds.degraded_spares_free)
        {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        let next = if self.state == HealthState::Probation {
            if raw == HealthState::Healthy {
                self.clean_windows += 1;
                if self.clean_windows >= self.thresholds.probation_clean_windows {
                    HealthState::Healthy
                } else {
                    HealthState::Probation
                }
            } else {
                HealthState::Quarantined
            }
        } else {
            raw.max(self.state)
        };
        if next != self.state {
            self.transitions += 1;
            self.state = next;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> HealthProbe {
        HealthProbe {
            fault: FaultStats::default(),
            retries: 0,
            pending_faults: 0,
            spare_blocks_free: 8,
            quarantined_blocks: 0,
        }
    }

    #[test]
    fn quiet_machines_stay_healthy() {
        let mut m = HealthMonitor::new(HealthThresholds::default());
        for _ in 0..10 {
            assert_eq!(m.observe(&probe()), HealthState::Healthy);
        }
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn strike_bursts_degrade_and_health_is_sticky() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.fault.detected_parity = t.degraded_strikes; // burst in one window
        assert_eq!(m.observe(&p), HealthState::Degraded);
        // The same cumulative count in the next window is a zero delta,
        // but the ladder is one-way.
        assert_eq!(m.observe(&p), HealthState::Degraded);
        assert_eq!(m.transitions(), 1);
    }

    #[test]
    fn slow_strike_accrual_below_the_window_rate_stays_healthy() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        // One detection per window, forever: normal wear, never a burst.
        for round in 1..=20 {
            p.fault.detected_parity = round;
            assert_eq!(m.observe(&p), HealthState::Healthy);
        }
    }

    #[test]
    fn retry_burn_degrades() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.retries = t.degraded_retries;
        assert_eq!(m.observe(&p), HealthState::Degraded);
    }

    #[test]
    fn spare_exhaustion_degrades_and_pending_faults_quarantine() {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.quarantined_blocks = 3;
        p.spare_blocks_free = t.degraded_spares_free;
        assert_eq!(m.observe(&p), HealthState::Degraded);
        p.pending_faults = t.quarantine_pending_faults;
        assert_eq!(m.observe(&p), HealthState::Quarantined);
        assert_eq!(m.transitions(), 2);
    }

    /// Drives a fresh monitor to Quarantined via pending faults.
    fn quarantined() -> (HealthMonitor, HealthProbe) {
        let t = HealthThresholds::default();
        let mut m = HealthMonitor::new(t);
        let mut p = probe();
        p.pending_faults = t.quarantine_pending_faults;
        assert_eq!(m.observe(&p), HealthState::Quarantined);
        // Repair clears the pending faults and replenishes spares.
        p.pending_faults = 0;
        (m, p)
    }

    #[test]
    fn repair_earns_healthy_after_enough_clean_windows() {
        let t = HealthThresholds::default();
        let (mut m, p) = quarantined();
        assert!(m.mark_repaired());
        assert_eq!(m.state(), HealthState::Probation);
        for w in 1..t.probation_clean_windows {
            assert_eq!(m.observe(&p), HealthState::Probation);
            assert_eq!(m.probation_clean_windows(), w);
        }
        assert_eq!(m.observe(&p), HealthState::Healthy);
        // Healthy again is fully in rotation; quiet windows stay quiet.
        assert_eq!(m.observe(&p), HealthState::Healthy);
    }

    #[test]
    fn a_dirty_probation_window_requarantines_for_good() {
        let t = HealthThresholds::default();
        let (mut m, mut p) = quarantined();
        assert!(m.mark_repaired());
        assert_eq!(m.observe(&p), HealthState::Probation);
        p.fault.detected_parity = t.degraded_strikes; // burst mid-probation
        assert_eq!(m.observe(&p), HealthState::Quarantined);
        // The repair credit is spent: no second chance.
        assert!(!m.mark_repaired());
        assert_eq!(m.state(), HealthState::Quarantined);
    }

    #[test]
    fn repair_is_refused_off_quarantine() {
        let mut m = HealthMonitor::new(HealthThresholds::default());
        assert!(
            !m.mark_repaired(),
            "healthy machines have nothing to repair"
        );
        let t = HealthThresholds::default();
        let mut p = probe();
        p.retries = t.degraded_retries;
        assert_eq!(m.observe(&p), HealthState::Degraded);
        assert!(!m.mark_repaired(), "degraded is not quarantined");
    }

    #[test]
    fn a_full_spare_rack_never_trips_the_inventory_signal() {
        let mut m = HealthMonitor::new(HealthThresholds::default());
        let mut p = probe();
        // Low absolute spares but nothing ever quarantined: that is just
        // a small machine, not a worn one.
        p.spare_blocks_free = 0;
        p.quarantined_blocks = 0;
        assert_eq!(m.observe(&p), HealthState::Healthy);
    }
}

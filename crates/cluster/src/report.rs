//! Fleet-level serving metrics: per-job outcomes across migrations,
//! per-machine engine reports, and the aggregate figures a capacity
//! planner reads (makespan throughput, utilization skew, migration
//! accounting, cross-machine queue latency).

use cape_core::WindowFlushes;
use cape_engine::{EngineReport, JobReport, QueueLatency};

use crate::cluster::ClusterJobId;
use crate::health::HealthState;

/// One downward health reclassification taken during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Which machine moved.
    pub machine: usize,
    /// The state it left.
    pub from: HealthState,
    /// The state it entered.
    pub to: HealthState,
}

/// The final word on one admitted cluster job, across every machine it
/// touched.
#[derive(Debug, Clone)]
pub struct ClusterJobReport {
    /// The fleet-wide id handed out at admission (also stamped into
    /// every engine-side report's `tag`).
    pub id: ClusterJobId,
    /// The machine that produced the final report, if the job ran.
    pub machine: Option<usize>,
    /// Times the job was drained off a degrading machine's queue and
    /// resubmitted elsewhere before it started.
    pub migrations: u64,
    /// Full re-runs on another machine after a machine-fault failure
    /// (retries exhausted / spares exhausted).
    pub resubmissions: u64,
    /// Placements consumed (initial submit + resubmissions).
    pub attempts: u32,
    /// The engine report of the final attempt (`None` only for a
    /// stranded job that never ran anywhere).
    pub report: Option<JobReport>,
    /// True when the fleet ran out of healthy machines before the job
    /// could be placed — admitted, never lost, but unserved.
    pub stranded: bool,
}

impl ClusterJobReport {
    /// True if the job halted cleanly somewhere.
    pub fn succeeded(&self) -> bool {
        self.report.as_ref().is_some_and(|r| r.error.is_none())
    }

    /// True if the job ever moved between machines, for either reason.
    pub fn migrated(&self) -> bool {
        self.migrations + self.resubmissions > 0
    }
}

/// One machine's view of the run.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Fleet index of the machine.
    pub index: usize,
    /// Final health classification.
    pub state: HealthState,
    /// The machine's own engine report. Jobs that failed here and were
    /// re-run elsewhere appear in this report *and* (as their final
    /// attempt) in another machine's — the authoritative per-job view is
    /// [`ClusterReport::jobs`].
    pub engine: EngineReport,
}

/// What one [`Cluster::run`](crate::Cluster::run) accomplished.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-job final outcomes, in admission order. Every admitted job
    /// appears exactly once — the zero-loss ledger.
    pub jobs: Vec<ClusterJobReport>,
    /// Per-machine engine reports and final health states.
    pub machines: Vec<MachineReport>,
    /// Queue drains: pending jobs moved off degrading machines.
    pub migrations: u64,
    /// Failure re-runs: checkpoint-failed jobs re-executed elsewhere.
    pub resubmissions: u64,
    /// Every downward health reclassification, in order.
    pub transitions: Vec<HealthTransition>,
    /// Core frequency for cycle→time conversion.
    pub freq_ghz: f64,
}

impl ClusterReport {
    /// Jobs admitted to the fleet.
    pub fn admitted(&self) -> usize {
        self.jobs.len()
    }

    /// Jobs that halted cleanly on some machine.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.succeeded()).count()
    }

    /// Jobs whose final attempt failed with a typed error.
    pub fn failed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.report.as_ref().is_some_and(|r| r.error.is_some()))
            .count()
    }

    /// Jobs the fleet could not place before running out of healthy
    /// machines.
    pub fn stranded(&self) -> usize {
        self.jobs.iter().filter(|j| j.stranded).count()
    }

    /// Admitted jobs without a final accounting — the invariant the
    /// drain/resubmit protocol exists to hold at zero.
    pub fn lost(&self) -> usize {
        self.admitted() - self.completed() - self.failed() - self.stranded()
    }

    /// Fleet makespan: machines run in parallel, so the drain takes as
    /// long as its busiest machine.
    pub fn makespan_cycles(&self) -> u64 {
        self.machines
            .iter()
            .map(|m| m.engine.total_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Makespan in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.makespan_cycles() as f64 / (self.freq_ghz * 1e6)
    }

    /// Jobs served per millisecond of fleet makespan.
    pub fn jobs_per_ms(&self) -> f64 {
        if self.makespan_cycles() == 0 {
            0.0
        } else {
            self.jobs.len() as f64 / self.time_ms()
        }
    }

    /// Load-balance quality: busiest machine's cycles over the fleet
    /// mean. 1.0 is perfectly even; the affinity router trades a little
    /// skew for warm program caches.
    pub fn utilization_skew(&self) -> f64 {
        if self.machines.is_empty() {
            return 0.0;
        }
        let cycles: Vec<u64> = self
            .machines
            .iter()
            .map(|m| m.engine.total_cycles)
            .collect();
        let max = *cycles.iter().max().expect("non-empty") as f64;
        let mean = cycles.iter().sum::<u64>() as f64 / cycles.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Cross-machine queue-latency distribution: every served job's
    /// admit→start wait on the machine that finally ran it.
    pub fn queue_latency(&self) -> QueueLatency {
        let waits: Vec<u64> = self
            .jobs
            .iter()
            .filter_map(|j| j.report.as_ref().map(|r| r.queue_cycles()))
            .collect();
        QueueLatency::from_waits(&waits)
    }

    /// Fleet-wide window flushes by cause, summed over every machine's
    /// engine report — where the fleet's fusion windows ended.
    pub fn window_flushes(&self) -> WindowFlushes {
        let mut total = WindowFlushes::default();
        for m in &self.machines {
            total.accumulate(&m.engine.window_flushes);
        }
        total
    }

    /// Fleet-wide plan-level stores retired by the window compiler,
    /// summed over every machine's engine report.
    pub fn dead_stores_eliminated(&self) -> u64 {
        self.machines
            .iter()
            .map(|m| m.engine.dead_stores_eliminated)
            .sum()
    }

    /// Queue-latency distribution of migrated jobs only — the price of
    /// landing in a healthy machine's queue after a drain or a failure
    /// re-run (measured on the destination machine).
    pub fn migration_queue_latency(&self) -> QueueLatency {
        let waits: Vec<u64> = self
            .jobs
            .iter()
            .filter(|j| j.migrated())
            .filter_map(|j| j.report.as_ref().map(|r| r.queue_cycles()))
            .collect();
        QueueLatency::from_waits(&waits)
    }
}

//! The out-of-order baseline core model.

use cape_mem::{CacheHierarchy, CacheStats};
use serde::{Deserialize, Serialize};

/// Configuration of the baseline out-of-order core (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OooConfig {
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Front-end issue width.
    pub issue_width: u32,
    /// Integer ALUs.
    pub int_units: u32,
    /// Integer multiply units.
    pub mul_units: u32,
    /// Load/store units.
    pub mem_units: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Memory-level parallelism the 224-entry ROB / 72-entry LQ can
    /// sustain against main-memory misses (outstanding misses whose
    /// latencies overlap).
    pub mlp: f64,
    /// Main-memory latency in core cycles.
    pub mem_latency: u64,
    /// Main-memory bandwidth available to the core, bytes/ns.
    pub mem_gbps: f64,
    /// Branch misprediction penalty in cycles (tournament predictor,
    /// amortized residual rate applied by the model).
    pub branch_penalty: f64,
    /// Residual misprediction rate of the tournament predictor.
    pub mispredict_rate: f64,
    /// Fraction of the peak issue width the front end sustains on
    /// integer code (gem5-class aggressive cores sustain roughly half
    /// their peak width once fetch gaps, dependences and partial stalls
    /// are accounted for).
    pub sustained_issue_fraction: f64,
    /// Serialization charged per dependent read-modify-write (shared
    /// table updates: load-to-use plus forwarding), in cycles.
    pub rmw_dep_cycles: f64,
}

impl Default for OooConfig {
    fn default() -> Self {
        Self {
            freq_ghz: 3.6,
            issue_width: 8,
            int_units: 4,
            mul_units: 4,
            mem_units: 3,
            branch_units: 1,
            mlp: 16.0,
            mem_latency: 300,
            mem_gbps: 128.0,
            branch_penalty: 14.0,
            mispredict_rate: 0.02,
            sustained_issue_fraction: 0.5,
            rmw_dep_cycles: 2.0,
        }
    }
}

/// Timing summary of one kernel on the baseline core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Modeled cycles.
    pub cycles: u64,
    /// Clock used for time conversion.
    pub freq_ghz: f64,
    /// Dynamic instructions retired (approximate, from the op counts).
    pub instructions: u64,
    /// Issue-limited cycles (front-end bound).
    pub issue_cycles: u64,
    /// Functional-unit-limited cycles.
    pub unit_cycles: u64,
    /// Miss-latency-limited cycles (after MLP overlap).
    pub miss_cycles: u64,
    /// Bandwidth-limited cycles.
    pub bandwidth_cycles: u64,
    /// Dependence-chain-limited cycles (serialized RMW updates).
    pub dependency_cycles: u64,
    /// Per-level cache statistics, innermost first.
    pub cache_stats: Vec<CacheStats>,
    /// Bytes fetched from main memory.
    pub memory_bytes: u64,
}

impl BaselineReport {
    /// Wall-clock time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// The binding resource, for reporting.
    pub fn bound_by(&self) -> &'static str {
        let m = self
            .issue_cycles
            .max(self.unit_cycles)
            .max(self.miss_cycles)
            .max(self.bandwidth_cycles);
        let m = m.max(self.dependency_cycles);
        if m == self.dependency_cycles && self.dependency_cycles > 0 {
            "dependences"
        } else if m == self.bandwidth_cycles && self.bandwidth_cycles > 0 {
            "bandwidth"
        } else if m == self.miss_cycles && self.miss_cycles > 0 {
            "miss-latency"
        } else if m == self.unit_cycles {
            "functional-units"
        } else {
            "issue"
        }
    }
}

/// The instrumented out-of-order core: workload kernels call the `op` /
/// `load` / `store` hooks while computing natively, and [`finish`]
/// converts the gathered profile into cycles.
///
/// [`finish`]: OooCore::finish
#[derive(Debug)]
pub struct OooCore {
    config: OooConfig,
    caches: CacheHierarchy,
    int_ops: u64,
    mul_ops: u64,
    branches: u64,
    loads: u64,
    stores: u64,
    /// Accumulated L2/L3-hit latency beyond the pipelined L1 hit.
    mid_latency_cycles: u64,
    /// Accumulated main-memory miss latency.
    mem_latency_cycles: u64,
    /// Dependent read-modify-write count.
    rmw_ops: u64,
}

impl OooCore {
    /// Creates a core with the Table III three-level hierarchy.
    pub fn new(config: OooConfig) -> Self {
        Self {
            config,
            caches: CacheHierarchy::baseline_three_level(config.mem_latency),
            int_ops: 0,
            mul_ops: 0,
            branches: 0,
            loads: 0,
            stores: 0,
            mid_latency_cycles: 0,
            mem_latency_cycles: 0,
            rmw_ops: 0,
        }
    }

    /// With the default Table III configuration.
    pub fn table3() -> Self {
        Self::new(OooConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> OooConfig {
        self.config
    }

    /// Records `n` simple integer ALU operations.
    pub fn op(&mut self, n: u64) {
        self.int_ops += n;
    }

    /// Records `n` integer multiplies (or divides).
    pub fn mul(&mut self, n: u64) {
        self.mul_ops += n;
    }

    /// Records `n` conditional branches.
    pub fn branch(&mut self, n: u64) {
        self.branches += n;
    }

    /// Records a load from `addr` (streams through the cache simulator).
    pub fn load(&mut self, addr: u64) {
        self.loads += 1;
        let lat = self.caches.access(addr, false);
        self.account_access(lat);
    }

    /// Records a store to `addr`.
    pub fn store(&mut self, addr: u64) {
        self.stores += 1;
        let lat = self.caches.access(addr, true);
        self.account_access(lat);
    }

    /// Records a dependent read-modify-write of a shared table entry
    /// (histogram buckets, word-count tables, …): a load and a store
    /// plus partial serialization on the update chain.
    pub fn rmw(&mut self, addr: u64) {
        self.load(addr);
        self.op(1);
        self.store(addr);
        self.rmw_ops += 1;
    }

    fn account_access(&mut self, latency: u64) {
        // L1-hit latency is fully pipelined in an OoO core. Accesses that
        // reach main memory pay the long latency (overlapped up to the
        // MLP); L2/L3 hits exert much milder pressure since the deep LSQ
        // overlaps them almost completely.
        let l1 = 2;
        if latency >= self.config.mem_latency {
            self.mem_latency_cycles += self.config.mem_latency;
        } else if latency > l1 {
            self.mid_latency_cycles += latency - l1;
        }
    }

    /// Converts the gathered profile into a timing report.
    pub fn finish(&self) -> BaselineReport {
        let c = self.config;
        let instructions = self.int_ops + self.mul_ops + self.branches + self.loads + self.stores;
        let sustained = (f64::from(c.issue_width) * c.sustained_issue_fraction).max(1.0);
        let issue_cycles = (instructions as f64 / sustained).ceil() as u64;
        let unit_cycles = (self.int_ops.div_ceil(u64::from(c.int_units)))
            .max(self.mul_ops.div_ceil(u64::from(c.mul_units)))
            .max((self.loads + self.stores).div_ceil(u64::from(c.mem_units)))
            .max(self.branches.div_ceil(u64::from(c.branch_units)));
        let branch_stalls = (self.branches as f64 * c.mispredict_rate * c.branch_penalty) as u64;
        let miss_cycles = (self.mem_latency_cycles as f64 / c.mlp
            + self.mid_latency_cycles as f64 / (c.mlp * 4.0)) as u64;
        let line_bytes = 512u64; // L3 line / memory transfer granule
        let memory_bytes = self.caches.memory_fetches() * line_bytes;
        let bandwidth_cycles = (memory_bytes as f64 / c.mem_gbps * c.freq_ghz) as u64;
        let dependency_cycles = (self.rmw_ops as f64 * c.rmw_dep_cycles) as u64;
        let cycles = issue_cycles
            .max(unit_cycles + branch_stalls)
            .max(miss_cycles)
            .max(bandwidth_cycles)
            .max(dependency_cycles)
            .max(1);
        BaselineReport {
            cycles,
            freq_ghz: c.freq_ghz,
            instructions,
            issue_cycles,
            unit_cycles,
            miss_cycles,
            bandwidth_cycles,
            dependency_cycles,
            cache_stats: self.caches.stats(),
            memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_kernel_is_unit_limited() {
        let mut core = OooCore::table3();
        core.op(8_000_000);
        core.branch(100_000);
        let r = core.finish();
        // 8M int ops over 4 units = 2M cycles minimum.
        assert!(r.cycles >= 2_000_000);
        assert!(
            matches!(r.bound_by(), "functional-units" | "issue"),
            "{}",
            r.bound_by()
        );
    }

    #[test]
    fn streaming_kernel_is_memory_limited() {
        let mut core = OooCore::table3();
        // Stream 64 MiB with one add per element: far beyond the LLC.
        for i in 0..(64 * 1024 * 1024 / 64) {
            core.load(i * 64);
        }
        core.op(1024 * 1024);
        let r = core.finish();
        assert!(
            matches!(r.bound_by(), "bandwidth" | "miss-latency"),
            "{}",
            r.bound_by()
        );
        assert!(r.memory_bytes >= 64 * 1024 * 1024);
    }

    #[test]
    fn cache_resident_kernel_avoids_memory() {
        let mut core = OooCore::table3();
        // 16 KiB working set touched 100 times: L1-resident after pass 1.
        for _ in 0..100 {
            for i in 0..256 {
                core.load(i * 64);
            }
        }
        let r = core.finish();
        assert_eq!(r.cache_stats[0].misses, 256, "only cold misses");
        assert!(r.memory_bytes <= 256 * 512);
    }

    #[test]
    fn reports_convert_to_time() {
        let mut core = OooCore::table3();
        core.op(36_000_000); // 9M cycles at 4/cycle = 2.5 ms at 3.6 GHz
        let r = core.finish();
        assert!((r.time_ms() - 2.5).abs() < 0.1, "time {}", r.time_ms());
    }

    #[test]
    fn empty_profile_is_one_cycle() {
        assert_eq!(OooCore::table3().finish().cycles, 1);
    }
}

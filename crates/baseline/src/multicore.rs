//! Multicore scaling of the baseline (the 2- and 3-core bars of Fig. 11).

use crate::ooo::BaselineReport;
use serde::{Deserialize, Serialize};

/// Amdahl-style multicore model over a single-core [`BaselineReport`].
///
/// Each additional core replicates the private L1/L2 but shares the L3
/// and the memory bandwidth, so the parallel fraction's *compute* scales
/// with the core count while bandwidth-bound time does not — matching
/// the saturating multicore bars of the paper's Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticoreModel {
    /// Fraction of the single-core execution that the thread-parallel
    /// version distributes across cores (workload-specific).
    pub parallel_fraction: f64,
    /// Synchronization/work-distribution overhead per extra core, as a
    /// fraction of the serial time.
    pub sync_overhead: f64,
}

impl MulticoreModel {
    /// A model with the given parallel fraction and 1% per-core sync
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `parallel_fraction` is outside `[0, 1]`.
    pub fn new(parallel_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel fraction must be in [0, 1]"
        );
        Self {
            parallel_fraction,
            sync_overhead: 0.01,
        }
    }

    /// Time in milliseconds on `cores` cores, given the single-core
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn time_ms(&self, single_core: &BaselineReport, cores: u32) -> f64 {
        assert!(cores > 0, "need at least one core");
        let t1 = single_core.time_ms();
        // Bandwidth-bound time cannot shrink: the memory system is shared.
        let bw_ms = single_core.bandwidth_cycles as f64 / (single_core.freq_ghz * 1e6);
        let serial = t1 * (1.0 - self.parallel_fraction);
        let parallel = t1 * self.parallel_fraction / f64::from(cores);
        let overhead = t1 * self.sync_overhead * f64::from(cores - 1);
        (serial + parallel + overhead).max(bw_ms)
    }

    /// Speedup over the single core.
    pub fn speedup(&self, single_core: &BaselineReport, cores: u32) -> f64 {
        single_core.time_ms() / self.time_ms(single_core, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::OooCore;

    fn compute_report() -> BaselineReport {
        let mut core = OooCore::table3();
        core.op(40_000_000);
        core.finish()
    }

    #[test]
    fn perfectly_parallel_scales_nearly_linearly() {
        let r = compute_report();
        let m = MulticoreModel::new(1.0);
        let s2 = m.speedup(&r, 2);
        let s3 = m.speedup(&r, 3);
        assert!((1.8..=2.0).contains(&s2), "2-core speedup {s2}");
        assert!((2.6..=3.0).contains(&s3), "3-core speedup {s3}");
    }

    #[test]
    fn serial_work_caps_scaling() {
        let r = compute_report();
        let m = MulticoreModel::new(0.5);
        assert!(m.speedup(&r, 3) < 1.6);
    }

    #[test]
    fn bandwidth_bound_work_does_not_scale() {
        let mut core = OooCore::table3();
        for i in 0..(256 * 1024 * 1024u64 / 64) {
            core.load(i * 64);
        }
        let r = core.finish();
        let m = MulticoreModel::new(1.0);
        let s3 = m.speedup(&r, 3);
        assert!(s3 < 2.0, "bandwidth floor must cap scaling: {s3}");
    }

    #[test]
    fn one_core_is_identity() {
        let r = compute_report();
        let m = MulticoreModel::new(0.9);
        assert!((m.speedup(&r, 1) - 1.0).abs() < 1e-9);
    }
}

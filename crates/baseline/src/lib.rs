//! Area-equivalent baseline models for the CAPE evaluation (Table III).
//!
//! The paper compares CAPE against gem5 models of (a) an out-of-order
//! RISC-V core with three cache levels, (b) multicore versions of it, and
//! (c) an ARM core with SVE SIMD. Here those baselines are rebuilt from
//! first principles as *instrumented analytic models*: workload kernels
//! execute natively (producing bit-exact results for cross-checking
//! against CAPE) while reporting their operation mix and streaming every
//! memory access through the cache-hierarchy simulator of `cape-mem`.
//! Cycle counts then follow an overlap model — the maximum of the
//! issue-limited, unit-limited, miss-latency-limited and bandwidth-
//! limited times — which preserves the compute-bound/memory-bound
//! behaviour that drives the paper's figures.
//!
//! See DESIGN.md ("Substitutions") for why this stands in for gem5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multicore;
mod ooo;
mod simd;

pub use multicore::MulticoreModel;
pub use ooo::{BaselineReport, OooConfig, OooCore};
pub use simd::{SimdProfile, SveModel, SveWidth};

//! The SVE-like SIMD baseline (the Fig. 12 experiment).
//!
//! The paper augments an ARM core matching the RISC-V baseline's size and
//! latency (Table III) with four SIMD ALUs at 128-, 256- and 512-bit
//! vector widths, and hand-vectorizes the Phoenix applications with SVE
//! intrinsics. Here the same comparison is an analytic model over each
//! workload's *vectorizable profile*: element operations that SIMD lanes
//! can absorb versus scalar operations that cannot, plus the memory
//! traffic both share.

use crate::ooo::{BaselineReport, OooConfig};
use serde::{Deserialize, Serialize};

/// SVE vector width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SveWidth {
    /// 128-bit vectors (4 x 32-bit lanes).
    W128,
    /// 256-bit vectors.
    W256,
    /// 512-bit vectors (comparable to AVX-512).
    W512,
}

impl SveWidth {
    /// 32-bit lanes per vector register.
    pub fn lanes(self) -> u64 {
        match self {
            SveWidth::W128 => 4,
            SveWidth::W256 => 8,
            SveWidth::W512 => 16,
        }
    }

    /// All three widths, narrow to wide.
    pub fn all() -> [SveWidth; 3] {
        [SveWidth::W128, SveWidth::W256, SveWidth::W512]
    }
}

/// A workload's vectorization profile, produced by the instrumented
/// kernels in `cape-workloads`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimdProfile {
    /// Vectorizable simple element operations (add/sub/logic/compare).
    pub vec_ops: u64,
    /// Vectorizable element multiplies.
    pub vec_mul_ops: u64,
    /// Element operations belonging to horizontal reductions (SIMD needs
    /// log-depth shuffles for these; CAPE has the reduction tree).
    pub vec_red_ops: u64,
    /// Scalar (non-vectorizable) operations.
    pub scalar_ops: u64,
}

/// The SVE SIMD timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SveModel {
    /// Number of SIMD ALUs (the paper equips four).
    pub simd_units: u64,
    /// Scalar pipeline configuration (shared with the OoO baseline).
    pub core: OooConfig,
    /// Fraction of peak SIMD throughput hand-vectorized Phoenix-style
    /// code sustains. Intrinsics code pays predication, loop-control,
    /// alignment and tail overheads; published SVE studies land near
    /// half of peak on irregular integer kernels.
    pub vectorization_efficiency: f64,
}

impl Default for SveModel {
    fn default() -> Self {
        Self {
            simd_units: 4,
            core: OooConfig::default(),
            vectorization_efficiency: 0.55,
        }
    }
}

impl SveModel {
    /// Cycles for `profile` at the given vector width, reusing the
    /// scalar/memory cycles from the workload's single-core report.
    ///
    /// The memory-bound component is unchanged (same cache hierarchy,
    /// same traffic); the compute component shrinks by the SIMD
    /// throughput; reductions pay a log2(lanes) shuffle factor.
    pub fn cycles(
        &self,
        profile: &SimdProfile,
        scalar_run: &BaselineReport,
        width: SveWidth,
    ) -> u64 {
        let lanes = width.lanes();
        let tput =
            ((lanes * self.simd_units) as f64 * self.vectorization_efficiency).max(1.0) as u64; // sustained element ops per cycle
        let vec_cycles = profile.vec_ops.div_ceil(tput)
            + profile.vec_mul_ops.div_ceil(tput) * 2 // multiplies: 2x occupancy
            + reduction_cycles(profile.vec_red_ops, lanes, self.simd_units);
        let scalar_cycles = profile.scalar_ops.div_ceil(u64::from(self.core.int_units));
        let mem_cycles = scalar_run.miss_cycles.max(scalar_run.bandwidth_cycles);
        (vec_cycles + scalar_cycles).max(mem_cycles).max(1)
    }

    /// Time in milliseconds.
    pub fn time_ms(
        &self,
        profile: &SimdProfile,
        scalar_run: &BaselineReport,
        width: SveWidth,
    ) -> f64 {
        self.cycles(profile, scalar_run, width) as f64 / (self.core.freq_ghz * 1e6)
    }

    /// Speedup over the scalar-only run of the same kernel.
    pub fn speedup(
        &self,
        profile: &SimdProfile,
        scalar_run: &BaselineReport,
        width: SveWidth,
    ) -> f64 {
        scalar_run.cycles as f64 / self.cycles(profile, scalar_run, width) as f64
    }
}

/// Horizontal reductions on SIMD: each group of `lanes` elements costs a
/// vertical pass plus a log2(lanes)-depth shuffle/add tail.
fn reduction_cycles(red_ops: u64, lanes: u64, units: u64) -> u64 {
    if red_ops == 0 {
        return 0;
    }
    let vertical = red_ops.div_ceil(lanes * units);
    let tails = red_ops.div_ceil(lanes).div_ceil(units);
    vertical + tails * lanes.ilog2() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::OooCore;

    fn scalar_run(ops: u64) -> BaselineReport {
        let mut core = OooCore::table3();
        core.op(ops);
        core.finish()
    }

    #[test]
    fn wider_vectors_are_faster_on_vectorizable_code() {
        let p = SimdProfile {
            vec_ops: 10_000_000,
            ..Default::default()
        };
        let run = scalar_run(10_000_000);
        let m = SveModel::default();
        let s128 = m.speedup(&p, &run, SveWidth::W128);
        let s512 = m.speedup(&p, &run, SveWidth::W512);
        assert!(s512 > s128, "512-bit {s512} must beat 128-bit {s128}");
        // Ideal 512-bit: 64 element ops/cycle x efficiency vs 4 scalar.
        assert!(s512 <= 17.0 * m.vectorization_efficiency.max(0.1));
    }

    #[test]
    fn scalar_tail_caps_simd_speedup() {
        let p = SimdProfile {
            vec_ops: 5_000_000,
            scalar_ops: 5_000_000,
            ..Default::default()
        };
        let run = scalar_run(10_000_000);
        let s = SveModel::default().speedup(&p, &run, SveWidth::W512);
        assert!(s < 2.1, "Amdahl bound violated: {s}");
    }

    #[test]
    fn memory_bound_kernels_see_little_simd_benefit() {
        let mut core = OooCore::table3();
        for i in 0..(128 * 1024 * 1024u64 / 64) {
            core.load(i * 64);
        }
        core.op(2_000_000);
        let run = core.finish();
        let p = SimdProfile {
            vec_ops: 2_000_000,
            ..Default::default()
        };
        let s = SveModel::default().speedup(&p, &run, SveWidth::W512);
        assert!(s < 1.5, "memory-bound SIMD speedup {s}");
    }

    #[test]
    fn reductions_pay_shuffle_tails() {
        let p_red = SimdProfile {
            vec_red_ops: 1_000_000,
            ..Default::default()
        };
        let p_vert = SimdProfile {
            vec_ops: 1_000_000,
            ..Default::default()
        };
        let run = scalar_run(1_000_000);
        let m = SveModel::default();
        assert!(
            m.cycles(&p_red, &run, SveWidth::W512) > m.cycles(&p_vert, &run, SveWidth::W512),
            "reductions must cost more than vertical ops"
        );
    }
}

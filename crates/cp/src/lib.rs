//! CAPE's Control Processor (CP): a small in-order core running standard
//! RISC-V code, offloading vector instructions to the VCU/VMU
//! (Section III of the paper).
//!
//! The functional half is a straightforward RV64 interpreter over the
//! instruction subset of `cape-isa`. The timing half models the paper's
//! dual-issue, five-stage in-order pipeline (Table III):
//!
//! * scalar instructions retire at up to two per cycle;
//! * scalar loads/stores pay their cache-hierarchy latency (32 KiB L1 +
//!   1 MiB L2, no L3 on the CAPE tile);
//! * taken branches pay a small redirect penalty (the tournament
//!   predictor hides most of it);
//! * a vector instruction issues in one cycle and completes in the
//!   coprocessor; **subsequent scalar instructions keep issuing in its
//!   shadow** but a second vector instruction stalls until the first
//!   commits, and reading a vector-produced scalar result (`vsetvli`,
//!   `vcpop`, `vfirst`, …) synchronizes with the coprocessor.
//!
//! The coprocessor itself is abstracted behind [`Coprocessor`] so that
//! `cape-core` can plug in the full CSB machine while tests use stubs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cape_isa::{AluOp, BranchCond, Instr, Program, Reg};
use cape_mem::{CacheHierarchy, MainMemory};
use serde::{Deserialize, Serialize};

/// What the coprocessor reports back for one committed vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorCommit {
    /// Cycles the instruction occupies the vector engine.
    pub cycles: u64,
    /// Scalar writeback (granted `vl`, `vcpop` count, `vfirst` index…),
    /// if the instruction produces one.
    pub rd_value: Option<i64>,
}

/// Typed failure from the coprocessor while executing a vector
/// instruction — the `Err` face of what used to be a panic, so an
/// injected fault or a malformed tenant program surfaces as a recoverable
/// error instead of aborting the whole engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorFault {
    /// A non-vector instruction reached the vector dispatch path.
    NotVector,
    /// The coprocessor rejected the instruction (e.g. the microcode
    /// sequencer refused its lowering).
    Rejected {
        /// Human-readable rejection reason from the coprocessor.
        detail: String,
    },
}

impl std::fmt::Display for VectorFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VectorFault::NotVector => write!(f, "not a vector instruction"),
            VectorFault::Rejected { detail } => write!(f, "{detail}"),
        }
    }
}

/// Why the CP is draining the vector engine at a run exit. Coprocessors
/// that account window flushes by cause (see the machine's flush-reason
/// counters) use this to attribute the drain; the semantics of the drain
/// itself are identical for every reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// The program halted: the normal end-of-job drain.
    Exit,
    /// The slice's vector budget was reached and the scheduler is about
    /// to switch jobs.
    Preempt,
    /// The slice-fuel watchdog fired on a runaway slice.
    Watchdog,
}

/// The vector engine as seen by the control processor.
pub trait Coprocessor {
    /// Executes one vector instruction. `rs1`/`rs2` carry the values of
    /// the instruction's scalar operands (already read at issue).
    ///
    /// # Errors
    ///
    /// Returns a [`VectorFault`] when the instruction cannot be executed;
    /// the CP wraps it in [`CpError::VectorFault`] and terminates the run
    /// with a typed error instead of aborting.
    fn execute_vector(
        &mut self,
        instr: &Instr,
        rs1: i64,
        rs2: i64,
        mem: &mut MainMemory,
    ) -> Result<VectorCommit, VectorFault>;

    /// Lands any deferred work (e.g. a pending fusion window of buffered
    /// vector broadcasts) so architectural vector state is fully
    /// committed. The CP calls this at every run exit — halt, preemption
    /// and watchdog timeout — before control returns to the scheduler,
    /// mirroring the timing model's vector-engine drain. Coprocessors
    /// that never defer keep the default no-op. `reason` says *why* the
    /// CP is draining so the engine can attribute the flush.
    fn drain(&mut self, reason: DrainReason) {
        let _ = reason;
    }
}

/// Instruction-mix and timing statistics of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpStats {
    /// Instructions committed in total.
    pub instructions: u64,
    /// Scalar instructions committed.
    pub scalar: u64,
    /// Vector instructions committed.
    pub vector: u64,
    /// Scalar loads and stores.
    pub mem_ops: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Total cycles (scalar pipeline and vector engine overlapped).
    pub cycles: u64,
    /// Cycles the vector engine was busy.
    pub vector_busy_cycles: u64,
}

/// Errors terminating a run abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpError {
    /// The program counter left the program.
    PcOutOfRange {
        /// The offending PC.
        pc: u64,
    },
    /// The instruction budget was exhausted (runaway-loop guard).
    InstructionBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The coprocessor rejected a vector instruction.
    VectorFault {
        /// PC of the offending instruction.
        pc: u64,
        /// The coprocessor's typed rejection.
        fault: VectorFault,
    },
    /// An instruction the dispatcher does not implement (decoder/dispatch
    /// disagreement — previously an `unreachable!`).
    UnsupportedInstruction {
        /// PC of the offending instruction.
        pc: u64,
    },
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} is outside the program"),
            CpError::InstructionBudgetExceeded { budget } => {
                write!(f, "exceeded the budget of {budget} instructions")
            }
            CpError::VectorFault { pc, fault } => {
                write!(f, "vector fault at pc {pc:#x}: {fault}")
            }
            CpError::UnsupportedInstruction { pc } => {
                write!(f, "unsupported instruction at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for CpError {}

/// How a [`ControlProcessor::run_slice`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a slice outcome decides whether the job halted, continues, or must be recovered"]
pub enum SliceOutcome {
    /// The program hit its `ecall` — the job is done.
    Halted,
    /// The slice's vector-instruction budget was reached. The CP keeps
    /// its PC, registers, clock and cache state; call `run_slice` again
    /// to continue exactly where it stopped.
    Preempted,
    /// The slice-fuel watchdog fired: the slice burned its instruction
    /// fuel without halting or reaching its vector budget — a runaway
    /// microprogram or a fault-wedged loop. The vector engine is
    /// drained, but the CP stopped at an *arbitrary* instruction
    /// boundary; the scheduler must re-execute from the last checkpoint
    /// or fail the job, never resume.
    TimedOut,
}

/// Cycles lost on a taken branch after the tournament predictor's
/// residual mispredictions (amortized).
const TAKEN_BRANCH_PENALTY: u64 = 1;

/// The in-order control processor.
///
/// `Clone` captures the complete scalar state — registers, PC, clock,
/// cache hierarchy and statistics — which is exactly what a checkpointed
/// retry needs to re-execute a poisoned slice.
#[derive(Debug, Clone)]
pub struct ControlProcessor {
    regs: [i64; 32],
    pc: u64,
    caches: CacheHierarchy,
    stats: CpStats,
    /// Absolute cycle at which the in-flight vector instruction commits.
    vector_done_at: u64,
    clock: u64,
    /// Sub-cycle slack from dual issue (two scalar ops per cycle).
    issue_slot: bool,
}

impl ControlProcessor {
    /// Creates a CP with the paper's two-level cache hierarchy and a
    /// memory latency of `mem_latency` cycles.
    pub fn new(mem_latency: u64) -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            caches: CacheHierarchy::cape_cp_two_level(mem_latency),
            stats: CpStats::default(),
            vector_done_at: 0,
            clock: 0,
            issue_slot: false,
        }
    }

    /// Reads a scalar register.
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a scalar register (`x0` stays zero).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if r.index() != 0 {
            self.regs[r.index()] = value;
        }
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> CpStats {
        self.stats
    }

    /// Runs `program` to the first `ecall` (the halt convention).
    ///
    /// # Errors
    ///
    /// Returns [`CpError`] if the PC leaves the program or `max_instrs`
    /// is exceeded.
    pub fn run(
        &mut self,
        program: &Program,
        mem: &mut MainMemory,
        cop: &mut dyn Coprocessor,
        max_instrs: u64,
    ) -> Result<CpStats, CpError> {
        while self.step(program, mem, cop)? {
            if self.stats.instructions >= max_instrs {
                return Err(CpError::InstructionBudgetExceeded { budget: max_instrs });
            }
        }
        // Drain the vector engine before reporting.
        cop.drain(DrainReason::Exit);
        self.clock = self.clock.max(self.vector_done_at);
        self.stats.cycles = self.clock;
        Ok(self.stats)
    }

    /// Runs until the program halts *or* `max_vector` further vector
    /// instructions have committed — the preemption primitive of a
    /// multi-job scheduler. The check fires immediately after a vector
    /// instruction commits, so a preempted CP always stops at a
    /// microprogram sync point: no vector instruction is in flight (the
    /// engine is drained before returning) and the next `run_slice` call
    /// resumes with the scalar instruction that follows it.
    ///
    /// `stats.cycles` is kept up to date on both outcomes, so a scheduler
    /// can read incremental cycle counts between slices.
    ///
    /// # Errors
    ///
    /// Returns [`CpError`] if the PC leaves the program or the *total*
    /// committed instruction count exceeds `max_instrs`.
    /// `slice_fuel` is the watchdog: the maximum instructions (scalar or
    /// vector) this single slice may commit before the run is declared
    /// runaway and [`SliceOutcome::TimedOut`] is returned. Unlike the
    /// `max_instrs` budget (a whole-job error), fuel exhaustion is a
    /// *recoverable* outcome — re-execute from a checkpoint or fail the
    /// job cleanly. Pass `u64::MAX` to disable the watchdog.
    pub fn run_slice(
        &mut self,
        program: &Program,
        mem: &mut MainMemory,
        cop: &mut dyn Coprocessor,
        max_instrs: u64,
        max_vector: u64,
        slice_fuel: u64,
    ) -> Result<SliceOutcome, CpError> {
        let vector_start = self.stats.vector;
        let instr_start = self.stats.instructions;
        loop {
            if !self.step(program, mem, cop)? {
                cop.drain(DrainReason::Exit);
                self.clock = self.clock.max(self.vector_done_at);
                self.stats.cycles = self.clock;
                return Ok(SliceOutcome::Halted);
            }
            if self.stats.instructions >= max_instrs {
                return Err(CpError::InstructionBudgetExceeded { budget: max_instrs });
            }
            if self.stats.instructions - instr_start >= slice_fuel {
                // Watchdog: drain the vector engine and hand the mess to
                // the scheduler as a typed, recoverable outcome.
                cop.drain(DrainReason::Watchdog);
                self.clock = self.clock.max(self.vector_done_at);
                self.stats.cycles = self.clock;
                return Ok(SliceOutcome::TimedOut);
            }
            if self.stats.vector - vector_start >= max_vector {
                // Drain the in-flight vector instruction: preemption only
                // happens at a sync point.
                cop.drain(DrainReason::Preempt);
                self.clock = self.clock.max(self.vector_done_at);
                self.stats.cycles = self.clock;
                return Ok(SliceOutcome::Preempted);
            }
        }
    }

    /// Charges `c` whole cycles to the scalar pipeline.
    fn charge(&mut self, c: u64) {
        self.clock += c;
        self.issue_slot = false;
    }

    /// Charges one dual-issue slot (two scalar instructions per cycle).
    fn charge_issue(&mut self) {
        if self.issue_slot {
            self.clock += 1;
        }
        self.issue_slot = !self.issue_slot;
    }

    /// Executes one instruction; returns `false` on halt.
    fn step(
        &mut self,
        program: &Program,
        mem: &mut MainMemory,
        cop: &mut dyn Coprocessor,
    ) -> Result<bool, CpError> {
        use cape_isa::Instr::*;
        let idx = (self.pc / 4) as usize;
        if !self.pc.is_multiple_of(4) || idx >= program.len() {
            return Err(CpError::PcOutOfRange { pc: self.pc });
        }
        let instr = *program.instr(idx);
        self.stats.instructions += 1;
        let mut next_pc = self.pc + 4;

        if instr.is_vector() {
            self.stats.vector += 1;
            // A second vector instruction stalls until the previous one
            // commits (Section III).
            self.clock = self.clock.max(self.vector_done_at);
            let (rs1, rs2, rd) = vector_scalar_operands(&instr, &self.regs);
            let commit = cop
                .execute_vector(&instr, rs1, rs2, mem)
                .map_err(|fault| CpError::VectorFault { pc: self.pc, fault })?;
            self.stats.vector_busy_cycles += commit.cycles;
            self.charge(1); // issue cycle
            self.vector_done_at = self.clock + commit.cycles;
            if let (Some(rd), Some(v)) = (rd, commit.rd_value) {
                // Scalar results synchronize with the vector engine.
                self.clock = self.vector_done_at;
                self.set_reg(rd, v);
            }
        } else {
            self.stats.scalar += 1;
            match instr {
                Lui { rd, imm20 } => {
                    self.charge_issue();
                    self.set_reg(rd, i64::from(imm20) << 12);
                }
                Jal { rd, offset } => {
                    self.charge(1 + TAKEN_BRANCH_PENALTY);
                    self.set_reg(rd, self.pc as i64 + 4);
                    next_pc = self.pc.wrapping_add_signed(i64::from(offset));
                }
                Jalr { rd, rs1, offset } => {
                    self.charge(1 + TAKEN_BRANCH_PENALTY);
                    let target = self.reg(rs1).wrapping_add(i64::from(offset)) & !1;
                    self.set_reg(rd, self.pc as i64 + 4);
                    next_pc = target as u64;
                }
                OpImm { op, rd, rs1, imm } => {
                    self.charge_issue();
                    let v = alu(op, self.reg(rs1), i64::from(imm));
                    self.set_reg(rd, v);
                }
                Op { op, rd, rs1, rs2 } => {
                    self.charge_issue();
                    let v = alu(op, self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                }
                Lw { rd, rs1, offset } => {
                    let a = self.mem_addr(rs1, offset);
                    let lat = self.access(a, false);
                    self.charge(lat);
                    self.set_reg(rd, i64::from(mem.read_u32(a) as i32));
                }
                Lwu { rd, rs1, offset } => {
                    let a = self.mem_addr(rs1, offset);
                    let lat = self.access(a, false);
                    self.charge(lat);
                    self.set_reg(rd, i64::from(mem.read_u32(a)));
                }
                Ld { rd, rs1, offset } => {
                    let a = self.mem_addr(rs1, offset);
                    let lat = self.access(a, false);
                    self.charge(lat);
                    self.set_reg(rd, mem.read_u64(a) as i64);
                }
                Sw { rs2, rs1, offset } => {
                    let a = self.mem_addr(rs1, offset);
                    let lat = self.access(a, true);
                    self.charge(lat);
                    mem.write_u32(a, self.reg(rs2) as u32);
                }
                Sd { rs2, rs1, offset } => {
                    let a = self.mem_addr(rs1, offset);
                    let lat = self.access(a, true);
                    self.charge(lat);
                    mem.write_u64(a, self.reg(rs2) as u64);
                }
                Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    self.stats.branches += 1;
                    let taken = branch_taken(cond, self.reg(rs1), self.reg(rs2));
                    if taken {
                        self.stats.taken_branches += 1;
                        self.charge(1 + TAKEN_BRANCH_PENALTY);
                        next_pc = self.pc.wrapping_add_signed(i64::from(offset));
                    } else {
                        self.charge_issue();
                    }
                }
                Ecall => return Ok(false),
                // Vector instructions are handled above; anything else
                // here is a decoder/dispatch disagreement, surfaced as a
                // typed error instead of an abort.
                _ => return Err(CpError::UnsupportedInstruction { pc: self.pc }),
            }
        }
        self.pc = next_pc;
        Ok(true)
    }

    fn mem_addr(&self, rs1: Reg, offset: i32) -> u64 {
        self.reg(rs1).wrapping_add(i64::from(offset)) as u64
    }

    /// Cache access cost as seen by the pipeline: L1 hits are fully
    /// pipelined (one issue slot — the classic five-stage load), misses
    /// stall for their full latency.
    fn access(&mut self, addr: u64, write: bool) -> u64 {
        self.stats.mem_ops += 1;
        let latency = self.caches.access(addr, write);
        if latency <= 2 {
            1
        } else {
            latency
        }
    }
}

/// Extracts the scalar operand values (and scalar destination) of a
/// vector instruction.
fn vector_scalar_operands(instr: &Instr, regs: &[i64; 32]) -> (i64, i64, Option<Reg>) {
    use cape_isa::Instr::*;
    match *instr {
        Vsetvli { rd, rs1, .. } => (regs[rs1.index()], 0, Some(rd)),
        Vsetstart { rs1 } => (regs[rs1.index()], 0, None),
        Vle32 { rs1, .. } | Vse32 { rs1, .. } => (regs[rs1.index()], 0, None),
        Vlrw { rs1, rs2, .. } => (regs[rs1.index()], regs[rs2.index()], None),
        VOpVx { rs, .. } | VrsubVx { rs, .. } => (regs[rs.index()], 0, None),
        VmvVx { rs, .. } => (regs[rs.index()], 0, None),
        VcpopM { rd, .. } | VfirstM { rd, .. } | VmvXs { rd, .. } => (0, 0, Some(rd)),
        _ => (0, 0, None),
    }
}

/// RV64 ALU semantics, shared by register and immediate forms.
fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 0x3F) as u32),
        AluOp::Slt => i64::from(a < b),
        AluOp::Sltu => i64::from((a as u64) < (b as u64)),
        AluOp::Xor => a ^ b,
        AluOp::Srl => ((a as u64).wrapping_shr((b & 0x3F) as u32)) as i64,
        AluOp::Sra => a.wrapping_shr((b & 0x3F) as u32),
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                -1
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Divu => {
            if b == 0 {
                -1
            } else {
                ((a as u64) / (b as u64)) as i64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                ((a as u64) % (b as u64)) as i64
            }
        }
    }
}

fn branch_taken(cond: BranchCond, a: i64, b: i64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => a < b,
        BranchCond::Ge => a >= b,
        BranchCond::Ltu => (a as u64) < (b as u64),
        BranchCond::Geu => (a as u64) >= (b as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullCop;
    impl Coprocessor for NullCop {
        fn execute_vector(
            &mut self,
            instr: &Instr,
            rs1: i64,
            _rs2: i64,
            _mem: &mut MainMemory,
        ) -> Result<VectorCommit, VectorFault> {
            Ok(match instr {
                Instr::Vsetvli { .. } => VectorCommit {
                    cycles: 1,
                    rd_value: Some(rs1.min(64)),
                },
                _ => VectorCommit {
                    cycles: 100,
                    rd_value: None,
                },
            })
        }
    }

    fn run_prog(src: &str) -> (ControlProcessor, CpStats) {
        let prog = cape_isa::assemble(src).unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let stats = cp.run(&prog, &mut mem, &mut NullCop, 1_000_000).unwrap();
        (cp, stats)
    }

    #[test]
    fn arithmetic_and_loop() {
        // Sum 1..=10 in t1.
        let (cp, stats) = run_prog(
            r"
            li t0, 10
            li t1, 0
            loop:
              add t1, t1, t0
              addi t0, t0, -1
              bnez t0, loop
            halt
        ",
        );
        assert_eq!(cp.reg(Reg::T1), 55);
        assert_eq!(stats.branches, 10);
        assert_eq!(stats.taken_branches, 9);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let prog = cape_isa::assemble(
            r"
            li t0, 4096
            li t1, -123
            sw t1, 0(t0)
            lw t2, 0(t0)
            lwu t3, 0(t0)
            halt
        ",
        )
        .unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        cp.run(&prog, &mut mem, &mut NullCop, 1000).unwrap();
        assert_eq!(cp.reg(Reg::T2), -123);
        assert_eq!(cp.reg(Reg::T3), i64::from((-123i32) as u32));
    }

    #[test]
    fn mul_div_rem_semantics() {
        let (cp, _) = run_prog(
            r"
            li t0, -7
            li t1, 2
            mul t2, t0, t1
            div t3, t0, t1
            rem t4, t0, t1
            halt
        ",
        );
        assert_eq!(cp.reg(Reg::T2), -14);
        assert_eq!(cp.reg(Reg::T3), -3);
        assert_eq!(cp.reg(Reg::T4), -1);
    }

    #[test]
    fn division_by_zero_follows_riscv() {
        let (cp, _) = run_prog("li t0, 42\nli t1, 0\ndiv t2, t0, t1\nrem t3, t0, t1\nhalt");
        assert_eq!(cp.reg(Reg::T2), -1);
        assert_eq!(cp.reg(Reg::T3), 42);
    }

    #[test]
    fn vsetvli_writes_granted_vl_and_synchronizes() {
        let (cp, _) = run_prog("li t0, 1000\nvsetvli t1, t0, e32,m1\nhalt");
        assert_eq!(cp.reg(Reg::T1), 64);
    }

    #[test]
    fn scalar_work_hides_in_vector_shadow() {
        // One 100-cycle vector op followed by 20 cheap scalar ops: the
        // scalar tail must overlap the vector latency.
        let mut src = String::from("li t0, 64\nvsetvli t1, t0\nvadd.vv v3, v1, v2\n");
        for _ in 0..20 {
            src.push_str("addi t2, t2, 1\n");
        }
        src.push_str("halt");
        let (_, stats) = run_prog(&src);
        // 100-cycle vadd dominates; total must be well under serial sum.
        assert!(stats.cycles < 130, "cycles {}", stats.cycles);
        assert!(stats.vector_busy_cycles >= 100);
    }

    #[test]
    fn back_to_back_vector_instructions_serialize() {
        let (_, stats) =
            run_prog("li t0, 64\nvsetvli t1, t0\nvadd.vv v3, v1, v2\nvadd.vv v4, v1, v2\nhalt");
        assert!(
            stats.cycles >= 200,
            "two vector ops must serialize: {}",
            stats.cycles
        );
    }

    #[test]
    fn jal_and_jalr_implement_call_return() {
        let (cp, _) = run_prog(
            r"
            li   a0, 5
            jal  ra, 8          # call the doubling routine (skip 1 instr)
            j    done
            add  a0, a0, a0     # routine: a0 *= 2
            jalr zero, 0(ra)    # return
            done:
            halt
        ",
        );
        // jal lands on 'j done'... routine executed once via fallthrough?
        // The call jumps +8 bytes (to 'add'), runs it, returns to the
        // instruction after the jal ('j done').
        assert_eq!(cp.reg(Reg::A0), 10);
    }

    #[test]
    fn shift_and_compare_semantics() {
        let (cp, _) = run_prog(
            r"
            li t0, -8
            srai t1, t0, 1      # arithmetic: -4
            srli t2, t0, 60     # logical on the 64-bit pattern
            li t3, 3
            sltu t4, t3, t0     # unsigned: 3 < huge -> 1
            slt  t5, t0, t3     # signed: -8 < 3 -> 1
            halt
        ",
        );
        assert_eq!(cp.reg(Reg::T1), -4);
        assert_eq!(cp.reg(Reg::T2), 15);
        assert_eq!(cp.reg(Reg::T4), 1);
        assert_eq!(cp.reg(Reg::T5), 1);
    }

    #[test]
    fn x0_stays_zero() {
        let (cp, _) = run_prog("addi zero, zero, 5\nhalt");
        assert_eq!(cp.reg(Reg::ZERO), 0);
    }

    #[test]
    fn runaway_loops_hit_the_budget() {
        let prog = cape_isa::assemble("loop: j loop").unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let err = cp.run(&prog, &mut mem, &mut NullCop, 100).unwrap_err();
        assert_eq!(err, CpError::InstructionBudgetExceeded { budget: 100 });
    }

    #[test]
    fn run_slice_resumes_to_the_same_result_as_run() {
        let src = r"
            li t0, 64
            li t2, 0
            vsetvli t1, t0
            vadd.vv v3, v1, v2
            addi t2, t2, 1
            vadd.vv v4, v1, v2
            addi t2, t2, 10
            vadd.vv v5, v1, v2
            addi t2, t2, 100
            halt
        ";
        let prog = cape_isa::assemble(src).unwrap();

        let mut whole = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let want = whole.run(&prog, &mut mem, &mut NullCop, 1000).unwrap();

        let mut sliced = ControlProcessor::new(300);
        let mut mem2 = MainMemory::new();
        let mut slices = 0;
        loop {
            slices += 1;
            match sliced
                .run_slice(&prog, &mut mem2, &mut NullCop, 1000, 1, u64::MAX)
                .unwrap()
            {
                SliceOutcome::Halted => break,
                SliceOutcome::Preempted => {
                    // Preemption always lands at a sync point: the vector
                    // engine is drained.
                    assert!(sliced.clock >= sliced.vector_done_at);
                }
                SliceOutcome::TimedOut => unreachable!("watchdog disabled"),
            }
        }
        // 4 vector instructions (vsetvli + 3 vadd), one per slice, plus
        // the final slice that halts.
        assert_eq!(slices, 5);
        assert_eq!(sliced.reg(Reg::T2), 111);
        assert_eq!(sliced.stats(), want);
    }

    #[test]
    fn run_slice_budget_error_still_applies() {
        let prog = cape_isa::assemble("loop: j loop").unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let err = cp
            .run_slice(&prog, &mut mem, &mut NullCop, 50, 1, u64::MAX)
            .unwrap_err();
        assert_eq!(err, CpError::InstructionBudgetExceeded { budget: 50 });
    }

    #[test]
    fn watchdog_converts_runaway_slice_into_timed_out() {
        // A scalar infinite loop never reaches a vector sync point; the
        // old run_slice would spin until the whole-job budget errored.
        // The fuel watchdog converts it into a recoverable outcome.
        let prog = cape_isa::assemble("loop: j loop").unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let outcome = cp
            .run_slice(&prog, &mut mem, &mut NullCop, 1_000_000, 1, 64)
            .unwrap();
        assert_eq!(outcome, SliceOutcome::TimedOut);
        assert!(cp.stats().instructions >= 64);
        assert!(cp.stats().instructions < 128, "fuel must bound the slice");
    }

    #[test]
    fn cloned_cp_checkpoint_replays_identically() {
        let src = r"
            li t0, 64
            li t2, 0
            vsetvli t1, t0
            vadd.vv v3, v1, v2
            addi t2, t2, 7
            vadd.vv v4, v1, v2
            addi t2, t2, 70
            halt
        ";
        let prog = cape_isa::assemble(src).unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let first = cp
            .run_slice(&prog, &mut mem, &mut NullCop, 1000, 1, u64::MAX)
            .unwrap();
        assert_eq!(first, SliceOutcome::Preempted);

        // Checkpoint, run to completion, then replay from the clone.
        let checkpoint = cp.clone();
        let mut mem_a = mem.clone();
        while cp
            .run_slice(&prog, &mut mem_a, &mut NullCop, 1000, 1, u64::MAX)
            .unwrap()
            != SliceOutcome::Halted
        {}
        let mut replay = checkpoint;
        while replay
            .run_slice(&prog, &mut mem, &mut NullCop, 1000, 1, u64::MAX)
            .unwrap()
            != SliceOutcome::Halted
        {}
        assert_eq!(replay.reg(Reg::T2), cp.reg(Reg::T2));
        assert_eq!(replay.stats(), cp.stats());
    }

    #[test]
    fn coprocessor_rejection_is_a_typed_error() {
        struct RejectCop;
        impl Coprocessor for RejectCop {
            fn execute_vector(
                &mut self,
                _instr: &Instr,
                _rs1: i64,
                _rs2: i64,
                _mem: &mut MainMemory,
            ) -> Result<VectorCommit, VectorFault> {
                Err(VectorFault::Rejected {
                    detail: "microcode refused".into(),
                })
            }
        }
        let prog = cape_isa::assemble("li t0, 4\nvsetvli t1, t0\nhalt").unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let err = cp.run(&prog, &mut mem, &mut RejectCop, 100).unwrap_err();
        match err {
            CpError::VectorFault { pc, fault } => {
                assert_eq!(pc, 4);
                assert_eq!(
                    fault,
                    VectorFault::Rejected {
                        detail: "microcode refused".into()
                    }
                );
            }
            other => panic!("expected VectorFault, got {other:?}"),
        }
    }

    #[test]
    fn falling_off_the_program_is_an_error() {
        let prog = cape_isa::assemble("nop").unwrap();
        let mut cp = ControlProcessor::new(300);
        let mut mem = MainMemory::new();
        let err = cp.run(&prog, &mut mem, &mut NullCop, 100).unwrap_err();
        assert_eq!(err, CpError::PcOutOfRange { pc: 4 });
    }
}

//! CAPE's memory-only modes (Section VII of the paper).
//!
//! When associative compute is not needed, the chip can reconfigure a
//! CAPE tile's CSB as storage. Three modes are modeled:
//!
//! * [`Scratchpad`] — plain addressable memory (the VMU accepts remote
//!   loads/stores and performs physical-address indexing).
//! * [`KvStore`] — content-addressable key-value storage: a lookup is a
//!   single bulk *search* over a key row, so it needs no index
//!   structure. With 32-bit keys and values, a chain holds 16 x 32 = 512
//!   pairs — about half a million pairs in CAPE32k, exactly the paper's
//!   capacity arithmetic. The control processor maintains the free list,
//!   as the paper suggests.
//! * [`VictimCache`] — key-value storage specialized as a victim cache
//!   (e.g. behind an L2): lines are found by searching their address tag.
//!   We store lines column-wise (tag + data words bit-sliced in one
//!   lane) rather than the paper's row-wise sketch; this keeps the same
//!   content-addressable lookup while reusing the compute-mode layout —
//!   the deviation is documented in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kv;
mod scratchpad;
mod victim;

pub use kv::{KvError, KvStore};
pub use scratchpad::Scratchpad;
pub use victim::VictimCache;

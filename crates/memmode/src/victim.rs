//! The CSB as a victim cache (Section VII's third mode).

use cape_csb::{Csb, CsbGeometry, MicroOp, Probe, TagDest, TagMode, SUBARRAYS_PER_CHAIN};
use std::collections::VecDeque;

/// Words per cache line (64-byte lines).
const LINE_WORDS: usize = 16;
/// Register holding the address tags.
const TAG_REG: usize = 0;
/// First register holding line data (regs 1..=16).
const DATA_BASE: usize = 1;

/// A CSB tile emulating a fully-associative victim cache for 64-byte
/// lines.
///
/// Each lane holds one line: the block address in the tag register and
/// the 16 data words bit-sliced in the following registers. A probe is a
/// single bulk search of the tag row across every lane of every chain —
/// full associativity for free, which is exactly why the paper proposes
/// this mode. Insertion replaces the FIFO-oldest line (the CP keeps the
/// replacement queue).
#[derive(Debug, Clone)]
pub struct VictimCache {
    csb: Csb,
    /// FIFO of occupied lanes (front = oldest).
    fifo: VecDeque<usize>,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    probe_cycles: u64,
}

impl VictimCache {
    /// Configures a victim cache of the given geometry.
    pub fn new(geometry: CsbGeometry) -> Self {
        let lanes = geometry.max_vl();
        Self {
            csb: Csb::new(geometry),
            fifo: VecDeque::with_capacity(lanes),
            free: (0..lanes).rev().collect(),
            hits: 0,
            misses: 0,
            probe_cycles: 0,
        }
    }

    /// Line capacity (one line per lane).
    pub fn capacity_lines(&self) -> usize {
        self.csb.max_vl()
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total probe cycles charged (search + tag fold per probe).
    pub fn probe_cycles(&self) -> u64 {
        self.probe_cycles
    }

    /// Searches for the lane holding `block_addr`.
    fn find(&mut self, block_addr: u32) -> Option<usize> {
        self.csb.execute(&MicroOp::Search {
            probes: (0..SUBARRAYS_PER_CHAIN)
                .map(|i| Probe::row(i, TAG_REG, block_addr >> i & 1 == 1))
                .collect(),
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        });
        for i in 1..SUBARRAYS_PER_CHAIN {
            self.csb.execute(&MicroOp::TagCombine {
                src: i - 1,
                dst: i,
                op: TagMode::And,
            });
        }
        self.probe_cycles += SUBARRAYS_PER_CHAIN as u64;
        let geometry = self.csb.geometry();
        for chain in 0..geometry.num_chains() {
            let tags = self.csb.chain_tags(chain, SUBARRAYS_PER_CHAIN - 1);
            for col in 0..32 {
                if tags >> col & 1 == 1 {
                    let elem = geometry.element_at(cape_csb::ElementLocation { chain, col });
                    if self.fifo.contains(&elem) {
                        return Some(elem);
                    }
                }
            }
        }
        None
    }

    /// Probes the cache for the 64-byte line of `block_addr` (the L2
    /// controller's message on a miss). Returns the line data on a hit.
    pub fn probe(&mut self, block_addr: u32) -> Option<[u32; LINE_WORDS]> {
        match self.find(block_addr) {
            Some(lane) => {
                self.hits += 1;
                let mut line = [0u32; LINE_WORDS];
                for (w, slot) in line.iter_mut().enumerate() {
                    *slot = self.csb.read_element(DATA_BASE + w, lane);
                }
                Some(line)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a victim line (evicted from the cache above), replacing
    /// the oldest stored line when full. Re-inserting an address
    /// refreshes its data in place.
    pub fn insert(&mut self, block_addr: u32, line: &[u32; LINE_WORDS]) {
        let lane = if let Some(lane) = self.find(block_addr) {
            lane
        } else if let Some(lane) = self.free.pop() {
            self.fifo.push_back(lane);
            lane
        } else {
            let lane = self
                .fifo
                .pop_front()
                .expect("full cache has an oldest line");
            self.fifo.push_back(lane);
            lane
        };
        self.csb.write_element(TAG_REG, lane, block_addr);
        for (w, &word) in line.iter().enumerate() {
            self.csb.write_element(DATA_BASE + w, lane, word);
        }
    }

    /// Removes a line (e.g. on invalidation), returning whether it was
    /// present.
    pub fn invalidate(&mut self, block_addr: u32) -> bool {
        if let Some(lane) = self.find(block_addr) {
            self.fifo.retain(|&l| l != lane);
            self.free.push(lane);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seed: u32) -> [u32; LINE_WORDS] {
        std::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u32))
    }

    #[test]
    fn probe_hits_after_insert() {
        let mut vc = VictimCache::new(CsbGeometry::new(2));
        vc.insert(0x1234, &line(1));
        assert_eq!(vc.probe(0x1234), Some(line(1)));
        assert_eq!(vc.probe(0x9999), None);
        assert_eq!(vc.hits(), 1);
        assert_eq!(vc.misses(), 1);
    }

    #[test]
    fn fifo_replacement_evicts_oldest() {
        let mut vc = VictimCache::new(CsbGeometry::new(1)); // 32 lines
        for a in 0..33u32 {
            vc.insert(a, &line(a));
        }
        assert_eq!(vc.probe(0), None, "oldest line evicted");
        assert!(vc.probe(1).is_some());
        assert!(vc.probe(32).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut vc = VictimCache::new(CsbGeometry::new(1));
        vc.insert(7, &line(1));
        vc.insert(7, &line(2));
        assert_eq!(vc.probe(7), Some(line(2)));
        // Only one slot consumed.
        for a in 100..131u32 {
            vc.insert(a, &line(a));
        }
        assert!(vc.probe(7).is_some(), "line 7 must still fit");
    }

    #[test]
    fn invalidation_frees_slots() {
        let mut vc = VictimCache::new(CsbGeometry::new(1));
        vc.insert(5, &line(5));
        assert!(vc.invalidate(5));
        assert!(!vc.invalidate(5));
        assert_eq!(vc.probe(5), None);
    }

    #[test]
    fn probes_charge_search_cycles() {
        let mut vc = VictimCache::new(CsbGeometry::new(2));
        vc.probe(1);
        assert!(vc.probe_cycles() >= 32);
    }
}

//! The CSB as content-addressable key-value storage.

use cape_csb::{Csb, CsbGeometry, MicroOp, Probe, TagDest, TagMode, SUBARRAYS_PER_CHAIN};

/// Number of key/value register pairs (32 registers / 2).
const SLOTS: usize = 16;

/// Errors returned by [`KvStore`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Every slot of every lane is occupied.
    Full,
    /// The key is not present.
    NotFound,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Full => write!(f, "key-value store is full"),
            KvError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for KvError {}

/// A CSB configured as 32-bit-key / 32-bit-value storage.
///
/// Keys live in even vector registers and values in the following odd
/// ones, so each lane holds 16 pairs: a chain stores 16 x 32 = 512 pairs
/// (Section VII's arithmetic). A lookup bulk-searches one key row across
/// *all* lanes of *all* chains simultaneously — one search microop plus
/// the bit-serial tag fold, per slot — with no index structure at all.
///
/// The control processor maintains the free list (as the paper
/// suggests), modeled here by a host-side occupancy map. Keys must be
/// unique; inserting an existing key overwrites its value.
#[derive(Debug, Clone)]
pub struct KvStore {
    csb: Csb,
    /// occupancy[slot][elem]
    occupied: Vec<Vec<bool>>,
    len: usize,
    /// Microop-accounted search cycles spent in lookups.
    lookup_cycles: u64,
}

impl KvStore {
    /// Configures a key-value store of the given geometry.
    pub fn new(geometry: CsbGeometry) -> Self {
        let lanes = geometry.max_vl();
        Self {
            csb: Csb::new(geometry),
            occupied: vec![vec![false; lanes]; SLOTS],
            len: 0,
            lookup_cycles: 0,
        }
    }

    /// Total pair capacity.
    pub fn capacity(&self) -> usize {
        SLOTS * self.csb.max_vl()
    }

    /// Stored pair count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cycles spent searching so far (one per emitted microop).
    pub fn lookup_cycles(&self) -> u64 {
        self.lookup_cycles
    }

    /// Searches slot `slot` for `key`; returns the matching element, if
    /// any. Emits the real microop sequence (bit-parallel search + tag
    /// fold) and charges its cycles.
    fn search_slot(&mut self, slot: usize, key: u32) -> Option<usize> {
        let key_reg = slot * 2;
        self.csb.execute(&MicroOp::Search {
            probes: (0..SUBARRAYS_PER_CHAIN)
                .map(|i| Probe::row(i, key_reg, key >> i & 1 == 1))
                .collect(),
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        });
        for i in 1..SUBARRAYS_PER_CHAIN {
            self.csb.execute(&MicroOp::TagCombine {
                src: i - 1,
                dst: i,
                op: TagMode::And,
            });
        }
        self.lookup_cycles += 1 + (SUBARRAYS_PER_CHAIN as u64 - 1);
        // Priority-encode the final tags (CP-visible result).
        let geometry = self.csb.geometry();
        for chain in 0..geometry.num_chains() {
            let tags = self.csb.chain_tags(chain, SUBARRAYS_PER_CHAIN - 1);
            if tags != 0 {
                for col in 0..32 {
                    if tags >> col & 1 == 1 {
                        let elem = geometry.element_at(cape_csb::ElementLocation { chain, col });
                        if self.occupied[slot][elem] {
                            return Some(elem);
                        }
                    }
                }
            }
        }
        None
    }

    /// Looks `key` up across every slot.
    pub fn get(&mut self, key: u32) -> Option<u32> {
        for slot in 0..SLOTS {
            if let Some(elem) = self.search_slot(slot, key) {
                return Some(self.csb.read_element(slot * 2 + 1, elem));
            }
        }
        None
    }

    /// Inserts (or overwrites) a pair.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Full`] when no free slot remains.
    pub fn insert(&mut self, key: u32, value: u32) -> Result<(), KvError> {
        // Overwrite in place when the key already exists.
        for slot in 0..SLOTS {
            if let Some(elem) = self.search_slot(slot, key) {
                self.csb.write_element(slot * 2 + 1, elem, value);
                return Ok(());
            }
        }
        // CP free-list scan.
        for slot in 0..SLOTS {
            if let Some(elem) = self.occupied[slot].iter().position(|&o| !o) {
                self.csb.write_element(slot * 2, elem, key);
                self.csb.write_element(slot * 2 + 1, elem, value);
                self.occupied[slot][elem] = true;
                self.len += 1;
                return Ok(());
            }
        }
        Err(KvError::Full)
    }

    /// Removes a pair.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NotFound`] when the key is absent.
    pub fn remove(&mut self, key: u32) -> Result<u32, KvError> {
        for slot in 0..SLOTS {
            if let Some(elem) = self.search_slot(slot, key) {
                let value = self.csb.read_element(slot * 2 + 1, elem);
                self.occupied[slot][elem] = false;
                self.len -= 1;
                return Ok(value);
            }
        }
        Err(KvError::NotFound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        KvStore::new(CsbGeometry::new(2))
    }

    #[test]
    fn capacity_matches_paper_arithmetic() {
        // "a chain can store 16 x 32 = 512 key-value pairs".
        assert_eq!(KvStore::new(CsbGeometry::new(1)).capacity(), 512);
        // "about half a million pairs in CAPE32k".
        assert_eq!(KvStore::new(CsbGeometry::cape32k()).capacity(), 524_288);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut kv = store();
        kv.insert(0xDEAD, 111).unwrap();
        kv.insert(0xBEEF, 222).unwrap();
        assert_eq!(kv.get(0xDEAD), Some(111));
        assert_eq!(kv.get(0xBEEF), Some(222));
        assert_eq!(kv.get(0x1234), None);
        assert_eq!(kv.remove(0xDEAD), Ok(111));
        assert_eq!(kv.get(0xDEAD), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn insert_overwrites_existing_key() {
        let mut kv = store();
        kv.insert(7, 1).unwrap();
        kv.insert(7, 2).unwrap();
        assert_eq!(kv.get(7), Some(2));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn fills_to_capacity_then_errors() {
        let mut kv = KvStore::new(CsbGeometry::new(1));
        for k in 0..512u32 {
            kv.insert(k + 1, k).unwrap();
        }
        assert_eq!(kv.len(), 512);
        assert_eq!(kv.insert(9999, 0), Err(KvError::Full));
        // Every stored pair is still retrievable.
        for k in (0..512u32).step_by(37) {
            assert_eq!(kv.get(k + 1), Some(k));
        }
    }

    #[test]
    fn zero_key_and_value_work() {
        let mut kv = store();
        kv.insert(0, 0).unwrap();
        assert_eq!(kv.get(0), Some(0));
        assert_eq!(kv.remove(0), Ok(0));
    }

    #[test]
    fn lookups_charge_search_cycles() {
        let mut kv = store();
        kv.insert(42, 1).unwrap();
        let before = kv.lookup_cycles();
        kv.get(42);
        // At least one slot searched: 1 search + 31 tag folds.
        assert!(kv.lookup_cycles() >= before + 32);
    }

    #[test]
    fn removing_missing_key_errors() {
        let mut kv = store();
        assert_eq!(kv.remove(5), Err(KvError::NotFound));
    }
}

//! The CSB as plain addressable scratchpad memory.

use cape_csb::{Csb, CsbGeometry};

/// A CSB configured as a word-addressable scratchpad.
///
/// Capacity is the full register file: 32 rows x 4 bytes x lanes (4 MiB
/// for CAPE32k). Word `w` maps to vector register `w / MAX_VL`, element
/// `w % MAX_VL`, so consecutive words stripe across chains and a block
/// transfer engages many chains at once — the same interleaving the VMU
/// uses in compute mode.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    csb: Csb,
}

impl Scratchpad {
    /// Configures a scratchpad of the given geometry.
    pub fn new(geometry: CsbGeometry) -> Self {
        Self {
            csb: Csb::new(geometry),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.csb.geometry().capacity_bytes()
    }

    /// Capacity in 32-bit words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_bytes() / 4
    }

    fn locate(&self, word: usize) -> (usize, usize) {
        assert!(
            word < self.capacity_words(),
            "scratchpad word {word} out of range"
        );
        let max_vl = self.csb.max_vl();
        (word / max_vl, word % max_vl)
    }

    /// Reads word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn read_word(&self, word: usize) -> u32 {
        let (reg, elem) = self.locate(word);
        self.csb.read_element(reg, elem)
    }

    /// Writes word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn write_word(&mut self, word: usize, value: u32) {
        let (reg, elem) = self.locate(word);
        self.csb.write_element(reg, elem, value);
    }

    /// Bulk write starting at `word`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the capacity.
    pub fn write_block(&mut self, word: usize, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_word(word + i, v);
        }
    }

    /// Bulk read of `len` words starting at `word`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the capacity.
    pub fn read_block(&self, word: usize, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.read_word(word + i)).collect()
    }

    /// Cycle estimate for a block transfer of `words` words: interleaving
    /// engages every chain, so throughput is one word per chain per
    /// cycle.
    pub fn transfer_cycles(&self, words: usize) -> u64 {
        words.div_ceil(self.csb.geometry().num_chains()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_paper_arithmetic() {
        // CAPE32k: 4 MiB of scratchpad.
        let s = Scratchpad::new(CsbGeometry::cape32k());
        assert_eq!(s.capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn word_roundtrip_across_whole_capacity_striping() {
        let mut s = Scratchpad::new(CsbGeometry::new(2));
        let n = s.capacity_words();
        for w in (0..n).step_by(17) {
            s.write_word(w, (w as u32) ^ 0xABCD_1234);
        }
        for w in (0..n).step_by(17) {
            assert_eq!(s.read_word(w), (w as u32) ^ 0xABCD_1234);
        }
    }

    #[test]
    fn blocks_roundtrip() {
        let mut s = Scratchpad::new(CsbGeometry::new(2));
        let data: Vec<u32> = (0..300).collect();
        s.write_block(40, &data);
        assert_eq!(s.read_block(40, 300), data);
    }

    #[test]
    fn transfer_cycles_scale_with_chains() {
        let s2 = Scratchpad::new(CsbGeometry::new(2));
        let s8 = Scratchpad::new(CsbGeometry::new(8));
        assert_eq!(s2.transfer_cycles(64), 32);
        assert_eq!(s8.transfer_cycles(64), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        Scratchpad::new(CsbGeometry::new(1)).read_word(32 * 32);
    }
}

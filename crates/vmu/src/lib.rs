//! CAPE's Vector Memory Unit (VMU, Section V-E of the paper).
//!
//! The VMU breaks each vector memory instruction into *sub-requests* of
//! the memory system's data-bus packet size (512 B). Because adjacent
//! vector elements are interleaved across chains (like bytes across DRAM
//! DIMM chips), each sub-request lands in distinct chains and the CSB can
//! consume it in a **single cycle** — sub-requests never need buffering,
//! and CSB writes proceed concurrently with the HBM stream. The CSB is
//! cacheless: vector requests have huge footprints and little temporal
//! locality, so the VMU connects directly to the memory bus.
//!
//! Timing: a transfer's cycle cost is the maximum of the HBM streaming
//! time and the CSB's one-cycle-per-packet consumption (they overlap),
//! and traffic is recorded in the [`Hbm`] model for roofline analysis.
//!
//! The unit also implements CAPE's *replica vector load* (`vlrw.v`,
//! Section V-G): a chunk of contiguous values is fetched **once** from
//! memory and replicated along the whole vector register — the key to
//! high lane utilization in dense matrix multiplication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cape_csb::Csb;
use cape_mem::{Hbm, MainMemory};
use serde::{Deserialize, Serialize};

/// Outcome of one vector memory transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmuTransfer {
    /// Bytes moved on the memory bus.
    pub bytes: u64,
    /// Sub-requests (data-bus packets) issued.
    pub packets: u64,
    /// Cycle cost at the CAPE clock.
    pub cycles: u64,
}

/// The vector memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vmu {
    /// CAPE core frequency in GHz (cycle conversions).
    freq_ghz: f64,
}

impl Vmu {
    /// Creates a VMU for a core running at `freq_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn new(freq_ghz: f64) -> Self {
        assert!(freq_ghz > 0.0, "frequency must be positive");
        Self { freq_ghz }
    }

    /// The core frequency used for cycle conversion.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    fn finish(&self, hbm: &Hbm, bytes: u64, hbm_cycles: u64) -> VmuTransfer {
        let packets = hbm.packets(bytes);
        // HBM streaming overlaps the CSB's one-cycle-per-packet intake.
        VmuTransfer {
            bytes,
            packets,
            cycles: hbm_cycles.max(packets),
        }
    }

    /// `vle32.v` — unit-stride load of the active window
    /// (`vstart..vl` elements of 4 bytes each) into register `vd`.
    pub fn load(
        &self,
        csb: &mut Csb,
        mem: &MainMemory,
        hbm: &mut Hbm,
        vd: usize,
        addr: u64,
    ) -> VmuTransfer {
        let (vstart, vl) = (csb.vstart(), csb.vl());
        // Element indexing is absolute (restartable page faults resume at
        // the faulting index), so the window maps to one contiguous slice
        // of memory, deposited via the CSB's bulk transposed-write path.
        let vals = mem.read_u32_slice(addr + (vstart as u64) * 4, vl - vstart);
        csb.write_vector_at(vd, vstart, &vals);
        let bytes = ((vl - vstart) as u64) * 4;
        let cycles = hbm.read(bytes, self.freq_ghz);
        self.finish(hbm, bytes, cycles)
    }

    /// `vse32.v` — unit-stride store of the active window from register
    /// `vs3`.
    pub fn store(
        &self,
        csb: &Csb,
        mem: &mut MainMemory,
        hbm: &mut Hbm,
        vs3: usize,
        addr: u64,
    ) -> VmuTransfer {
        let (vstart, vl) = (csb.vstart(), csb.vl());
        let vals = csb.read_vector_at(vs3, vstart, vl - vstart);
        mem.write_u32_slice(addr + (vstart as u64) * 4, &vals);
        let bytes = ((vl - vstart) as u64) * 4;
        let cycles = hbm.write(bytes, self.freq_ghz);
        self.finish(hbm, bytes, cycles)
    }

    /// Cycle cost of moving one tenant's vector-register context
    /// (`num_chains` × 32 lanes × 32 registers × 4 bytes) in one
    /// direction between the CSB and memory — the cost model a scheduler
    /// charges per context save or restore. Purely a timing query: no
    /// traffic is recorded, because context images spill to a reserved
    /// region rather than the job's own working set.
    pub fn context_transfer_cycles(&self, hbm: &Hbm, num_chains: usize) -> u64 {
        let bytes = (num_chains as u64) * 32 * 32 * 4;
        let hbm_cycles = hbm.transfer_cycles(bytes, self.freq_ghz);
        // Same overlap rule as a vector load: HBM streaming vs the CSB's
        // one-cycle-per-packet intake.
        hbm_cycles.max(hbm.packets(bytes))
    }

    /// `vlrw.v` — replica vector load: fetch `chunk_len` contiguous
    /// values starting at `addr` **once**, then tile them across the
    /// active window. Memory traffic is one chunk regardless of `vl`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn load_replica(
        &self,
        csb: &mut Csb,
        mem: &MainMemory,
        hbm: &mut Hbm,
        vd: usize,
        addr: u64,
        chunk_len: usize,
    ) -> VmuTransfer {
        assert!(chunk_len > 0, "replica chunk must be non-empty");
        let chunk = mem.read_u32_slice(addr, chunk_len);
        let (vstart, vl) = (csb.vstart(), csb.vl());
        // Materialize the tiling once, then deposit it in bulk.
        let vals: Vec<u32> = (0..vl - vstart).map(|k| chunk[k % chunk_len]).collect();
        csb.write_vector_at(vd, vstart, &vals);
        let bytes = (chunk_len as u64) * 4;
        let hbm_cycles = hbm.read(bytes, self.freq_ghz);
        // The replicated chunk is broadcast to all chains; each chain
        // fills its columns locally, one column per cycle.
        let cols = (vl - vstart).div_ceil(csb.geometry().num_chains().max(1)) as u64;
        let packets = hbm.packets(bytes);
        VmuTransfer {
            bytes,
            packets,
            cycles: hbm_cycles.max(cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_csb::CsbGeometry;

    fn setup() -> (Csb, MainMemory, Hbm, Vmu) {
        (
            Csb::new(CsbGeometry::new(4)),
            MainMemory::new(),
            Hbm::default(),
            Vmu::new(2.7),
        )
    }

    #[test]
    fn load_then_store_roundtrips_through_memory() {
        let (mut csb, mut mem, mut hbm, vmu) = setup();
        let data: Vec<u32> = (0..100).map(|i| i * 7 + 1).collect();
        mem.write_u32_slice(0x1000, &data);
        csb.set_active_window(0, 100);
        let t = vmu.load(&mut csb, &mem, &mut hbm, 1, 0x1000);
        assert_eq!(t.bytes, 400);
        assert_eq!(csb.read_vector(1, 100), data);
        let t2 = vmu.store(&csb, &mut mem, &mut hbm, 1, 0x8000);
        assert_eq!(t2.bytes, 400);
        assert_eq!(mem.read_u32_slice(0x8000, 100), data);
    }

    #[test]
    fn load_respects_vstart() {
        let (mut csb, mut mem, mut hbm, vmu) = setup();
        mem.write_u32_slice(0, &[10, 20, 30, 40]);
        csb.set_active_window(2, 4);
        vmu.load(&mut csb, &mem, &mut hbm, 1, 0);
        // Elements 2 and 3 get memory words 2 and 3 (restartable page
        // faults resume at the faulting index, so indexing is absolute).
        assert_eq!(csb.read_element(1, 2), 30);
        assert_eq!(csb.read_element(1, 3), 40);
        assert_eq!(csb.read_element(1, 0), 0, "below vstart untouched");
    }

    #[test]
    fn replica_load_tiles_the_chunk_with_chunk_sized_traffic() {
        let (mut csb, mut mem, mut hbm, vmu) = setup();
        mem.write_u32_slice(0x100, &[7, 8, 9]);
        csb.set_active_window(0, 12);
        let t = vmu.load_replica(&mut csb, &mem, &mut hbm, 2, 0x100, 3);
        assert_eq!(t.bytes, 12, "only the chunk is fetched");
        assert_eq!(
            csb.read_vector(2, 12),
            vec![7, 8, 9, 7, 8, 9, 7, 8, 9, 7, 8, 9]
        );
    }

    #[test]
    fn cycles_are_at_least_one_per_packet() {
        let (mut csb, mut mem, mut hbm, vmu) = setup();
        let n = 128usize; // full 4-chain CSB
        mem.write_u32_slice(0, &vec![1; n]);
        csb.set_active_window(0, n);
        let t = vmu.load(&mut csb, &mem, &mut hbm, 1, 0);
        assert_eq!(t.packets, 1); // 512 bytes exactly
        assert!(t.cycles >= t.packets);
        assert_eq!(hbm.bytes_read(), 512);
    }

    #[test]
    fn context_transfer_scales_with_chain_count_and_records_no_traffic() {
        let (_, _, hbm, vmu) = setup();
        let small = vmu.context_transfer_cycles(&hbm, 4);
        let large = vmu.context_transfer_cycles(&hbm, 1024);
        assert!(small > 0);
        assert!(large > small);
        // At least one cycle per 512 B packet: 1024 chains = 4 MiB.
        assert!(large >= hbm.packets(1024 * 32 * 32 * 4));
        assert_eq!(hbm.bytes_read() + hbm.bytes_written(), 0);
    }

    #[test]
    fn store_counts_write_traffic() {
        let (mut csb, mut mem, mut hbm, vmu) = setup();
        csb.set_active_window(0, 64);
        vmu.store(&csb, &mut mem, &mut hbm, 3, 0);
        assert_eq!(hbm.bytes_written(), 256);
        assert_eq!(hbm.bytes_read(), 0);
    }
}

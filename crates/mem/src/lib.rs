//! Memory substrate for the CAPE reproduction.
//!
//! Three building blocks:
//!
//! * [`MainMemory`] — a sparse, paged functional memory holding program
//!   data (both CAPE and the baselines execute against it).
//! * [`Hbm`] — the bandwidth/latency model of the HBM main-memory system
//!   both CAPE and the baseline attach to (Table III: 4-high HBM,
//!   8 channels, 16 GB/s and 512 MB per channel, 512 B data-bus packets).
//! * [`Cache`]/[`CacheHierarchy`] — a set-associative, LRU, write-back
//!   cache simulator used by the baseline out-of-order core model (CAPE's
//!   CSB is cacheless, Section V-E).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hbm;
mod main_memory;

pub use cache::{Cache, CacheConfig, CacheHierarchy, CacheStats};
pub use hbm::{Hbm, HbmConfig};
pub use main_memory::MainMemory;

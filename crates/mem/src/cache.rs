//! Set-associative cache simulator for the baseline core models.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access (tag+data) latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }

    /// 32 KiB, 8-way, Table III L1.
    pub fn l1(line_bytes: u32) -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes,
            latency: 2,
        }
    }

    /// 1 MiB, 16-way, Table III L2.
    pub fn l2(line_bytes: u32) -> Self {
        Self {
            size_bytes: 1024 * 1024,
            ways: 16,
            line_bytes,
            latency: 14,
        }
    }

    /// 5.5 MiB, 11-way, Table III shared L3.
    pub fn l3(line_bytes: u32) -> Self {
        Self {
            size_bytes: 5632 * 1024,
            ways: 11,
            line_bytes,
            latency: 50,
        }
    }
}

/// Hit/miss/writeback counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// One set-associative, write-back, write-allocate cache with true LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: lines in MRU-to-LRU order.
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / u64::from(self.config.line_bytes);
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`; returns `true` on hit. On a miss the line is
    /// allocated, possibly evicting the LRU line (counted as a writeback
    /// if dirty).
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        let (set_idx, tag) = self.index(addr);
        let ways = self.config.ways as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            self.stats.hits += 1;
            let mut line = set.remove(pos);
            line.dirty |= write;
            set.insert(0, line);
            return true;
        }
        self.stats.misses += 1;
        if set.len() == ways {
            let evicted = set.pop().expect("full set has a victim");
            if evicted.dirty {
                self.stats.writebacks += 1;
            }
        }
        set.insert(0, Line { tag, dirty: write });
        false
    }

    /// Invalidates the whole cache (keeps statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// A multi-level (L1/L2/optional L3) hierarchy with inclusive allocation,
/// as configured in Table III.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
    /// Cycles charged when every level misses.
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from innermost to outermost level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<Cache>, memory_latency: u64) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        Self {
            levels,
            memory_latency,
        }
    }

    /// The baseline out-of-order core's hierarchy: 32 KiB L1, 1 MiB L2,
    /// 5.5 MiB L3, 512 B last-level lines (Table III).
    pub fn baseline_three_level(memory_latency: u64) -> Self {
        Self::new(
            vec![
                Cache::new(CacheConfig::l1(64)),
                Cache::new(CacheConfig::l2(64)),
                Cache::new(CacheConfig::l3(512)),
            ],
            memory_latency,
        )
    }

    /// The CAPE control processor's hierarchy: L1 + L2 only, 512 B L2
    /// lines (Table III; CAPE has no L3).
    pub fn cape_cp_two_level(memory_latency: u64) -> Self {
        Self::new(
            vec![
                Cache::new(CacheConfig::l1(64)),
                Cache::new(CacheConfig::l2(512)),
            ],
            memory_latency,
        )
    }

    /// Accesses the hierarchy, returning the latency in cycles: the sum of
    /// the latencies of every level probed, or the memory latency when all
    /// levels miss. Missing levels allocate the line (inclusive).
    pub fn access(&mut self, addr: u64, write: bool) -> u64 {
        let mut latency = 0;
        for level in &mut self.levels {
            latency += level.config().latency;
            if level.access(addr, write) {
                return latency;
            }
        }
        latency + self.memory_latency
    }

    /// Per-level statistics, innermost first.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(Cache::stats).collect()
    }

    /// Number of accesses that missed every level (reads from memory).
    pub fn memory_fetches(&self) -> u64 {
        self.levels.last().map(|c| c.stats().misses).unwrap_or(0)
    }

    /// Resets all statistics.
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            level.reset_stats();
        }
    }

    /// Invalidates every level.
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            level.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16 B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 16,
            latency: 1,
        })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40, false));
        assert!(c.access(0x40, false));
        assert!(c.access(0x4F, false), "same line");
        assert!(!c.access(0x50, false), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 64).
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // 0 is MRU, 64 is LRU
        c.access(128, false); // evicts 64
        assert!(c.access(0, false), "line 0 must survive");
        assert!(!c.access(64, false), "line 64 was evicted");
    }

    #[test]
    fn dirty_evictions_count_writebacks() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        c.access(128, false); // evicts dirty line 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn paper_geometries_are_consistent() {
        assert_eq!(CacheConfig::l1(64).sets(), 64);
        assert_eq!(CacheConfig::l2(64).sets(), 1024);
        // 5.5 MiB, 11-way, 512 B lines -> 1024 sets.
        assert_eq!(CacheConfig::l3(512).sets(), 1024);
    }

    #[test]
    fn hierarchy_latencies_accumulate() {
        let mut h = CacheHierarchy::baseline_three_level(300);
        let miss_all = h.access(0x1000, false);
        assert_eq!(miss_all, 2 + 14 + 50 + 300);
        let l1_hit = h.access(0x1000, false);
        assert_eq!(l1_hit, 2);
    }

    #[test]
    fn hierarchy_is_inclusive_on_fill() {
        let mut h = CacheHierarchy::baseline_three_level(300);
        h.access(0x2000, false);
        h.flush();
        // After a flush everything misses again.
        assert_eq!(h.access(0x2000, false), 2 + 14 + 50 + 300);
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut h = CacheHierarchy::baseline_three_level(300);
        // Stream 256 KiB twice: fits L2, not L1 (32 KiB).
        for pass in 0..2 {
            for addr in (0..256 * 1024u64).step_by(64) {
                h.access(addr, false);
            }
            let s = h.stats();
            if pass == 1 {
                // Second pass: L1 still misses a lot, L2 absorbs them.
                assert!(s[1].hits > 0, "L2 must serve the second pass");
                assert_eq!(h.memory_fetches(), 512, "256 KiB / 512 B L3 lines");
            }
        }
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0, false);
        assert_eq!(c.stats().miss_ratio(), 1.0);
        c.access(0, false);
        assert_eq!(c.stats().miss_ratio(), 0.5);
    }
}

//! Bandwidth/latency model of the HBM main-memory system.

use serde::{Deserialize, Serialize};

/// HBM configuration (Table III of the paper: 4-high HBM, 8 channels,
/// 16 GB/s and 512 MB per channel, 512-byte last-level packets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Peak bandwidth per channel in GB/s.
    pub gbps_per_channel: f64,
    /// Capacity per channel in MiB.
    pub mib_per_channel: u32,
    /// Data-bus packet size in bytes (the memory system's transfer and
    /// coherence granule; also the VMU sub-request size).
    pub packet_bytes: u32,
    /// Access latency for the first packet, in nanoseconds.
    pub latency_ns: f64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            gbps_per_channel: 16.0,
            mib_per_channel: 512,
            packet_bytes: 512,
            latency_ns: 100.0,
        }
    }
}

impl HbmConfig {
    /// Aggregate peak bandwidth in bytes per nanosecond (= GB/s).
    pub fn peak_bytes_per_ns(&self) -> f64 {
        f64::from(self.channels) * self.gbps_per_channel
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.mib_per_channel) * 1024 * 1024
    }
}

/// The HBM timing model: converts transfer sizes into core-clock cycles
/// and tracks total traffic for roofline analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hbm {
    config: HbmConfig,
    bytes_read: u64,
    bytes_written: u64,
}

impl Hbm {
    /// Creates the model from a configuration.
    pub fn new(config: HbmConfig) -> Self {
        Self {
            config,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> HbmConfig {
        self.config
    }

    /// Number of packets (sub-requests) a transfer of `bytes` splits into.
    pub fn packets(&self, bytes: u64) -> u64 {
        bytes.div_ceil(u64::from(self.config.packet_bytes))
    }

    /// Cycles (at `freq_ghz`) to stream `bytes` in one direction:
    /// first-packet latency plus bandwidth-limited streaming.
    pub fn transfer_cycles(&self, bytes: u64, freq_ghz: f64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let stream_ns = bytes as f64 / self.config.peak_bytes_per_ns();
        ((self.config.latency_ns + stream_ns) * freq_ghz).ceil() as u64
    }

    /// Records a read of `bytes` and returns its cycle cost.
    pub fn read(&mut self, bytes: u64, freq_ghz: f64) -> u64 {
        self.bytes_read += bytes;
        self.transfer_cycles(bytes, freq_ghz)
    }

    /// Records a write of `bytes` and returns its cycle cost.
    pub fn write(&mut self, bytes: u64, freq_ghz: f64) -> u64 {
        self.bytes_written += bytes;
        self.transfer_cycles(bytes, freq_ghz)
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Resets the traffic counters.
    pub fn reset(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

impl Default for Hbm {
    fn default() -> Self {
        Self::new(HbmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_aggregates() {
        let c = HbmConfig::default();
        assert_eq!(c.peak_bytes_per_ns(), 128.0); // 8 x 16 GB/s
        assert_eq!(c.capacity_bytes(), 4 * 1024 * 1024 * 1024); // 4 GiB
    }

    #[test]
    fn packets_round_up() {
        let hbm = Hbm::default();
        assert_eq!(hbm.packets(0), 0);
        assert_eq!(hbm.packets(1), 1);
        assert_eq!(hbm.packets(512), 1);
        assert_eq!(hbm.packets(513), 2);
        assert_eq!(hbm.packets(128 * 1024), 256);
    }

    #[test]
    fn transfer_cycles_scale_with_size() {
        let hbm = Hbm::default();
        let small = hbm.transfer_cycles(512, 2.7);
        let large = hbm.transfer_cycles(4 * 1024 * 1024, 2.7);
        assert!(small > 0);
        assert!(large > 10 * small, "streaming must dominate at 4 MiB");
        // 4 MiB at 128 B/ns is ~32768 ns = ~88k cycles at 2.7 GHz.
        let expect = ((100.0 + 4194304.0 / 128.0) * 2.7) as u64;
        assert!((large as i64 - expect as i64).abs() <= 3);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut hbm = Hbm::default();
        hbm.read(1000, 2.7);
        hbm.write(500, 2.7);
        assert_eq!(hbm.bytes_read(), 1000);
        assert_eq!(hbm.bytes_written(), 500);
        assert_eq!(hbm.total_bytes(), 1500);
        hbm.reset();
        assert_eq!(hbm.total_bytes(), 0);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        assert_eq!(Hbm::default().transfer_cycles(0, 2.7), 0);
    }
}

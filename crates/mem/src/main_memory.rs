//! Sparse functional main memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse, paged byte-addressable memory.
///
/// Pages are allocated on first touch, so multi-gigabyte address spaces
/// cost only what is actually used. Reads of untouched memory return
/// zeros, like freshly mapped pages.
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(std::array::from_fn(|i| self.read_u8(addr + i as u64)))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(std::array::from_fn(|i| self.read_u8(addr + i as u64)))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Bulk-writes a `u32` slice starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u32(addr + (i as u64) * 4, v);
        }
    }

    /// Bulk-reads `len` `u32`s starting at `addr`.
    pub fn read_u32_slice(&self, addr: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(addr + (i as u64) * 4))
            .collect()
    }

    /// Bulk-writes raw bytes.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Bulk-reads raw bytes.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_u32(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u32_roundtrip_and_endianness() {
        let mut m = MainMemory::new();
        m.write_u32(100, 0x0403_0201);
        assert_eq!(m.read_u8(100), 0x01);
        assert_eq!(m.read_u8(103), 0x04);
        assert_eq!(m.read_u32(100), 0x0403_0201);
    }

    #[test]
    fn u64_roundtrip_across_page_boundary() {
        let mut m = MainMemory::new();
        let addr = (1 << 12) - 4; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = MainMemory::new();
        let data: Vec<u32> = (0..1000).collect();
        m.write_u32_slice(0x10_0000, &data);
        assert_eq!(m.read_u32_slice(0x10_0000, 1000), data);
    }

    #[test]
    fn sparse_pages_stay_sparse() {
        let mut m = MainMemory::new();
        m.write_u8(0, 1);
        m.write_u8(1 << 30, 2); // a gigabyte away
        assert_eq!(m.resident_pages(), 2);
    }
}

//! Smoke tests at realistic scale (ignored by default; the fig harnesses
//! exercise full scale).

use cape_core::CapeConfig;
use cape_workloads::micro::Vvadd;
use cape_workloads::phoenix::Histogram;
use cape_workloads::{run_cape, Workload};

#[test]
#[ignore = "multi-second full-scale probe; run explicitly"]
fn vvadd_at_cape32k() {
    let w = Vvadd { n: 200_000 };
    let t = std::time::Instant::now();
    let cape = run_cape(&w, &CapeConfig::cape32k());
    eprintln!(
        "vvadd 200k @32k: {:?} wall, {} cycles",
        t.elapsed(),
        cape.report.cycles
    );
    assert_eq!(cape.digest, w.run_baseline().digest);
}

#[test]
#[ignore = "multi-second full-scale probe; run explicitly"]
fn hist_at_cape32k() {
    let w = Histogram { n: 262_144 };
    let t = std::time::Instant::now();
    let cape = run_cape(&w, &CapeConfig::cape32k());
    eprintln!(
        "hist 262k @32k: {:?} wall, {} cycles",
        t.elapsed(),
        cape.report.cycles
    );
    assert_eq!(cape.digest, w.run_baseline().digest);
}

#[test]
#[ignore = "multi-second full-scale probe; run explicitly"]
fn matmul_at_cape32k() {
    let w = cape_workloads::phoenix::Matmul { n: 96 };
    let t = std::time::Instant::now();
    let cape = run_cape(&w, &CapeConfig::cape32k());
    eprintln!(
        "matmul 96 @32k: {:?} wall, {} cycles",
        t.elapsed(),
        cape.report.cycles
    );
    assert_eq!(cape.digest, w.run_baseline().digest);
}

#[test]
#[ignore = "multi-second full-scale probe; run explicitly"]
fn kmeans_at_cape32k() {
    let w = cape_workloads::phoenix::Kmeans {
        n: 60_000,
        k: 4,
        iters: 5,
    };
    let t = std::time::Instant::now();
    let cape = run_cape(&w, &CapeConfig::cape32k());
    eprintln!(
        "kmeans 60k @32k: {:?} wall, {} cycles",
        t.elapsed(),
        cape.report.cycles
    );
    assert_eq!(cape.digest, w.run_baseline().digest);
}

//! Microbenchmarks (Section VI-D; set reconstructed — see DESIGN.md).
//!
//! * [`Vvadd`] — element-wise vector addition (streaming, memory-bound).
//! * [`DotProd`] — inner product (vmul + accumulated vredsum).
//! * [`Memcpy`] — pure data movement through the VMU.
//! * [`SearchCount`] — count occurrences of a key (CAPE's bulk search).
//! * [`IdxSearch`] — find each key's first index (`idxsrch` in the
//!   paper): parallel searches with *serialized* per-key post-processing,
//!   the Amdahl pattern the Roofline discussion highlights.

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

const SRC1: i64 = 0x0001_0000;
const SRC2: i64 = 0x0100_0000;
const DST: i64 = 0x0200_0000;
const OUT: i64 = 0x0300_0000;
const KEYS: i64 = 0x0400_0000;

fn advance(p: &mut cape_isa::ProgramBuilder, granted: Reg, ptrs: &[Reg]) {
    p.slli(Reg::T1, granted, 2);
    for &r in ptrs {
        p.add(r, r, Reg::T1);
    }
}

/// `vvadd`: `c[i] = a[i] + b[i]`.
#[derive(Debug, Clone, Copy)]
pub struct Vvadd {
    /// Element count.
    pub n: usize,
}

impl Workload for Vvadd {
    fn name(&self) -> &'static str {
        "vvadd"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let a = gen::matrix(1, self.n, 1 << 30, 11);
        let b = gen::matrix(1, self.n, 1 << 30, 12);
        mem.write_u32_slice(SRC1 as u64, &a);
        mem.write_u32_slice(SRC2 as u64, &b);
        let mut p = Program::builder();
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, SRC2);
        p.li(Reg::S3, DST);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vle32(VReg::V2, Reg::S2);
        p.vadd_vv(VReg::V3, VReg::V1, VReg::V2);
        p.vse32(VReg::V3, Reg::S3);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        advance(&mut p, Reg::T0, &[Reg::S1, Reg::S2, Reg::S3]);
        p.bnez(Reg::S0, "strip");
        p.halt();
        p.build().expect("vvadd program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(DST as u64, self.n))
    }

    fn run_baseline(&self) -> BaselineRun {
        let a = gen::matrix(1, self.n, 1 << 30, 11);
        let b = gen::matrix(1, self.n, 1 << 30, 12);
        let mut core = OooCore::table3();
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.load(SRC2 as u64 + (i as u64) * 4);
            core.op(1);
            core.branch(1);
            core.store(DST as u64 + (i as u64) * 4);
            out.push(a[i].wrapping_add(b[i]));
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

/// `dotprod`: `sum(a[i] * b[i])` (wrapping, as 32-bit RVV arithmetic).
#[derive(Debug, Clone, Copy)]
pub struct DotProd {
    /// Element count.
    pub n: usize,
}

impl Workload for DotProd {
    fn name(&self) -> &'static str {
        "dotprod"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let a = gen::matrix(1, self.n, 1000, 21);
        let b = gen::matrix(1, self.n, 1000, 22);
        mem.write_u32_slice(SRC1 as u64, &a);
        mem.write_u32_slice(SRC2 as u64, &b);
        let mut p = Program::builder();
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, SRC2);
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V6, Reg::ZERO); // running sum in v6[0]
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vle32(VReg::V2, Reg::S2);
        p.vmul_vv(VReg::V3, VReg::V1, VReg::V2);
        p.vredsum(VReg::V6, VReg::V3, VReg::V6);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        advance(&mut p, Reg::T0, &[Reg::S1, Reg::S2]);
        p.bnez(Reg::S0, "strip");
        p.vmv_xs(Reg::T5, VReg::V6);
        p.li(Reg::A0, OUT);
        p.sw(Reg::T5, 0, Reg::A0);
        p.halt();
        p.build().expect("dotprod program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a([mem.read_u32(OUT as u64)])
    }

    fn run_baseline(&self) -> BaselineRun {
        let a = gen::matrix(1, self.n, 1000, 21);
        let b = gen::matrix(1, self.n, 1000, 22);
        let mut core = OooCore::table3();
        let mut acc = 0u32;
        for i in 0..self.n {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.load(SRC2 as u64 + (i as u64) * 4);
            core.mul(1);
            core.op(1);
            core.branch(1);
            acc = acc.wrapping_add(a[i].wrapping_mul(b[i]));
        }
        core.store(OUT as u64);
        BaselineRun {
            report: core.finish(),
            digest: fnv1a([acc]),
            simd: SimdProfile {
                vec_mul_ops: self.n as u64,
                vec_red_ops: self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

/// `memcpy`: `b[i] = a[i]`, pure VMU streaming.
#[derive(Debug, Clone, Copy)]
pub struct Memcpy {
    /// Element count.
    pub n: usize,
}

impl Workload for Memcpy {
    fn name(&self) -> &'static str {
        "memcpy"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let a = gen::matrix(1, self.n, u32::MAX, 31);
        mem.write_u32_slice(SRC1 as u64, &a);
        let mut p = Program::builder();
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S3, DST);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vse32(VReg::V1, Reg::S3);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        advance(&mut p, Reg::T0, &[Reg::S1, Reg::S3]);
        p.bnez(Reg::S0, "strip");
        p.halt();
        p.build().expect("memcpy program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(DST as u64, self.n))
    }

    fn run_baseline(&self) -> BaselineRun {
        let a = gen::matrix(1, self.n, u32::MAX, 31);
        let mut core = OooCore::table3();
        for i in 0..self.n {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.store(DST as u64 + (i as u64) * 4);
            core.branch(1);
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(a),
            simd: SimdProfile {
                vec_ops: self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

/// `search`: count the occurrences of one key — CAPE's signature
/// bit-parallel search plus the reduction tree.
#[derive(Debug, Clone, Copy)]
pub struct SearchCount {
    /// Element count.
    pub n: usize,
    /// The key to count.
    pub key: u32,
}

impl Workload for SearchCount {
    fn name(&self) -> &'static str {
        "search"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let a = gen::zipf_words(self.n, 256, 41);
        mem.write_u32_slice(SRC1 as u64, &a);
        let mut p = Program::builder();
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S4, 0);
        p.li(Reg::S5, i64::from(self.key));
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::S5);
        p.vcpop(Reg::T2, VReg::V2);
        p.add(Reg::S4, Reg::S4, Reg::T2);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        advance(&mut p, Reg::T0, &[Reg::S1]);
        p.bnez(Reg::S0, "strip");
        p.li(Reg::A0, OUT);
        p.sw(Reg::S4, 0, Reg::A0);
        p.halt();
        p.build().expect("search program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a([mem.read_u32(OUT as u64)])
    }

    fn run_baseline(&self) -> BaselineRun {
        let a = gen::zipf_words(self.n, 256, 41);
        let mut core = OooCore::table3();
        let mut count = 0u32;
        for (i, &word) in a.iter().enumerate().take(self.n) {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.op(1);
            core.branch(1);
            if word == self.key {
                count += 1;
            }
        }
        core.store(OUT as u64);
        BaselineRun {
            report: core.finish(),
            digest: fnv1a([count]),
            simd: SimdProfile {
                vec_ops: self.n as u64,
                vec_red_ops: self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

/// `idxsrch`: for each of `keys` keys, find the index of its first
/// occurrence (or -1). The searches are massively parallel but each
/// match is post-processed serially on the control processor.
#[derive(Debug, Clone, Copy)]
pub struct IdxSearch {
    /// Haystack length.
    pub n: usize,
    /// Number of keys to look up.
    pub keys: usize,
}

impl IdxSearch {
    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let hay = gen::zipf_words(self.n, 4096, 51);
        // Mix present and absent keys.
        let keys = (0..self.keys)
            .map(|i| {
                if i % 3 == 2 {
                    5000 + i as u32
                } else {
                    (i as u32) * 7 % 4096
                }
            })
            .collect();
        (hay, keys)
    }
}

impl Workload for IdxSearch {
    fn name(&self) -> &'static str {
        "idxsrch"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let (hay, keys) = self.inputs();
        mem.write_u32_slice(SRC1 as u64, &hay);
        mem.write_u32_slice(KEYS as u64, &keys);
        let mut p = Program::builder();
        p.li(Reg::S6, KEYS);
        p.li(Reg::S7, self.keys as i64);
        p.li(Reg::S8, OUT);
        p.label("key_loop");
        p.lw(Reg::S5, 0, Reg::S6);
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S9, 0); // strip base index
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::S5);
        p.vfirst(Reg::T2, VReg::V2);
        p.bge(Reg::T2, Reg::ZERO, "found");
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        advance(&mut p, Reg::T0, &[Reg::S1]);
        p.add(Reg::S9, Reg::S9, Reg::T0);
        p.bnez(Reg::S0, "strip");
        p.li(Reg::T2, -1);
        p.j("store");
        p.label("found");
        p.add(Reg::T2, Reg::T2, Reg::S9);
        p.label("store");
        p.sw(Reg::T2, 0, Reg::S8);
        p.addi(Reg::S8, Reg::S8, 4);
        p.addi(Reg::S6, Reg::S6, 4);
        p.addi(Reg::S7, Reg::S7, -1);
        p.bnez(Reg::S7, "key_loop");
        p.halt();
        p.build().expect("idxsrch program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.keys))
    }

    fn run_baseline(&self) -> BaselineRun {
        let (hay, keys) = self.inputs();
        let mut core = OooCore::table3();
        let mut out = Vec::with_capacity(keys.len());
        let mut scanned = 0u64;
        for &k in &keys {
            core.load(KEYS as u64); // key fetch
            let mut found = -1i32;
            for (i, &w) in hay.iter().enumerate() {
                core.load(SRC1 as u64 + (i as u64) * 4);
                core.op(1);
                core.branch(1);
                scanned += 1;
                if w == k {
                    found = i as i32;
                    break;
                }
            }
            core.store(OUT as u64);
            out.push(found as u32);
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: scanned,
                scalar_ops: keys.len() as u64 * 4,
                ..Default::default()
            },
            // Per-key searches are independent, but matches are resolved
            // serially.
            parallel_fraction: 0.85,
        }
    }
}

/// The standard microbenchmark set at a given scale.
pub fn suite(n: usize) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Vvadd { n }),
        Box::new(DotProd { n }),
        Box::new(Memcpy { n }),
        Box::new(SearchCount { n, key: 3 }),
        Box::new(IdxSearch { n, keys: 24 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    fn check(w: &dyn Workload) {
        let cape = run_cape(w, &CapeConfig::tiny(4));
        let base = w.run_baseline();
        assert_eq!(cape.digest, base.digest, "{} results must match", w.name());
        assert!(cape.report.cycles > 0);
        assert!(base.report.cycles > 0);
    }

    #[test]
    fn vvadd_matches_baseline() {
        check(&Vvadd { n: 700 });
    }

    #[test]
    fn dotprod_matches_baseline() {
        check(&DotProd { n: 700 });
    }

    #[test]
    fn memcpy_matches_baseline() {
        check(&Memcpy { n: 700 });
    }

    #[test]
    fn search_matches_baseline() {
        check(&SearchCount { n: 700, key: 3 });
    }

    #[test]
    fn idxsrch_matches_baseline() {
        check(&IdxSearch { n: 500, keys: 9 });
    }

    #[test]
    fn idxsrch_handles_missing_keys() {
        let w = IdxSearch { n: 300, keys: 6 };
        let cape = run_cape(&w, &CapeConfig::tiny(2));
        let mut mem = MainMemory::new();
        let _ = w.cape_setup(&mut mem);
        // key index 2 and 5 are the absent (5000+) ones.
        let _ = cape; // digest equality already covers this; ensure the
                      // generator really made them absent:
        let (hay, keys) = w.inputs();
        assert!(!hay.contains(&keys[2]));
    }
}

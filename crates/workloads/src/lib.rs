//! The evaluation workloads: the Phoenix application suite (Section VI-E
//! of the paper) and the microbenchmark set (Section VI-D), each in two
//! forms:
//!
//! * a **CAPE program** — real RISC-V vector assembly built with
//!   `cape-isa` and executed on the full `cape-core` machine model;
//! * a **baseline kernel** — the same computation in native Rust,
//!   instrumented through `cape-baseline`'s out-of-order core model
//!   (every memory access streams through the cache simulator) and
//!   producing a vectorization profile for the SVE model.
//!
//! Both forms produce a result digest; the harness asserts they are
//! **equal**, so every speedup in the figures is backed by a bit-exact
//! cross-check of the two implementations.
//!
//! Inputs are deterministic: seeded synthetic generators with the same
//! structural properties as the Phoenix inputs (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod micro;
pub mod phoenix;

mod harness;

pub use harness::{run_cape, BaselineRun, CapeRun, Workload};

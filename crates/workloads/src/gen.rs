//! Deterministic synthetic input generators.
//!
//! Each generator is seeded, so every run of every harness sees the same
//! inputs. The distributions mirror the structural properties of the
//! Phoenix suite's inputs: pixel histograms with realistic skew, Zipfian
//! word frequencies for the text applications, Gaussian clusters for
//! k-means, and dense matrices for the linear-algebra kernels.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A grayscale "image": `n` pixel values in `0..256`, drawn from a
/// mixture of two broad peaks (sky/foreground) like natural photographs.
pub fn image(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let (center, spread) = if rng.gen_bool(0.6) {
                (60.0, 30.0)
            } else {
                (180.0, 25.0)
            };
            let g: f64 = sample_gaussian(&mut rng);
            (center + spread * g).clamp(0.0, 255.0) as u32
        })
        .collect()
}

/// A Zipf-distributed word stream over a vocabulary of `vocab` word ids
/// (`0..vocab`), `n` words long. Low ids are the frequent words.
pub fn zipf_words(n: usize, vocab: usize, seed: u64) -> Vec<u32> {
    assert!(vocab > 0, "vocabulary must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Precompute the Zipf CDF (s = 1.0).
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u) as u32
        })
        .collect()
}

/// `n` 2-D points in `k` Gaussian clusters, as interleaved fixed-point
/// coordinates scaled to `0..4096`. Returns `(xs, ys, true_centroids)`.
pub fn gaussian_clusters(n: usize, k: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<(u32, u32)>) {
    assert!(k > 0, "need at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let centroids: Vec<(u32, u32)> = (0..k)
        .map(|_| (rng.gen_range(500..3500), rng.gen_range(500..3500)))
        .collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let (cx, cy) = centroids[i % k];
        let dx = 80.0 * sample_gaussian(&mut rng);
        let dy = 80.0 * sample_gaussian(&mut rng);
        xs.push((f64::from(cx) + dx).clamp(0.0, 4095.0) as u32);
        ys.push((f64::from(cy) + dy).clamp(0.0, 4095.0) as u32);
    }
    (xs, ys, centroids)
}

/// A dense `rows x cols` matrix of small values (`0..bound`), row-major.
pub fn matrix(rows: usize, cols: usize, bound: u32, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.gen_range(0..bound)).collect()
}

/// Noisy points along a line `y = slope*x + intercept` (fixed-point),
/// for linear regression. Returns `(xs, ys)`.
pub fn linear_points(n: usize, slope: u32, intercept: u32, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let xs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1024)).collect();
    let ys = xs
        .iter()
        .map(|&x| {
            let noise = (8.0 * sample_gaussian(&mut rng)) as i64;
            (i64::from(slope * x + intercept) + noise).max(0) as u32
        })
        .collect();
    (xs, ys)
}

/// A standard-normal sample via Box–Muller.
fn sample_gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(image(100, 7), image(100, 7));
        assert_eq!(zipf_words(100, 32, 7), zipf_words(100, 32, 7));
        assert_eq!(matrix(8, 8, 100, 7), matrix(8, 8, 100, 7));
        assert_ne!(image(100, 7), image(100, 8));
    }

    #[test]
    fn image_pixels_are_bytes() {
        assert!(image(10_000, 1).iter().all(|&p| p < 256));
    }

    #[test]
    fn zipf_is_skewed() {
        let words = zipf_words(50_000, 64, 3);
        let count = |w: u32| words.iter().filter(|&&x| x == w).count();
        assert!(count(0) > 4 * count(20), "word 0 must dominate");
        assert!(words.iter().all(|&w| w < 64));
    }

    #[test]
    fn clusters_have_k_centroids_and_n_points() {
        let (xs, ys, c) = gaussian_clusters(1000, 4, 9);
        assert_eq!(xs.len(), 1000);
        assert_eq!(ys.len(), 1000);
        assert_eq!(c.len(), 4);
        assert!(xs.iter().all(|&x| x < 4096));
    }

    #[test]
    fn linear_points_follow_the_line() {
        let (xs, ys) = linear_points(20_000, 3, 100, 5);
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().map(|&x| f64::from(x)).sum();
        let sy: f64 = ys.iter().map(|&y| f64::from(y)).sum();
        let sxx: f64 = xs.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!((slope - 3.0).abs() < 0.05, "fitted slope {slope}");
    }
}

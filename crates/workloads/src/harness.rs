//! The workload abstraction shared by the figure harnesses.

use cape_baseline::{BaselineReport, SimdProfile};
use cape_core::{CapeConfig, CapeMachine, RunReport};
use cape_isa::Program;
use cape_mem::MainMemory;

/// Result of running a workload's CAPE program.
#[derive(Debug, Clone)]
pub struct CapeRun {
    /// Machine-level report (cycles, energy, traffic, roofline inputs).
    pub report: RunReport,
    /// Digest of the outputs, for cross-checking against the baseline.
    pub digest: u64,
}

/// Result of running a workload's baseline kernel.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Single-core out-of-order timing report.
    pub report: BaselineReport,
    /// Digest of the outputs (must equal the CAPE digest).
    pub digest: u64,
    /// Vectorization profile for the SVE model (Fig. 12).
    pub simd: SimdProfile,
    /// Thread-parallel fraction for the multicore model (Fig. 11).
    pub parallel_fraction: f64,
}

/// One evaluation workload.
pub trait Workload {
    /// Short name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Writes the workload's inputs into `mem` and returns the CAPE
    /// RISC-V vector program.
    fn cape_setup(&self, mem: &mut MainMemory) -> Program;

    /// Digests the workload outputs from memory after a CAPE run.
    fn digest(&self, mem: &MainMemory) -> u64;

    /// Runs the instrumented baseline kernel.
    fn run_baseline(&self) -> BaselineRun;
}

/// Runs a workload's CAPE program on a fresh machine of the given
/// configuration.
///
/// # Panics
///
/// Panics if the program faults or exceeds the instruction budget —
/// workload programs are expected to be correct.
pub fn run_cape(workload: &dyn Workload, config: &CapeConfig) -> CapeRun {
    let mut mem = MainMemory::new();
    let program = workload.cape_setup(&mut mem);
    let mut machine = CapeMachine::new(*config);
    let report = machine
        .run(&program, &mut mem)
        .unwrap_or_else(|e| panic!("{} CAPE program failed: {e}", workload.name()));
    CapeRun {
        report,
        digest: workload.digest(&mem),
    }
}

/// FNV-1a digest over a word sequence — the common output checksum.
pub(crate) fn fnv1a(words: impl IntoIterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([3, 2, 1]));
        assert_ne!(fnv1a([]), fnv1a([0]));
    }
}

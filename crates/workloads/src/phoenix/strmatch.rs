//! String match: locate needle tokens in a text stream.
//!
//! Each needle is searched with one bulk `vmseq` per strip; its matches
//! are counted with the reduction tree and the *first* occurrence is
//! extracted with `vfirst` and then re-verified by a scalar load on the
//! control processor — the serialized per-match post-processing the
//! paper describes for the text workloads.

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{AUX, OUT, SRC1};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// Search `needles` keys over a text of `n` tokens; report per needle
/// its occurrence count and first position (or -1).
#[derive(Debug, Clone, Copy)]
pub struct StringMatch {
    /// Token count of the text.
    pub n: usize,
    /// Number of needles.
    pub needles: usize,
}

impl StringMatch {
    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let text = gen::zipf_words(self.n, 2048, 141);
        // Alternate guaranteed-present (frequent) and likely-absent keys.
        let keys = (0..self.needles)
            .map(|i| {
                if i % 2 == 0 {
                    i as u32 / 2
                } else {
                    3000 + i as u32
                }
            })
            .collect();
        (text, keys)
    }
}

impl Workload for StringMatch {
    fn name(&self) -> &'static str {
        "strmatch"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let (text, keys) = self.inputs();
        mem.write_u32_slice(SRC1 as u64, &text);
        mem.write_u32_slice(AUX as u64, &keys);
        let p_needles = self.needles as i64;
        let mut p = Program::builder();
        // Init per-needle state: count = 0, first = -1.
        p.li(Reg::T3, 0);
        p.li(Reg::T4, p_needles);
        p.li(Reg::T5, OUT);
        p.li(Reg::T6, -1);
        p.label("init");
        p.sw(Reg::ZERO, 0, Reg::T5); // count
        p.sw(Reg::T6, 4, Reg::T5); // first
        p.addi(Reg::T5, Reg::T5, 8);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::T4, "init");
        // Strip over the text; search every needle per strip.
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, 0); // base element index
        p.li(Reg::S11, p_needles);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.li(Reg::S4, 0); // needle index
        p.li(Reg::S5, AUX);
        p.label("needle");
        p.lw(Reg::S10, 0, Reg::S5);
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::S10);
        p.vcpop(Reg::T3, VReg::V2);
        // count += matches
        p.slli(Reg::T4, Reg::S4, 3);
        p.li(Reg::T5, OUT);
        p.add(Reg::T4, Reg::T4, Reg::T5);
        p.lw(Reg::T6, 0, Reg::T4);
        p.add(Reg::T6, Reg::T6, Reg::T3);
        p.sw(Reg::T6, 0, Reg::T4);
        // first = base + vfirst, if unset and the strip matched
        p.lw(Reg::T6, 4, Reg::T4);
        p.bge(Reg::T6, Reg::ZERO, "have_first");
        p.beqz(Reg::T3, "have_first");
        p.vfirst(Reg::T5, VReg::V2);
        p.add(Reg::T5, Reg::T5, Reg::S2);
        // Serialized verification: reload the text word and re-compare.
        p.slli(Reg::T6, Reg::T5, 2);
        p.li(Reg::A0, SRC1);
        p.add(Reg::T6, Reg::T6, Reg::A0);
        p.lw(Reg::A0, 0, Reg::T6);
        p.bne(Reg::A0, Reg::S10, "have_first"); // never taken; models the check
        p.sw(Reg::T5, 4, Reg::T4);
        p.label("have_first");
        p.addi(Reg::S4, Reg::S4, 1);
        p.addi(Reg::S5, Reg::S5, 4);
        p.blt(Reg::S4, Reg::S11, "needle");
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.add(Reg::S2, Reg::S2, Reg::T0);
        p.bnez(Reg::S0, "strip");
        p.halt();
        p.build().expect("strmatch program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, 2 * self.needles))
    }

    fn run_baseline(&self) -> BaselineRun {
        let (text, keys) = self.inputs();
        let mut core = OooCore::table3();
        let mut out = Vec::with_capacity(2 * keys.len());
        for &k in &keys {
            core.load(AUX as u64);
            let mut count = 0u32;
            let mut first = -1i32;
            for (i, &w) in text.iter().enumerate() {
                core.load(SRC1 as u64 + (i as u64) * 4);
                core.op(1);
                core.branch(1);
                if w == k {
                    core.op(2);
                    count += 1;
                    if first < 0 {
                        first = i as i32;
                    }
                }
            }
            core.store(OUT as u64);
            core.store(OUT as u64 + 4);
            out.push(count);
            out.push(first as u32);
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: (text.len() * keys.len()) as u64,
                vec_red_ops: (text.len() * keys.len()) as u64,
                scalar_ops: 4 * keys.len() as u64,
                ..Default::default()
            },
            parallel_fraction: 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_matches_agree() {
        let w = StringMatch { n: 500, needles: 4 };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn absent_needles_report_minus_one() {
        let w = StringMatch { n: 400, needles: 4 };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(2));
        machine.run(&prog, &mut mem).unwrap();
        let out = mem.read_u32_slice(OUT as u64, 8);
        // Needle 1 (key 3001) and 3 (key 3003) are absent.
        assert_eq!(out[2], 0);
        assert_eq!(out[3], u32::MAX);
        assert_eq!(out[6], 0);
        assert_eq!(out[7], u32::MAX);
        // Needle 0 (key 0, Zipf head) is present with a valid first index.
        assert!(out[0] > 0);
        assert!((out[1] as usize) < 400);
    }
}

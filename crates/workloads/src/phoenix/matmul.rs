//! Dense matrix multiplication, vectorized exactly as Section V-G
//! prescribes: (1) a unit-stride load brings multiple rows of `A` into
//! one ultra-long vector register, (2) the *replica vector load* `vlrw`
//! tiles one row of `B`-transposed across the register, and (3) windowed
//! `vredsum`s (via the reconfigurable active window of Section V-F)
//! produce one output element per row.

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1, SRC2};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// `n x n` matrix multiply (`C = A x B`), with `B` stored transposed.
///
/// The CAPE program requires `n <= MAX_VL` of the machine it runs on
/// (one matrix row must fit a row window).
#[derive(Debug, Clone, Copy)]
pub struct Matmul {
    /// Matrix dimension.
    pub n: usize,
}

impl Matmul {
    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let a = gen::matrix(self.n, self.n, 64, 91);
        let bt = gen::matrix(self.n, self.n, 64, 92);
        (a, bt)
    }
}

impl Workload for Matmul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let (a, bt) = self.inputs();
        mem.write_u32_slice(SRC1 as u64, &a);
        mem.write_u32_slice(SRC2 as u64, &bt);
        let n = self.n as i64;
        let mut p = Program::builder();
        p.li(Reg::S3, n);
        p.li(Reg::S0, n * n); // remaining elements of A
        p.li(Reg::S1, SRC1);
        p.li(Reg::S8, OUT);
        p.li(Reg::S2, 0); // base row of the current block
        p.slli(Reg::S9, Reg::S3, 2); // Bt row stride in bytes
                                     // Zero register for the reduction seed.
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V31, Reg::ZERO);
        p.label("block");
        // Take as many whole rows of A as fit the hardware vector length.
        p.vsetvli(Reg::T0, Reg::S0);
        p.op(cape_isa::AluOp::Divu, Reg::T2, Reg::T0, Reg::S3); // rows
        p.mul(Reg::T3, Reg::T2, Reg::S3); // vl actually used
        p.vsetvli(Reg::T0, Reg::T3);
        p.vle32(VReg::V1, Reg::S1);
        p.li(Reg::S4, 0); // j
        p.li(Reg::S5, SRC2); // Bt row pointer
        p.label("jloop");
        // Restore the full block window (vsetvli resets vstart).
        p.vsetvli(Reg::T6, Reg::T3);
        p.vlrw(VReg::V2, Reg::S5, Reg::S3); // replicate Bt row j
        p.vmul_vv(VReg::V3, VReg::V1, VReg::V2);
        p.li(Reg::S6, 0); // i within the block
        p.label("iloop");
        // Reduce the window [i*n, (i+1)*n) of the products.
        p.addi(Reg::T4, Reg::S6, 1);
        p.mul(Reg::T4, Reg::T4, Reg::S3);
        p.vsetvli(Reg::T5, Reg::T4);
        p.mul(Reg::T5, Reg::S6, Reg::S3);
        p.vsetstart(Reg::T5);
        p.vredsum(VReg::V4, VReg::V3, VReg::V31);
        p.vmv_xs(Reg::T5, VReg::V4);
        // C[(base + i) * n + j]
        p.add(Reg::T4, Reg::S2, Reg::S6);
        p.mul(Reg::T4, Reg::T4, Reg::S3);
        p.add(Reg::T4, Reg::T4, Reg::S4);
        p.slli(Reg::T4, Reg::T4, 2);
        p.add(Reg::T4, Reg::T4, Reg::S8);
        p.sw(Reg::T5, 0, Reg::T4);
        p.addi(Reg::S6, Reg::S6, 1);
        p.blt(Reg::S6, Reg::T2, "iloop");
        p.addi(Reg::S4, Reg::S4, 1);
        p.add(Reg::S5, Reg::S5, Reg::S9);
        p.blt(Reg::S4, Reg::S3, "jloop");
        p.sub(Reg::S0, Reg::S0, Reg::T3);
        p.slli(Reg::T4, Reg::T3, 2);
        p.add(Reg::S1, Reg::S1, Reg::T4);
        p.add(Reg::S2, Reg::S2, Reg::T2);
        p.bnez(Reg::S0, "block");
        p.halt();
        p.build().expect("matmul program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.n * self.n))
    }

    fn run_baseline(&self) -> BaselineRun {
        let (a, bt) = self.inputs();
        let n = self.n;
        let mut core = OooCore::table3();
        let mut c = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0u32;
                for k in 0..n {
                    core.load(SRC1 as u64 + ((i * n + k) as u64) * 4);
                    core.load(SRC2 as u64 + ((j * n + k) as u64) * 4);
                    core.mul(1);
                    core.op(1);
                    core.branch(1);
                    acc = acc.wrapping_add(a[i * n + k].wrapping_mul(bt[j * n + k]));
                }
                core.store(OUT as u64 + ((i * n + j) as u64) * 4);
                c[i * n + j] = acc;
            }
        }
        let n3 = (n * n * n) as u64;
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(c),
            simd: SimdProfile {
                vec_mul_ops: n3,
                vec_red_ops: n3,
                scalar_ops: (n * n) as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_products_match() {
        let w = Matmul { n: 12 };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn known_product_is_exact() {
        // 2x2 identity-ish check through the whole stack.
        let w = Matmul { n: 8 };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(2));
        machine.run(&prog, &mut mem).unwrap();
        let (a, bt) = w.inputs();
        let c = mem.read_u32_slice(OUT as u64, 64);
        for i in 0..8 {
            for j in 0..8 {
                let want: u32 = (0..8).map(|k| a[i * 8 + k] * bt[j * 8 + k]).sum();
                assert_eq!(c[i * 8 + j], want, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn block_loop_handles_multiple_blocks() {
        // n=8 on a 64-lane machine: 8 rows per block, 8 blocks... n*n=64
        // fits exactly; use n=10 so blocks split unevenly (6 rows then 4).
        let w = Matmul { n: 10 };
        let cape = run_cape(&w, &CapeConfig::tiny(2));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }
}

//! K-means clustering of 2-D fixed-point points.
//!
//! Per iteration: assign each point to its nearest centroid (distances
//! via `vsub`/`vmul`/`vadd`, running minimum via `vmslt` + `vmerge`),
//! then rebuild centroids with masked reductions (`vmseq` + `vcpop` +
//! `vmerge` + `vredsum`).
//!
//! This is the paper's capacity-sensitivity showcase: when the dataset
//! fits in the CSB it is loaded once and reused every iteration; when it
//! does not, every iteration re-streams it from HBM (the CAPE32k vs
//! CAPE131k cliff behind kmeans' 426x outlier in Fig. 11).

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{AluOp, Program, Reg, VAluOp, VReg};
use cape_mem::MainMemory;

use super::map::{ACC, AUX, OUT, SRC1, SRC2};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// K-means over `n` points, `k` clusters, a fixed number of iterations.
#[derive(Debug, Clone, Copy)]
pub struct Kmeans {
    /// Point count.
    pub n: usize,
    /// Cluster count.
    pub k: usize,
    /// Fixed iteration count (both implementations run exactly this
    /// many, for determinism).
    pub iters: usize,
}

impl Kmeans {
    fn inputs(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let (xs, ys, _) = gen::gaussian_clusters(self.n, self.k, 111);
        // Initial centroids: the first k points (shared by both sides).
        let mut init = Vec::with_capacity(2 * self.k);
        for c in 0..self.k {
            init.push(xs[c]);
            init.push(ys[c]);
        }
        (xs, ys, init)
    }

    fn out_words(&self) -> usize {
        3 * self.k // final (cx, cy) pairs + per-cluster counts
    }

    /// Emits the per-strip assignment + accumulation body (points in
    /// v1/v2, centroids at AUX, sums/counts at ACC). `tag` makes labels
    /// unique between the resident and streaming variants.
    fn assign_and_accumulate(
        p: &mut cape_isa::ProgramBuilder,
        sumy_base: i64,
        cnt_base: i64,
        tag: &str,
    ) {
        p.li(Reg::A5, i64::from(u32::MAX >> 1));
        p.vmv_vx(VReg::V10, Reg::A5); // best distance
        p.vmv_vx(VReg::V11, Reg::ZERO); // best index
        p.li(Reg::S4, 0); // centroid c
        p.li(Reg::S5, AUX);
        p.label(format!("{tag}_assign"));
        p.lw(Reg::S10, 0, Reg::S5); // cx
        p.lw(Reg::S11, 4, Reg::S5); // cy
        p.vop_vx(VAluOp::Sub, VReg::V3, VReg::V1, Reg::S10);
        p.vmul_vv(VReg::V4, VReg::V3, VReg::V3);
        p.vop_vx(VAluOp::Sub, VReg::V5, VReg::V2, Reg::S11);
        p.vmul_vv(VReg::V6, VReg::V5, VReg::V5);
        p.vadd_vv(VReg::V7, VReg::V4, VReg::V6); // squared distance
        p.vmsltu_vv(VReg::V0, VReg::V7, VReg::V10);
        p.vmerge(VReg::V10, VReg::V10, VReg::V7); // best = m ? d : best
        p.vmv_vx(VReg::V12, Reg::S4);
        p.vmerge(VReg::V11, VReg::V11, VReg::V12);
        p.addi(Reg::S4, Reg::S4, 1);
        p.addi(Reg::S5, Reg::S5, 8);
        p.blt(Reg::S4, Reg::S3, format!("{tag}_assign"));
        p.li(Reg::S4, 0);
        p.label(format!("{tag}_accum"));
        p.vmseq_vx(VReg::V0, VReg::V11, Reg::S4);
        p.vcpop(Reg::T3, VReg::V0);
        p.slli(Reg::T4, Reg::S4, 2);
        p.li(Reg::T5, cnt_base);
        p.add(Reg::T4, Reg::T4, Reg::T5);
        p.lw(Reg::T6, 0, Reg::T4);
        p.add(Reg::T6, Reg::T6, Reg::T3);
        p.sw(Reg::T6, 0, Reg::T4);
        p.vmv_vx(VReg::V13, Reg::ZERO);
        p.vmerge(VReg::V14, VReg::V13, VReg::V1); // x where assigned
        p.vredsum(VReg::V15, VReg::V14, VReg::V13);
        p.vmv_xs(Reg::T3, VReg::V15);
        p.slli(Reg::T4, Reg::S4, 2);
        p.li(Reg::T5, ACC);
        p.add(Reg::T4, Reg::T4, Reg::T5);
        p.lw(Reg::T6, 0, Reg::T4);
        p.add(Reg::T6, Reg::T6, Reg::T3);
        p.sw(Reg::T6, 0, Reg::T4);
        p.vmerge(VReg::V14, VReg::V13, VReg::V2); // y where assigned
        p.vredsum(VReg::V15, VReg::V14, VReg::V13);
        p.vmv_xs(Reg::T3, VReg::V15);
        p.slli(Reg::T4, Reg::S4, 2);
        p.li(Reg::T5, sumy_base);
        p.add(Reg::T4, Reg::T4, Reg::T5);
        p.lw(Reg::T6, 0, Reg::T4);
        p.add(Reg::T6, Reg::T6, Reg::T3);
        p.sw(Reg::T6, 0, Reg::T4);
        p.addi(Reg::S4, Reg::S4, 1);
        p.blt(Reg::S4, Reg::S3, format!("{tag}_accum"));
    }

    /// Emits the centroid-update loop (the cluster count is already in
    /// register S3).
    fn update_centroids(
        p: &mut cape_isa::ProgramBuilder,
        sumy_base: i64,
        cnt_base: i64,
        tag: &str,
    ) {
        p.li(Reg::S4, 0);
        p.label(format!("{tag}_update"));
        p.slli(Reg::T4, Reg::S4, 2);
        p.li(Reg::T5, cnt_base);
        p.add(Reg::T6, Reg::T4, Reg::T5);
        p.lw(Reg::T3, 0, Reg::T6); // count
        p.beqz(Reg::T3, format!("{tag}_skip_update"));
        p.li(Reg::T5, ACC);
        p.add(Reg::T6, Reg::T4, Reg::T5);
        p.lw(Reg::T2, 0, Reg::T6);
        p.op(AluOp::Divu, Reg::T2, Reg::T2, Reg::T3);
        p.slli(Reg::T6, Reg::S4, 3);
        p.li(Reg::T5, AUX);
        p.add(Reg::T6, Reg::T6, Reg::T5);
        p.sw(Reg::T2, 0, Reg::T6);
        p.li(Reg::T5, sumy_base);
        p.add(Reg::A0, Reg::T4, Reg::T5);
        p.lw(Reg::T2, 0, Reg::A0);
        p.op(AluOp::Divu, Reg::T2, Reg::T2, Reg::T3);
        p.sw(Reg::T2, 4, Reg::T6);
        p.label(format!("{tag}_skip_update"));
        p.addi(Reg::S4, Reg::S4, 1);
        p.blt(Reg::S4, Reg::S3, format!("{tag}_update"));
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let (xs, ys, init) = self.inputs();
        mem.write_u32_slice(SRC1 as u64, &xs);
        mem.write_u32_slice(SRC2 as u64, &ys);
        mem.write_u32_slice(AUX as u64, &init);
        let k = self.k as i64;
        let sumy_base = ACC + 4 * k;
        let cnt_base = ACC + 8 * k;
        let mut p = Program::builder();
        p.li(Reg::S3, k);

        // Runtime dispatch on the granted vector length (the VLA pattern
        // of Section V-F): if the whole dataset fits the CSB, load it
        // once and reuse it across iterations — the capacity effect
        // behind the paper's kmeans cliff at CAPE131k.
        p.li(Reg::T0, self.n as i64);
        p.vsetvli(Reg::T1, Reg::T0);
        p.blt(Reg::T1, Reg::T0, "streaming");

        // ---- resident variant: points live in v1/v2 for the whole run.
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, SRC2);
        p.vle32(VReg::V1, Reg::S1);
        p.vle32(VReg::V2, Reg::S2);
        p.li(Reg::S7, self.iters as i64);
        p.label("r_iter");
        p.li(Reg::T3, 0);
        p.li(Reg::T4, 3 * k);
        p.li(Reg::T5, ACC);
        p.label("r_zacc");
        p.sw(Reg::ZERO, 0, Reg::T5);
        p.addi(Reg::T5, Reg::T5, 4);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::T4, "r_zacc");
        Self::assign_and_accumulate(&mut p, sumy_base, cnt_base, "r");
        Self::update_centroids(&mut p, sumy_base, cnt_base, "r");
        p.addi(Reg::S7, Reg::S7, -1);
        p.bnez(Reg::S7, "r_iter");
        p.j("emit");

        // ---- streaming variant: reload the points every iteration.
        p.label("streaming");
        p.li(Reg::S7, self.iters as i64);
        p.label("iter");
        p.li(Reg::T3, 0);
        p.li(Reg::T4, 3 * k);
        p.li(Reg::T5, ACC);
        p.label("zacc");
        p.sw(Reg::ZERO, 0, Reg::T5);
        p.addi(Reg::T5, Reg::T5, 4);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::T4, "zacc");
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, SRC2);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1); // x
        p.vle32(VReg::V2, Reg::S2); // y
        Self::assign_and_accumulate(&mut p, sumy_base, cnt_base, "s");
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.add(Reg::S2, Reg::S2, Reg::T1);
        p.bnez(Reg::S0, "strip");
        Self::update_centroids(&mut p, sumy_base, cnt_base, "s");
        p.addi(Reg::S7, Reg::S7, -1);
        p.bnez(Reg::S7, "iter");

        // ---- emit centroids then counts.
        p.label("emit");
        p.li(Reg::T3, 0);
        p.li(Reg::T4, 2 * k);
        p.li(Reg::T5, AUX);
        p.li(Reg::T6, OUT);
        p.label("emit_c");
        p.lw(Reg::A0, 0, Reg::T5);
        p.sw(Reg::A0, 0, Reg::T6);
        p.addi(Reg::T5, Reg::T5, 4);
        p.addi(Reg::T6, Reg::T6, 4);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::T4, "emit_c");
        p.li(Reg::T3, 0);
        p.li(Reg::T5, cnt_base);
        p.label("emit_n");
        p.lw(Reg::A0, 0, Reg::T5);
        p.sw(Reg::A0, 0, Reg::T6);
        p.addi(Reg::T5, Reg::T5, 4);
        p.addi(Reg::T6, Reg::T6, 4);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::S3, "emit_n");
        p.halt();
        p.build().expect("kmeans program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.out_words()))
    }

    fn run_baseline(&self) -> BaselineRun {
        let (xs, ys, init) = self.inputs();
        let (n, k) = (self.n, self.k);
        let mut cent = init;
        let mut core = OooCore::table3();
        let mut counts = vec![0u32; k];
        for _ in 0..self.iters {
            let mut sumx = vec![0u32; k];
            let mut sumy = vec![0u32; k];
            counts = vec![0u32; k];
            for i in 0..n {
                core.load(SRC1 as u64 + (i as u64) * 4);
                core.load(SRC2 as u64 + (i as u64) * 4);
                let mut best = u32::MAX >> 1;
                let mut best_c = 0usize;
                for c in 0..k {
                    core.load(AUX as u64 + (c as u64) * 8);
                    core.load(AUX as u64 + (c as u64) * 8 + 4);
                    core.op(4); // two subs, add, compare
                    core.mul(2);
                    core.branch(1);
                    let dx = xs[i].wrapping_sub(cent[2 * c]);
                    let dy = ys[i].wrapping_sub(cent[2 * c + 1]);
                    let d = dx.wrapping_mul(dx).wrapping_add(dy.wrapping_mul(dy));
                    if d < best {
                        best = d;
                        best_c = c;
                    }
                }
                core.op(3);
                core.branch(1);
                sumx[best_c] = sumx[best_c].wrapping_add(xs[i]);
                sumy[best_c] = sumy[best_c].wrapping_add(ys[i]);
                counts[best_c] += 1;
            }
            for c in 0..k {
                core.op(2);
                core.branch(1);
                if let Some(cx) = sumx[c].checked_div(counts[c]) {
                    cent[2 * c] = cx;
                    cent[2 * c + 1] = sumy[c] / counts[c];
                }
                core.store(AUX as u64 + (c as u64) * 8);
                core.store(AUX as u64 + (c as u64) * 8 + 4);
            }
        }
        let mut out = cent.clone();
        out.extend_from_slice(&counts);
        let point_iters = (n * k * self.iters) as u64;
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: 5 * point_iters,
                vec_mul_ops: 2 * point_iters,
                vec_red_ops: 2 * (n * self.iters) as u64,
                scalar_ops: (k * self.iters * 4) as u64,
            },
            parallel_fraction: 0.98,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_clusterings_match_streaming() {
        // 240 points on 128 lanes: the program takes the streaming path.
        let w = Kmeans {
            n: 240,
            k: 3,
            iters: 3,
        };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn cape_and_baseline_clusterings_match_resident() {
        // 100 points fit the 128-lane CSB: the resident path runs, with
        // identical results and less memory traffic per iteration.
        let w = Kmeans {
            n: 100,
            k: 3,
            iters: 3,
        };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
        let streaming = run_cape(&w, &CapeConfig::tiny(2)); // 64 lanes
        assert_eq!(streaming.digest, cape.digest);
        assert!(
            cape.report.hbm_bytes_read < streaming.report.hbm_bytes_read,
            "resident path must load the dataset once"
        );
    }

    #[test]
    fn every_point_is_assigned() {
        let w = Kmeans {
            n: 200,
            k: 4,
            iters: 2,
        };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(4));
        machine.run(&prog, &mut mem).unwrap();
        let out = mem.read_u32_slice(OUT as u64, w.out_words());
        let total: u32 = out[2 * w.k..].iter().sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn centroids_land_near_cluster_centers() {
        let w = Kmeans {
            n: 600,
            k: 2,
            iters: 6,
        };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(8));
        machine.run(&prog, &mut mem).unwrap();
        let (_, _, _init) = w.inputs();
        let (_, _, truth) = gen::gaussian_clusters(600, 2, 111);
        let out = mem.read_u32_slice(OUT as u64, 4);
        // Each recovered centroid should be within the cluster spread of
        // some true center.
        for c in 0..2 {
            let (cx, cy) = (i64::from(out[2 * c]), i64::from(out[2 * c + 1]));
            let near = truth.iter().any(|&(tx, ty)| {
                (cx - i64::from(tx)).abs() < 200 && (cy - i64::from(ty)).abs() < 200
            });
            assert!(near, "centroid {c} at ({cx},{cy}) far from {truth:?}");
        }
    }
}

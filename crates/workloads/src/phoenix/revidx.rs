//! Reverse index: which documents contain which vocabulary words.
//!
//! The corpus is a flat token array partitioned into fixed-length
//! documents. The CAPE version searches every word over a full strip at
//! once, then walks the per-document windows (the reconfigurable active
//! window of Section V-F) to test membership — a *serialized*
//! post-processing pass per (word, document) pair, which is exactly the
//! scaling bottleneck the paper attributes to this application.

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{AluOp, Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// Build a `vocab x docs` membership matrix over a synthetic corpus.
///
/// `words_per_doc` must be a multiple of 32 (documents then never
/// straddle a strip boundary, since `MAX_VL` is a multiple of 32).
#[derive(Debug, Clone, Copy)]
pub struct ReverseIndex {
    /// Number of documents.
    pub docs: usize,
    /// Tokens per document.
    pub words_per_doc: usize,
    /// Vocabulary words to index (ids `0..vocab`).
    pub vocab: usize,
}

impl ReverseIndex {
    fn input(&self) -> Vec<u32> {
        gen::zipf_words(self.docs * self.words_per_doc, 512.max(self.vocab), 131)
    }
}

impl Workload for ReverseIndex {
    fn name(&self) -> &'static str {
        "revidx"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        assert_eq!(
            self.words_per_doc % 32,
            0,
            "documents must be strip-alignable (multiple of 32 tokens)"
        );
        mem.write_u32_slice(SRC1 as u64, &self.input());
        let total = (self.docs * self.words_per_doc) as i64;
        let l = self.words_per_doc as i64;
        let mut p = Program::builder();
        p.li(Reg::S0, total); // remaining tokens
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, 0); // base document index of this strip
        p.li(Reg::S3, l);
        p.li(Reg::S11, self.vocab as i64);
        p.li(Reg::A6, self.docs as i64);
        p.label("strip");
        // Whole documents only: vl = docs_this_strip * L.
        p.vsetvli(Reg::T0, Reg::S0);
        p.op(AluOp::Divu, Reg::S8, Reg::T0, Reg::S3); // docs this strip
        p.mul(Reg::T3, Reg::S8, Reg::S3); // tokens used
        p.vsetvli(Reg::T0, Reg::T3);
        p.vle32(VReg::V1, Reg::S1);
        p.li(Reg::S4, 0); // word id
        p.label("word");
        p.vsetvli(Reg::T6, Reg::T3); // full strip window
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::S4);
        p.li(Reg::S5, 0); // document within strip
        p.label("doc");
        // Window the document: [d*L, (d+1)*L).
        p.addi(Reg::T4, Reg::S5, 1);
        p.mul(Reg::T4, Reg::T4, Reg::S3);
        p.vsetvli(Reg::T5, Reg::T4);
        p.mul(Reg::T5, Reg::S5, Reg::S3);
        p.vsetstart(Reg::T5);
        p.vcpop(Reg::T4, VReg::V2);
        p.op(AluOp::Sltu, Reg::T4, Reg::ZERO, Reg::T4); // contains? 0/1
                                                        // OUT[word * docs + (base + d)]
        p.mul(Reg::T5, Reg::S4, Reg::A6);
        p.add(Reg::T5, Reg::T5, Reg::S2);
        p.add(Reg::T5, Reg::T5, Reg::S5);
        p.slli(Reg::T5, Reg::T5, 2);
        p.li(Reg::T6, OUT);
        p.add(Reg::T5, Reg::T5, Reg::T6);
        p.sw(Reg::T4, 0, Reg::T5);
        p.addi(Reg::S5, Reg::S5, 1);
        p.blt(Reg::S5, Reg::S8, "doc");
        p.addi(Reg::S4, Reg::S4, 1);
        p.blt(Reg::S4, Reg::S11, "word");
        p.sub(Reg::S0, Reg::S0, Reg::T3);
        p.slli(Reg::T1, Reg::T3, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.add(Reg::S2, Reg::S2, Reg::S8);
        p.bnez(Reg::S0, "strip");
        p.halt();
        p.build().expect("revidx program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.vocab * self.docs))
    }

    fn run_baseline(&self) -> BaselineRun {
        let corpus = self.input();
        let mut core = OooCore::table3();
        let mut matrix = vec![0u32; self.vocab * self.docs];
        // One corpus pass; membership bits set per token.
        for (i, &w) in corpus.iter().enumerate() {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.op(2);
            core.branch(2);
            if (w as usize) < self.vocab {
                let d = i / self.words_per_doc;
                let slot = w as usize * self.docs + d;
                core.rmw(OUT as u64 + (slot as u64) * 4);
                matrix[slot] = 1;
            }
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(matrix),
            simd: SimdProfile {
                vec_ops: corpus.len() as u64,
                // The index updates serialize on the shared table.
                scalar_ops: 2 * corpus.len() as u64,
                ..Default::default()
            },
            parallel_fraction: 0.88,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_indexes_match() {
        let w = ReverseIndex {
            docs: 6,
            words_per_doc: 32,
            vocab: 6,
        };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn frequent_words_appear_in_every_document() {
        let w = ReverseIndex {
            docs: 4,
            words_per_doc: 64,
            vocab: 4,
        };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(4));
        machine.run(&prog, &mut mem).unwrap();
        // Word 0 is Zipf-dominant: present in all 4 documents.
        let row = mem.read_u32_slice(OUT as u64, 4);
        assert_eq!(row, vec![1, 1, 1, 1]);
    }
}

//! The Phoenix application suite (Section VI-E of the paper), rebuilt as
//! CAPE vector programs plus instrumented baseline kernels.
//!
//! The eight applications — matrix multiply, PCA, linear regression,
//! histogram, k-means, word count, reverse index, string match — are the
//! ones Fig. 11/12 evaluate (Ranger et al.'s MapReduce suite). Inputs
//! come from the deterministic generators of [`crate::gen`].

mod hist;
mod kmeans;
mod lreg;
mod matmul;
mod pca;
mod revidx;
mod strmatch;
mod wrdcnt;

pub use hist::Histogram;
pub use kmeans::Kmeans;
pub use lreg::LinearRegression;
pub use matmul::Matmul;
pub use pca::Pca;
pub use revidx::ReverseIndex;
pub use strmatch::StringMatch;
pub use wrdcnt::WordCount;

use crate::harness::Workload;

/// Shared memory map for the Phoenix programs.
pub(crate) mod map {
    /// First input array.
    pub const SRC1: i64 = 0x0001_0000;
    /// Second input array.
    pub const SRC2: i64 = 0x0100_0000;
    /// Auxiliary input (centroids, needles, …).
    pub const AUX: i64 = 0x0200_0000;
    /// Scratch accumulators.
    pub const ACC: i64 = 0x0280_0000;
    /// Output region.
    pub const OUT: i64 = 0x0300_0000;
}

/// The full Phoenix suite at its default (laptop-runnable) scales.
///
/// The k-means point count is chosen so the dataset fits in CAPE131k's
/// CSB but not CAPE32k's — the capacity effect behind the paper's 426x
/// outlier.
pub fn suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Matmul { n: 96 }),
        Box::new(Pca {
            rows: 24_576,
            dims: 6,
        }),
        Box::new(LinearRegression { n: 262_144 }),
        Box::new(Histogram { n: 262_144 }),
        Box::new(Kmeans {
            n: 60_000,
            k: 4,
            iters: 5,
        }),
        Box::new(WordCount {
            n: 220_000,
            vocab: 512,
            top: 24,
        }),
        Box::new(ReverseIndex {
            docs: 192,
            words_per_doc: 512,
            vocab: 24,
        }),
        Box::new(StringMatch {
            n: 220_000,
            needles: 12,
        }),
    ]
}

/// Smaller versions of every application, for tests.
pub fn tiny_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Matmul { n: 12 }),
        Box::new(Pca { rows: 300, dims: 3 }),
        Box::new(LinearRegression { n: 400 }),
        Box::new(Histogram { n: 500 }),
        Box::new(Kmeans {
            n: 240,
            k: 3,
            iters: 3,
        }),
        Box::new(WordCount {
            n: 600,
            vocab: 64,
            top: 8,
        }),
        Box::new(ReverseIndex {
            docs: 6,
            words_per_doc: 32,
            vocab: 6,
        }),
        Box::new(StringMatch { n: 500, needles: 4 }),
    ]
}

//! Principal component analysis, Phoenix-style: column means followed by
//! the covariance matrix.
//!
//! The mean of each column must be known before its covariance terms can
//! be computed — the inter-iteration dependence that (per Section VI-E)
//! prevents the replica-load trick from boosting vector utilization, so
//! `pca`'s speedup stays flat from CAPE32k to CAPE131k.

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{AluOp, Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// PCA over a `rows x dims` matrix stored column-major.
#[derive(Debug, Clone, Copy)]
pub struct Pca {
    /// Observations per column.
    pub rows: usize,
    /// Number of columns (dimensions).
    pub dims: usize,
}

impl Pca {
    fn input(&self) -> Vec<u32> {
        gen::matrix(self.dims, self.rows, 1024, 101) // column-major: dims rows of `rows` values
    }

    fn out_words(&self) -> usize {
        self.dims + self.dims * (self.dims + 1) / 2
    }
}

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        mem.write_u32_slice(SRC1 as u64, &self.input());
        let rows = self.rows as i64;
        let dims = self.dims as i64;
        let cov_base = OUT + dims * 4;
        let mut p = Program::builder();
        p.li(Reg::S3, dims);
        p.li(Reg::S4, rows);
        // ----- pass 1: column means -----
        p.li(Reg::S5, 0); // d
        p.label("mean_d");
        p.mul(Reg::T4, Reg::S5, Reg::S4);
        p.slli(Reg::T4, Reg::T4, 2);
        p.li(Reg::T5, SRC1);
        p.add(Reg::S1, Reg::T5, Reg::T4);
        p.mv(Reg::S0, Reg::S4);
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V6, Reg::ZERO);
        p.label("mean_strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vredsum(VReg::V6, VReg::V1, VReg::V6);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.bnez(Reg::S0, "mean_strip");
        p.vmv_xs(Reg::T2, VReg::V6);
        p.op(AluOp::Divu, Reg::T2, Reg::T2, Reg::S4);
        p.slli(Reg::T4, Reg::S5, 2);
        p.li(Reg::T5, OUT);
        p.add(Reg::T4, Reg::T5, Reg::T4);
        p.sw(Reg::T2, 0, Reg::T4);
        p.addi(Reg::S5, Reg::S5, 1);
        p.blt(Reg::S5, Reg::S3, "mean_d");
        // ----- pass 2: covariance upper triangle -----
        p.li(Reg::S5, 0); // d1
        p.li(Reg::S7, 0); // output slot
        p.label("cov_d1");
        p.mv(Reg::S6, Reg::S5); // d2
        p.label("cov_d2");
        p.slli(Reg::T4, Reg::S5, 2);
        p.li(Reg::T5, OUT);
        p.add(Reg::T4, Reg::T5, Reg::T4);
        p.lw(Reg::S10, 0, Reg::T4); // mean(d1)
        p.slli(Reg::T4, Reg::S6, 2);
        p.add(Reg::T4, Reg::T5, Reg::T4);
        p.lw(Reg::S11, 0, Reg::T4); // mean(d2)
        p.mul(Reg::T4, Reg::S5, Reg::S4);
        p.slli(Reg::T4, Reg::T4, 2);
        p.li(Reg::T5, SRC1);
        p.add(Reg::S1, Reg::T5, Reg::T4);
        p.mul(Reg::T4, Reg::S6, Reg::S4);
        p.slli(Reg::T4, Reg::T4, 2);
        p.add(Reg::S2, Reg::T5, Reg::T4);
        p.mv(Reg::S0, Reg::S4);
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V6, Reg::ZERO);
        p.label("cov_strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vop_vx(cape_isa::VAluOp::Sub, VReg::V1, VReg::V1, Reg::S10);
        p.vle32(VReg::V2, Reg::S2);
        p.vop_vx(cape_isa::VAluOp::Sub, VReg::V2, VReg::V2, Reg::S11);
        p.vmul_vv(VReg::V3, VReg::V1, VReg::V2);
        p.vredsum(VReg::V6, VReg::V3, VReg::V6);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.add(Reg::S2, Reg::S2, Reg::T1);
        p.bnez(Reg::S0, "cov_strip");
        p.vmv_xs(Reg::T2, VReg::V6);
        p.slli(Reg::T4, Reg::S7, 2);
        p.li(Reg::T5, cov_base);
        p.add(Reg::T4, Reg::T5, Reg::T4);
        p.sw(Reg::T2, 0, Reg::T4);
        p.addi(Reg::S7, Reg::S7, 1);
        p.addi(Reg::S6, Reg::S6, 1);
        p.blt(Reg::S6, Reg::S3, "cov_d2");
        p.addi(Reg::S5, Reg::S5, 1);
        p.blt(Reg::S5, Reg::S3, "cov_d1");
        p.halt();
        p.build().expect("pca program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.out_words()))
    }

    fn run_baseline(&self) -> BaselineRun {
        let data = self.input();
        let (rows, dims) = (self.rows, self.dims);
        let col = |d: usize| &data[d * rows..(d + 1) * rows];
        let mut core = OooCore::table3();
        let mut out = Vec::with_capacity(self.out_words());
        // Means.
        let mut means = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut sum = 0u32;
            for (i, &x) in col(d).iter().enumerate() {
                core.load(SRC1 as u64 + ((d * rows + i) as u64) * 4);
                core.op(1);
                core.branch(1);
                sum = sum.wrapping_add(x);
            }
            let mean = sum / rows as u32;
            core.op(1);
            core.store(OUT as u64 + (d as u64) * 4);
            means.push(mean);
            out.push(mean);
        }
        // Covariances (wrapping fixed-point, identical to the RVV math).
        for d1 in 0..dims {
            for d2 in d1..dims {
                let mut acc = 0u32;
                for i in 0..rows {
                    core.load(SRC1 as u64 + ((d1 * rows + i) as u64) * 4);
                    core.load(SRC1 as u64 + ((d2 * rows + i) as u64) * 4);
                    core.op(3);
                    core.mul(1);
                    core.branch(1);
                    let a = col(d1)[i].wrapping_sub(means[d1]);
                    let b = col(d2)[i].wrapping_sub(means[d2]);
                    acc = acc.wrapping_add(a.wrapping_mul(b));
                }
                core.store(OUT as u64);
                out.push(acc);
            }
        }
        let pair_rows = (dims * (dims + 1) / 2 * rows) as u64;
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: 2 * pair_rows,
                vec_mul_ops: pair_rows,
                vec_red_ops: pair_rows + (dims * rows) as u64,
                scalar_ops: (dims * dims) as u64,
            },
            parallel_fraction: 0.97,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_covariances_match() {
        let w = Pca { rows: 300, dims: 3 };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn variance_of_constant_column_is_zero() {
        // A 1-D PCA over a constant column: covariance must be 0.
        let w = Pca { rows: 64, dims: 1 };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        // Overwrite the generated column with a constant.
        mem.write_u32_slice(SRC1 as u64, &vec![7u32; 64]);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(2));
        machine.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u32(OUT as u64), 7); // mean
        assert_eq!(mem.read_u32((OUT + 4) as u64), 0); // variance
    }
}

//! Histogram: bucket an image's pixel values.
//!
//! The thread-parallel baseline updates a shared 256-entry table per
//! pixel; the CAPE version turns the algorithm inside out and issues a
//! brute-force *search* for every possible pixel value (Section II calls
//! this out explicitly, reporting a 13x win for exactly this trick).

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

const BUCKETS: usize = 256;

/// The histogram workload over `n` pixels.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    /// Pixel count.
    pub n: usize,
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "hist"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        mem.write_u32_slice(SRC1 as u64, &gen::image(self.n, 71));
        let mut p = Program::builder();
        p.li(Reg::S10, OUT);
        p.li(Reg::S11, BUCKETS as i64);
        // Zero the histogram.
        p.li(Reg::T3, 0);
        p.label("zero");
        p.slli(Reg::T5, Reg::T3, 2);
        p.add(Reg::T5, Reg::T5, Reg::S10);
        p.sw(Reg::ZERO, 0, Reg::T5);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::S11, "zero");
        // Strip-mine the image; search each bucket value per strip.
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.li(Reg::T3, 0);
        p.label("bucket");
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::T3);
        p.vcpop(Reg::T4, VReg::V2);
        p.slli(Reg::T5, Reg::T3, 2);
        p.add(Reg::T5, Reg::T5, Reg::S10);
        p.lw(Reg::T6, 0, Reg::T5);
        p.add(Reg::T6, Reg::T6, Reg::T4);
        p.sw(Reg::T6, 0, Reg::T5);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::S11, "bucket");
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.bnez(Reg::S0, "strip");
        p.halt();
        p.build().expect("hist program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, BUCKETS))
    }

    fn run_baseline(&self) -> BaselineRun {
        let pixels = gen::image(self.n, 71);
        let mut core = OooCore::table3();
        let mut hist = vec![0u32; BUCKETS];
        for (i, &px) in pixels.iter().enumerate() {
            core.load(SRC1 as u64 + (i as u64) * 4);
            // Index computation + dependent table read-modify-write.
            core.op(1);
            core.rmw(OUT as u64 + u64::from(px) * 4);
            core.branch(1);
            hist[px as usize] += 1;
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(hist),
            // The table update has a loop-carried dependence per bucket;
            // SIMD helps only the value compute, so most work is scalar.
            simd: SimdProfile {
                vec_ops: self.n as u64,
                scalar_ops: 2 * self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.97,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_histograms_match() {
        let w = Histogram { n: 900 };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        let base = w.run_baseline();
        assert_eq!(cape.digest, base.digest);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let w = Histogram { n: 700 };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(4));
        machine.run(&prog, &mut mem).unwrap();
        let total: u32 = mem.read_u32_slice(OUT as u64, BUCKETS).iter().sum();
        assert_eq!(total, 700);
    }
}

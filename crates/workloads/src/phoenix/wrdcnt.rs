//! Word count over a Zipf-distributed token stream.
//!
//! The input "file" must first be traversed sequentially (the parsing
//! pass Phoenix performs) — that scalar tail, plus the per-word count
//! table, is what caps this application's scaling in the paper (its
//! speedup *drops* from CAPE32k to CAPE131k). Counting itself is CAPE
//! gold: one bulk search plus a tree popcount per (strip, word).

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// Count the `top` most-frequent word ids in a stream of `n` tokens.
#[derive(Debug, Clone, Copy)]
pub struct WordCount {
    /// Token count.
    pub n: usize,
    /// Vocabulary size of the generator.
    pub vocab: usize,
    /// How many (low, i.e. frequent) word ids to count.
    pub top: usize,
}

impl WordCount {
    fn input(&self) -> Vec<u32> {
        gen::zipf_words(self.n, self.vocab, 121)
    }
}

impl Workload for WordCount {
    fn name(&self) -> &'static str {
        "wrdcnt"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        mem.write_u32_slice(SRC1 as u64, &self.input());
        let top = self.top as i64;
        let mut p = Program::builder();
        // ----- sequential traversal ("parsing"), a scalar pass -----
        // Unrolled 4x, as a compiler would emit it; the tail is handled
        // by choosing n as a multiple of 4 (the generator guarantees it).
        assert_eq!(self.n % 4, 0, "token count must be a multiple of 4");
        p.li(Reg::S0, (self.n / 4) as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S4, 0); // checksum
        p.label("parse");
        p.lw(Reg::T2, 0, Reg::S1);
        p.add(Reg::S4, Reg::S4, Reg::T2);
        p.lw(Reg::T2, 4, Reg::S1);
        p.add(Reg::S4, Reg::S4, Reg::T2);
        p.lw(Reg::T2, 8, Reg::S1);
        p.add(Reg::S4, Reg::S4, Reg::T2);
        p.lw(Reg::T2, 12, Reg::S1);
        p.add(Reg::S4, Reg::S4, Reg::T2);
        p.addi(Reg::S1, Reg::S1, 16);
        p.addi(Reg::S0, Reg::S0, -1);
        p.bnez(Reg::S0, "parse");
        // ----- zero the count table -----
        p.li(Reg::T3, 0);
        p.li(Reg::T5, OUT);
        p.label("zcnt");
        p.sw(Reg::ZERO, 0, Reg::T5);
        p.addi(Reg::T5, Reg::T5, 4);
        p.addi(Reg::T3, Reg::T3, 1);
        p.li(Reg::T4, top);
        p.blt(Reg::T3, Reg::T4, "zcnt");
        // ----- vector counting pass -----
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S11, top);
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.li(Reg::T3, 0); // word id
        p.label("word");
        p.vmseq_vx(VReg::V2, VReg::V1, Reg::T3);
        p.vcpop(Reg::T4, VReg::V2);
        p.slli(Reg::T5, Reg::T3, 2);
        p.li(Reg::T6, OUT);
        p.add(Reg::T5, Reg::T5, Reg::T6);
        p.lw(Reg::T6, 0, Reg::T5);
        p.add(Reg::T6, Reg::T6, Reg::T4);
        p.sw(Reg::T6, 0, Reg::T5);
        p.addi(Reg::T3, Reg::T3, 1);
        p.blt(Reg::T3, Reg::S11, "word");
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.bnez(Reg::S0, "strip");
        // Store the traversal checksum after the counts.
        p.li(Reg::T5, OUT + 4 * top);
        p.sw(Reg::S4, 0, Reg::T5);
        p.halt();
        p.build().expect("wrdcnt program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, self.top + 1))
    }

    fn run_baseline(&self) -> BaselineRun {
        let words = self.input();
        let mut core = OooCore::table3();
        let mut counts = vec![0u32; self.top];
        let mut checksum = 0u32;
        for (i, &w) in words.iter().enumerate() {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.op(5); // checksum + word hashing + bound check
            core.branch(2);
            checksum = checksum.wrapping_add(w);
            if (w as usize) < self.top {
                core.rmw(OUT as u64 + u64::from(w) * 4);
                counts[w as usize] += 1;
            }
        }
        let mut out = counts;
        out.push(checksum);
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(out),
            simd: SimdProfile {
                vec_ops: self.n as u64,
                vec_red_ops: self.n as u64,
                // Parsing + table updates stay scalar.
                scalar_ops: 2 * self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.90,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_counts_match() {
        let w = WordCount {
            n: 600,
            vocab: 64,
            top: 8,
        };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        assert_eq!(cape.digest, w.run_baseline().digest);
    }

    #[test]
    fn zipf_head_dominates_counts() {
        let w = WordCount {
            n: 2000,
            vocab: 64,
            top: 8,
        };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(4));
        machine.run(&prog, &mut mem).unwrap();
        let counts = mem.read_u32_slice(OUT as u64, 8);
        assert!(counts[0] > counts[7] * 3, "head {counts:?}");
    }
}

//! Linear regression: least-squares fit over fixed-point points.
//!
//! The vector version is four streaming reductions (`sum x`, `sum y`,
//! `sum x*x`, `sum x*y`) — the pattern that benefits from CAPE's cheap
//! `vredsum` (Section V-G's "vertical vs. horizontal" discussion).

use cape_baseline::{OooCore, SimdProfile};
use cape_isa::{Program, Reg, VReg};
use cape_mem::MainMemory;

use super::map::{OUT, SRC1, SRC2};
use crate::gen;
use crate::harness::{fnv1a, BaselineRun, Workload};

/// The linear-regression workload over `n` points.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegression {
    /// Point count.
    pub n: usize,
}

impl LinearRegression {
    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        gen::linear_points(self.n, 3, 40, 81)
    }

    /// The model outputs: the four wrapped sums plus the fitted slope in
    /// per-mille fixed point (computed identically on both sides).
    fn outputs(sums: [u32; 4], n: u64) -> Vec<u32> {
        let [sx, sy, sxx, sxy] = sums;
        let n = n as i64;
        let num = n.wrapping_mul(i64::from(sxy)) - i64::from(sx).wrapping_mul(i64::from(sy));
        let den = n.wrapping_mul(i64::from(sxx)) - i64::from(sx).wrapping_mul(i64::from(sx));
        let slope_milli = if den == 0 {
            0
        } else {
            num.wrapping_mul(1000) / den
        };
        vec![sx, sy, sxx, sxy, slope_milli as u32]
    }
}

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "lreg"
    }

    fn cape_setup(&self, mem: &mut MainMemory) -> Program {
        let (xs, ys) = self.inputs();
        mem.write_u32_slice(SRC1 as u64, &xs);
        mem.write_u32_slice(SRC2 as u64, &ys);
        let mut p = Program::builder();
        p.li(Reg::S0, self.n as i64);
        p.li(Reg::S1, SRC1);
        p.li(Reg::S2, SRC2);
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V10, Reg::ZERO); // sum x
        p.vmv_vx(VReg::V11, Reg::ZERO); // sum y
        p.vmv_vx(VReg::V12, Reg::ZERO); // sum x*x
        p.vmv_vx(VReg::V13, Reg::ZERO); // sum x*y
        p.label("strip");
        p.vsetvli(Reg::T0, Reg::S0);
        p.vle32(VReg::V1, Reg::S1);
        p.vle32(VReg::V2, Reg::S2);
        p.vredsum(VReg::V10, VReg::V1, VReg::V10);
        p.vredsum(VReg::V11, VReg::V2, VReg::V11);
        p.vmul_vv(VReg::V3, VReg::V1, VReg::V1);
        p.vredsum(VReg::V12, VReg::V3, VReg::V12);
        p.vmul_vv(VReg::V4, VReg::V1, VReg::V2);
        p.vredsum(VReg::V13, VReg::V4, VReg::V13);
        p.sub(Reg::S0, Reg::S0, Reg::T0);
        p.slli(Reg::T1, Reg::T0, 2);
        p.add(Reg::S1, Reg::S1, Reg::T1);
        p.add(Reg::S2, Reg::S2, Reg::T1);
        p.bnez(Reg::S0, "strip");
        // Store the four sums; the CP computes the slope.
        p.li(Reg::A0, OUT);
        p.vmv_xs(Reg::T2, VReg::V10);
        p.sw(Reg::T2, 0, Reg::A0);
        p.mv(Reg::S4, Reg::T2); // sx
        p.vmv_xs(Reg::T2, VReg::V11);
        p.sw(Reg::T2, 4, Reg::A0);
        p.mv(Reg::S5, Reg::T2); // sy
        p.vmv_xs(Reg::T2, VReg::V12);
        p.sw(Reg::T2, 8, Reg::A0);
        p.mv(Reg::S6, Reg::T2); // sxx
        p.vmv_xs(Reg::T2, VReg::V13);
        p.sw(Reg::T2, 12, Reg::A0);
        p.mv(Reg::S7, Reg::T2); // sxy
                                // slope_milli = (n*sxy - sx*sy) * 1000 / (n*sxx - sx*sx)
        p.li(Reg::T3, self.n as i64);
        p.mul(Reg::T4, Reg::T3, Reg::S7);
        p.mul(Reg::T5, Reg::S4, Reg::S5);
        p.sub(Reg::T4, Reg::T4, Reg::T5); // num
        p.mul(Reg::T5, Reg::T3, Reg::S6);
        p.mul(Reg::T6, Reg::S4, Reg::S4);
        p.sub(Reg::T5, Reg::T5, Reg::T6); // den
        p.li(Reg::T6, 1000);
        p.mul(Reg::T4, Reg::T4, Reg::T6);
        p.op(cape_isa::AluOp::Div, Reg::T4, Reg::T4, Reg::T5);
        p.sw(Reg::T4, 16, Reg::A0);
        p.halt();
        p.build().expect("lreg program")
    }

    fn digest(&self, mem: &MainMemory) -> u64 {
        fnv1a(mem.read_u32_slice(OUT as u64, 5))
    }

    fn run_baseline(&self) -> BaselineRun {
        let (xs, ys) = self.inputs();
        let mut core = OooCore::table3();
        let (mut sx, mut sy, mut sxx, mut sxy) = (0u32, 0u32, 0u32, 0u32);
        for i in 0..self.n {
            core.load(SRC1 as u64 + (i as u64) * 4);
            core.load(SRC2 as u64 + (i as u64) * 4);
            core.mul(2);
            core.op(4);
            core.branch(1);
            sx = sx.wrapping_add(xs[i]);
            sy = sy.wrapping_add(ys[i]);
            sxx = sxx.wrapping_add(xs[i].wrapping_mul(xs[i]));
            sxy = sxy.wrapping_add(xs[i].wrapping_mul(ys[i]));
        }
        core.mul(5);
        core.op(4);
        for w in 0..5 {
            core.store(OUT as u64 + w * 4);
        }
        BaselineRun {
            report: core.finish(),
            digest: fnv1a(Self::outputs([sx, sy, sxx, sxy], self.n as u64)),
            simd: SimdProfile {
                vec_ops: 2 * self.n as u64,
                vec_mul_ops: 2 * self.n as u64,
                vec_red_ops: 4 * self.n as u64,
                ..Default::default()
            },
            parallel_fraction: 0.99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cape;
    use cape_core::CapeConfig;

    #[test]
    fn cape_and_baseline_sums_match() {
        let w = LinearRegression { n: 900 };
        let cape = run_cape(&w, &CapeConfig::tiny(4));
        let base = w.run_baseline();
        assert_eq!(cape.digest, base.digest);
    }

    #[test]
    fn recovered_slope_is_close_to_three() {
        let w = LinearRegression { n: 4000 };
        let mut mem = MainMemory::new();
        let prog = w.cape_setup(&mut mem);
        let mut machine = cape_core::CapeMachine::new(CapeConfig::tiny(8));
        machine.run(&prog, &mut mem).unwrap();
        let slope_milli = mem.read_u32((OUT + 16) as u64) as i32;
        assert!((2900..3100).contains(&slope_milli), "slope {slope_milli}");
    }
}

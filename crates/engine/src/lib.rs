//! `cape-engine`: a multi-tenant batch-scheduling runtime that serves
//! concurrent jobs on one shared [`CapeMachine`](cape_core::CapeMachine).
//!
//! The paper evaluates CAPE one program at a time; a deployed
//! accelerator is a shared resource. This crate adds the serving layer:
//!
//! * **Admission** — jobs ([`JobSpec`]: program + private memory image +
//!   priority/deadline metadata) enter through a bounded queue; when it
//!   is full, [`Engine::submit`] refuses with
//!   [`AdmissionError::QueueFull`] (typed backpressure). Every
//!   instruction is validated through the encoder at the front door.
//! * **Batching** — the scheduler groups jobs whose programs share a
//!   fingerprint (identical static code), so their vector instructions
//!   compile to the same cached VCU microprograms and every lookup
//!   after the first is a cross-tenant cache hit.
//! * **Slicing** — batch members run round-robin, preempted only after
//!   a configurable number of committed vector instructions — always at
//!   a microprogram sync point, with the vector engine drained.
//! * **Context switching** — between tenants the engine saves/restores
//!   the full CSB register file (data, metadata and match state) via
//!   the bulk transposed-I/O path, charging the VMU's context-transfer
//!   cost model per move. A tenant that keeps the machine (sole
//!   survivor of its batch) pays nothing.
//!
//! [`Engine::run`] drains the queue and returns an [`EngineReport`]:
//! per-job [`JobReport`]s (own-clock cycles, per-slice-attributed
//! energy/traffic/cache deltas) plus aggregate throughput, queue-wait
//! percentiles and the cross-tenant program-cache hit rate.
//!
//! # Quick start
//!
//! ```
//! use cape_core::CapeConfig;
//! use cape_engine::{Engine, EngineConfig, JobSpec};
//! use cape_isa::assemble;
//! use cape_mem::MainMemory;
//!
//! let mut engine = Engine::new(EngineConfig::new(CapeConfig::tiny(2)));
//!
//! // Two tenants running the same kernel over different inputs.
//! let program = assemble(
//!     "li t0, 8
//!      vsetvli t1, t0
//!      li a0, 0x1000
//!      vle32.v v1, (a0)
//!      vadd.vv v2, v1, v1
//!      li a1, 0x2000
//!      vse32.v v2, (a1)
//!      halt",
//! )
//! .unwrap();
//! let mut ids = Vec::new();
//! for tenant in 0..2u32 {
//!     let mut mem = MainMemory::new();
//!     let input: Vec<u32> = (0..8).map(|i| i + tenant * 100).collect();
//!     mem.write_u32_slice(0x1000, &input);
//!     let spec = JobSpec::new(format!("tenant{tenant}"), program.clone(), mem);
//!     ids.push(engine.submit(spec).unwrap());
//! }
//!
//! let report = engine.run();
//! assert_eq!(report.completed(), 2);
//! // The second tenant reused the first tenant's compiled microprograms.
//! assert!(report.cross_tenant_hit_rate > 0.0);
//! // Each tenant's outputs are its own.
//! let out = engine.memory(ids[1]).unwrap().read_u32_slice(0x2000, 8);
//! assert_eq!(out, (0..8).map(|i| (i + 100) * 2).collect::<Vec<u32>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod job;
mod report;

pub use engine::{AdmissionError, Engine, EngineConfig, FaultApiError, FaultPolicy};
pub use job::{fingerprint, JobError, JobId, JobReport, JobSpec};
pub use report::{EngineReport, QueueLatency};

//! Aggregate serving metrics for one engine run.

use cape_core::{FaultStats, WindowFlushes};

use crate::job::JobReport;

/// Queue-latency distribution in engine cycles (nearest-rank
/// percentiles over all served jobs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueLatency {
    /// Median queue wait.
    pub p50: u64,
    /// 90th-percentile queue wait.
    pub p90: u64,
    /// 99th-percentile queue wait.
    pub p99: u64,
    /// Worst queue wait.
    pub max: u64,
}

impl QueueLatency {
    /// Computes the distribution from raw per-job waits.
    pub fn from_waits(waits: &[u64]) -> Self {
        if waits.is_empty() {
            return Self::default();
        }
        let mut sorted = waits.to_vec();
        sorted.sort_unstable();
        Self {
            p50: percentile(&sorted, 50),
            p90: percentile(&sorted, 90),
            p99: percentile(&sorted, 99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice.
fn percentile(sorted: &[u64], pct: u32) -> u64 {
    let rank = (pct as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// What one [`Engine::run`](crate::Engine::run) drain accomplished:
/// per-job reports plus the aggregate serving metrics a capacity
/// planner reads (throughput, queueing, context-switch overhead, and
/// how much compilation the shared program cache amortized across
/// tenants).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-job results, in completion order.
    pub jobs: Vec<JobReport>,
    /// Engine cycles from the first admission to the last completion.
    pub total_cycles: u64,
    /// Core frequency for cycle→time conversion.
    pub freq_ghz: f64,
    /// Batches formed (each batch shares one program fingerprint).
    pub batches: u64,
    /// Register-file context transfers performed (saves + restores).
    pub context_switches: u64,
    /// Engine cycles charged to context transfers.
    pub context_switch_cycles: u64,
    /// Queue-wait distribution across jobs.
    pub queue_latency: QueueLatency,
    /// Program-cache hits served by a different tenant's compilation.
    pub cross_tenant_hits: u64,
    /// Fraction of program-cache hits another tenant paid to compile.
    pub cross_tenant_hit_rate: f64,
    /// Overall program-cache hit rate across the run.
    pub cache_hit_rate: f64,
    /// Fused-window cache hits across the run (a window shape replayed
    /// without re-running the fusion pass).
    pub fused_window_hits: u64,
    /// Fused-window cache misses (fusion passes actually run).
    pub fused_window_misses: u64,
    /// Fused windows displaced by LRU eviction.
    pub fused_window_evictions: u64,
    /// Fused-window hits served by a window another tenant built —
    /// fingerprint batching amortizing fusion across jobs.
    pub cross_tenant_window_hits: u64,
    /// Window flushes summed over every served job, by cause — where
    /// the fleet's fusion opportunities went.
    pub window_flushes: WindowFlushes,
    /// Plan-level stores the window compiler retired across all served
    /// jobs' fused windows.
    pub dead_stores_eliminated: u64,
    /// Checkpointed slice re-executions across all jobs (zero outside
    /// fault mode).
    pub retries: u64,
    /// The machine's cumulative fault-layer counters: injections,
    /// detections by tier, attribution, scrubs, quarantines and remaps.
    pub fault: FaultStats,
    /// Spare CSB blocks still unused at the end of the run.
    pub spare_blocks_free: usize,
    /// Physical CSB blocks quarantined over the run.
    pub quarantined_blocks: usize,
}

impl EngineReport {
    /// Wall-clock serving time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.total_cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// Jobs served per millisecond of engine time.
    pub fn jobs_per_ms(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.jobs.len() as f64 / self.time_ms()
        }
    }

    /// Jobs that halted cleanly.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.succeeded()).count()
    }

    /// Jobs admitted with a deadline that missed it.
    pub fn deadline_misses(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.met_deadline() == Some(false))
            .count()
    }

    /// Fraction of total engine cycles spent moving contexts instead of
    /// running jobs.
    pub fn context_switch_overhead(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.context_switch_cycles as f64 / self.total_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let waits: Vec<u64> = (1..=100).collect();
        let q = QueueLatency::from_waits(&waits);
        assert_eq!(q.p50, 50);
        assert_eq!(q.p90, 90);
        assert_eq!(q.p99, 99);
        assert_eq!(q.max, 100);
    }

    #[test]
    fn small_samples_do_not_panic() {
        let q = QueueLatency::from_waits(&[7]);
        assert_eq!((q.p50, q.p90, q.p99, q.max), (7, 7, 7, 7));
        assert_eq!(QueueLatency::from_waits(&[]), QueueLatency::default());
    }
}

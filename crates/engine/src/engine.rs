//! The batch-scheduling engine: admission, batching, slicing and
//! context switching over one shared [`CapeMachine`].

use std::collections::VecDeque;

use cape_core::{CapeConfig, CapeMachine, MachineContext, MachineCounters, RunReport};
use cape_cp::{ControlProcessor, SliceOutcome};
use cape_isa::EncodeError;
use cape_mem::MainMemory;

use crate::job::{fingerprint, JobId, JobReport, JobSpec};
use crate::report::{EngineReport, QueueLatency};

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is at capacity — backpressure; resubmit after
    /// a drain.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The program contains an instruction with no machine encoding
    /// (admission runs every instruction through the encoder so a
    /// malformed job is bounced at the front door, not mid-run).
    InvalidProgram {
        /// Index of the offending instruction.
        index: usize,
        /// The encoder's diagnosis.
        source: EncodeError,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue is full ({capacity} jobs)")
            }
            AdmissionError::InvalidProgram { index, source } => {
                write!(f, "instruction {index} is not encodable: {source}")
            }
            AdmissionError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::InvalidProgram { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The machine the engine serves jobs on.
    pub machine: CapeConfig,
    /// Maximum jobs waiting for service; submissions beyond this bound
    /// are refused with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Vector instructions a job may commit per slice before it is
    /// preempted (always at a microprogram sync point — the vector
    /// engine is drained when the slice ends).
    pub slice_vectors: u64,
    /// Maximum jobs co-scheduled in one batch. Batches are formed from
    /// jobs with identical program fingerprints so they share compiled
    /// microprograms in the VCU cache.
    pub max_batch: usize,
}

impl EngineConfig {
    /// Defaults: a 64-deep queue, 32 vector instructions per slice,
    /// batches of up to 8 same-kernel jobs.
    pub fn new(machine: CapeConfig) -> Self {
        Self {
            machine,
            queue_capacity: 64,
            slice_vectors: 32,
            max_batch: 8,
        }
    }
}

/// A job waiting for service.
#[derive(Debug)]
struct Pending {
    id: u32,
    spec: JobSpec,
    fingerprint: u64,
    admit_cycle: u64,
}

/// A job being served in the current batch.
struct Active {
    id: u32,
    spec: JobSpec,
    fingerprint: u64,
    admit_cycle: u64,
    cp: ControlProcessor,
    ctx: MachineContext,
    acc: MachineCounters,
    start_cycle: Option<u64>,
    finish_cycle: u64,
    slices: u64,
    preemptions: u64,
    done: bool,
    error: Option<String>,
}

/// A served job: its report plus its memory image (outputs).
#[derive(Debug)]
struct Finished {
    report: JobReport,
    mem: MainMemory,
}

/// A multi-tenant serving runtime for one [`CapeMachine`].
///
/// Jobs are admitted through a bounded queue, batched by program
/// fingerprint (identical static code ⇒ shared compiled microprograms),
/// and executed round-robin in slices of
/// [`EngineConfig::slice_vectors`] vector instructions. Preemption only
/// happens at microprogram sync points; between slices of different
/// tenants the engine saves and restores the full CSB register file
/// through the bulk transposed-I/O path, charging
/// [`CapeMachine::context_transfer_cycles`] per transfer.
///
/// The engine clock is virtual: it advances by each slice's CP-cycle
/// delta plus context-transfer costs, giving deterministic queue-wait
/// and throughput figures.
pub struct Engine {
    config: EngineConfig,
    machine: CapeMachine,
    now: u64,
    next_id: u32,
    pending: VecDeque<Pending>,
    finished: Vec<Finished>,
    /// Tenant whose register state currently lives in the CSB; slices
    /// of the resident tenant skip the save/restore round trip.
    resident: Option<u32>,
    batches: u64,
    context_switches: u64,
    context_switch_cycles: u64,
}

impl Engine {
    /// An engine serving a freshly built machine.
    ///
    /// # Panics
    ///
    /// Panics if any of the config's capacities or budgets is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.slice_vectors > 0, "slice budget must be positive");
        assert!(config.max_batch > 0, "batch size must be positive");
        Self {
            machine: CapeMachine::new(config.machine),
            config,
            now: 0,
            next_id: 0,
            pending: VecDeque::new(),
            finished: Vec::new(),
            resident: None,
            batches: 0,
            context_switches: 0,
            context_switch_cycles: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Jobs currently waiting for service.
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Read access to the shared machine (cache statistics, config).
    pub fn machine(&self) -> &CapeMachine {
        &self.machine
    }

    /// Admits a job, or refuses it with typed backpressure.
    ///
    /// Admission validates the whole program through the instruction
    /// encoder, so a malformed job can never take down the machine
    /// mid-slice.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the bounded queue is at
    /// capacity, [`AdmissionError::EmptyProgram`] /
    /// [`AdmissionError::InvalidProgram`] when the program fails
    /// validation.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        if self.pending.len() >= self.config.queue_capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if spec.program.is_empty() {
            return Err(AdmissionError::EmptyProgram);
        }
        for (index, instr) in spec.program.iter().enumerate() {
            instr
                .try_encode()
                .map_err(|source| AdmissionError::InvalidProgram { index, source })?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let fingerprint = fingerprint(&spec.program);
        self.pending.push_back(Pending {
            id,
            spec,
            fingerprint,
            admit_cycle: self.now,
        });
        Ok(JobId(id))
    }

    /// Serves every queued job to completion and reports the drain.
    pub fn run(&mut self) -> EngineReport {
        while !self.pending.is_empty() {
            self.run_batch();
        }
        self.report()
    }

    /// Picks the next batch: the most urgent pending job (earliest
    /// deadline, then highest priority, then FIFO) plus every other
    /// pending job with the same program fingerprint, up to
    /// `max_batch`, in admission order.
    fn take_batch(&mut self) -> Vec<Pending> {
        let leader = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(pos, p)| {
                (
                    p.spec.deadline.unwrap_or(u64::MAX),
                    std::cmp::Reverse(p.spec.priority),
                    *pos,
                )
            })
            .map(|(pos, _)| pos)
            .expect("take_batch requires a non-empty queue");
        let key = self.pending[leader].fingerprint;
        let mut batch = Vec::new();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            if p.fingerprint == key && batch.len() < self.config.max_batch {
                batch.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.pending = kept;
        batch
    }

    /// Runs one batch round-robin until every member halts or fails.
    fn run_batch(&mut self) {
        let batch = self.take_batch();
        self.batches += 1;
        let mut active: Vec<Active> = batch
            .into_iter()
            .map(|p| Active {
                id: p.id,
                fingerprint: p.fingerprint,
                admit_cycle: p.admit_cycle,
                cp: self.machine.new_control_processor(),
                ctx: self.machine.fresh_context(),
                acc: MachineCounters::default(),
                start_cycle: None,
                finish_cycle: 0,
                slices: 0,
                preemptions: 0,
                done: false,
                error: None,
                spec: p.spec,
            })
            .collect();
        let mut alive = active.len();
        while alive > 0 {
            for job in active.iter_mut() {
                if job.done {
                    continue;
                }
                self.run_one_slice(job, alive);
                if job.done {
                    alive -= 1;
                }
            }
        }
        for job in active {
            let finished = self.retire(job);
            self.finished.push(finished);
        }
    }

    /// Runs one slice of `job`, switching its context in (and, if other
    /// tenants are still alive, back out) around the execution.
    fn run_one_slice(&mut self, job: &mut Active, alive: usize) {
        // Context switch in — skipped when the job's registers are
        // already resident (it ran the previous slice alone).
        if self.resident != Some(job.id) {
            self.machine.set_tenant(job.id);
            self.machine.restore_context(&job.ctx);
            self.charge_context_transfer();
            self.resident = Some(job.id);
        }
        if job.slices == 0 {
            job.start_cycle = Some(self.now);
            if let Some(elem) = job.spec.fault_at_element {
                self.machine.inject_page_fault(elem);
            }
        }
        let counters_before = self.machine.counters();
        let cycles_before = job.cp.stats().cycles;
        let outcome = self.machine.run_slice(
            &mut job.cp,
            &job.spec.program,
            &mut job.spec.mem,
            self.config.slice_vectors,
        );
        job.acc
            .accumulate(&self.machine.counters().since(&counters_before));
        self.now += job.cp.stats().cycles - cycles_before;
        job.slices += 1;
        match outcome {
            Ok(SliceOutcome::Halted) => {
                job.done = true;
                job.finish_cycle = self.now;
            }
            Ok(SliceOutcome::Preempted) => {
                job.preemptions += 1;
                // Save only when another tenant will actually run next;
                // a sole survivor keeps its registers resident.
                if alive > 1 {
                    job.ctx = self.machine.save_context();
                    self.charge_context_transfer();
                }
            }
            Err(e) => {
                job.done = true;
                job.error = Some(e.to_string());
                job.finish_cycle = self.now;
            }
        }
    }

    fn charge_context_transfer(&mut self) {
        let cycles = self.machine.context_transfer_cycles();
        self.now += cycles;
        self.context_switches += 1;
        self.context_switch_cycles += cycles;
    }

    fn retire(&self, job: Active) -> Finished {
        let cp = job.cp.stats();
        let report = RunReport {
            cycles: cp.cycles,
            freq_ghz: self.config.machine.freq_ghz,
            cp,
            microops: job.acc.microops,
            csb_energy_uj: job.acc.energy_pj / 1e6,
            hbm_bytes_read: job.acc.hbm_bytes_read,
            hbm_bytes_written: job.acc.hbm_bytes_written,
            lane_ops: job.acc.lane_ops,
            vmu_cycles: job.acc.vmu_cycles,
            vcu_cycles: job.acc.vcu_cycles,
            program_cache_hits: job.acc.cache_hits,
            program_cache_misses: job.acc.cache_misses,
        };
        Finished {
            report: JobReport {
                id: JobId(job.id),
                name: job.spec.name,
                fingerprint: job.fingerprint,
                priority: job.spec.priority,
                deadline: job.spec.deadline,
                admit_cycle: job.admit_cycle,
                start_cycle: job.start_cycle.unwrap_or(job.finish_cycle),
                finish_cycle: job.finish_cycle,
                slices: job.slices,
                preemptions: job.preemptions,
                report,
                faults: job.acc.faults_taken,
                error: job.error,
            },
            mem: job.spec.mem,
        }
    }

    /// The aggregate report over every job served so far.
    pub fn report(&self) -> EngineReport {
        let cache = self.machine.program_cache();
        let waits: Vec<u64> = self
            .finished
            .iter()
            .map(|f| f.report.queue_cycles())
            .collect();
        EngineReport {
            jobs: self.finished.iter().map(|f| f.report.clone()).collect(),
            total_cycles: self.now,
            freq_ghz: self.config.machine.freq_ghz,
            batches: self.batches,
            context_switches: self.context_switches,
            context_switch_cycles: self.context_switch_cycles,
            queue_latency: QueueLatency::from_waits(&waits),
            cross_tenant_hits: cache.cross_tenant_hits(),
            cross_tenant_hit_rate: cache.cross_tenant_hit_rate(),
            cache_hit_rate: cache.hit_rate(),
        }
    }

    /// The report of a served job.
    pub fn job_report(&self, id: JobId) -> Option<&JobReport> {
        self.finished.iter().map(|f| &f.report).find(|r| r.id == id)
    }

    /// A served job's memory image — where its outputs live.
    pub fn memory(&self, id: JobId) -> Option<&MainMemory> {
        self.finished
            .iter()
            .find(|f| f.report.id == id)
            .map(|f| &f.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_isa::assemble;

    fn add_job(n: u32, scale: u32) -> JobSpec {
        let mut mem = MainMemory::new();
        let data: Vec<u32> = (0..n).map(|i| i * scale + 1).collect();
        mem.write_u32_slice(0x1000, &data);
        let prog = assemble(&format!(
            "li t0, {n}
vsetvli t1, t0
li a0, 0x1000
vle32.v v1, (a0)
vadd.vv v2, v1, v1
li a1, 0x4000
vse32.v v2, (a1)
halt"
        ))
        .unwrap();
        JobSpec::new(format!("add{scale}"), prog, mem)
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::new(cape_core::CapeConfig::tiny(2)))
    }

    #[test]
    fn serves_one_job_end_to_end() {
        let mut e = engine();
        let id = e.submit(add_job(8, 3)).unwrap();
        let report = e.run();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.completed(), 1);
        let out = e.memory(id).unwrap().read_u32_slice(0x4000, 8);
        let want: Vec<u32> = (0..8).map(|i| (i * 3 + 1) * 2).collect();
        assert_eq!(out, want);
        assert!(e.job_report(id).unwrap().succeeded());
    }

    #[test]
    fn backpressure_refuses_submissions_past_capacity() {
        let mut e = Engine::new(EngineConfig {
            queue_capacity: 2,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        e.submit(add_job(4, 1)).unwrap();
        e.submit(add_job(4, 2)).unwrap();
        let err = e.submit(add_job(4, 3)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
        // Draining makes room again.
        e.run();
        assert!(e.submit(add_job(4, 3)).is_ok());
    }

    #[test]
    fn admission_rejects_unencodable_and_empty_programs() {
        use cape_isa::Reg;
        let mut e = engine();
        // addi with an immediate past the 12-bit field: executable by the
        // simulator, but with no machine encoding — admission bounces it.
        let bad = cape_isa::Program::builder()
            .addi(Reg::T0, Reg::ZERO, 10_000)
            .halt()
            .build()
            .unwrap();
        let err = e
            .submit(JobSpec::new("bad", bad, MainMemory::new()))
            .unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::InvalidProgram { index: 0, .. }
        ));

        let empty = cape_isa::Program::builder().build().unwrap();
        let err = e
            .submit(JobSpec::new("empty", empty, MainMemory::new()))
            .unwrap_err();
        assert_eq!(err, AdmissionError::EmptyProgram);
        assert_eq!(e.pending_jobs(), 0, "rejected jobs must not queue");
    }

    #[test]
    fn same_kernel_jobs_share_one_batch_and_amortize_compiles() {
        let mut e = engine();
        for i in 0..4 {
            // Same program text, different inputs: same fingerprint.
            let mut spec = add_job(8, 1);
            spec.name = format!("tenant{i}");
            let data: Vec<u32> = (0..8).map(|k| k + i * 100).collect();
            spec.mem.write_u32_slice(0x1000, &data);
            e.submit(spec).unwrap();
        }
        let report = e.run();
        assert_eq!(report.batches, 1, "identical kernels batch together");
        assert_eq!(report.completed(), 4);
        assert!(
            report.cross_tenant_hit_rate > 0.5,
            "co-scheduled tenants must reuse each other's compiles: {}",
            report.cross_tenant_hit_rate
        );
        // Outputs stay per-tenant despite the shared machine.
        for (i, job) in report.jobs.iter().enumerate() {
            let out = e.memory(job.id).unwrap().read_u32_slice(0x4000, 8);
            let want: Vec<u32> = (0..8u32).map(|k| (k + i as u32 * 100) * 2).collect();
            assert_eq!(out, want, "tenant {i} output corrupted");
        }
    }

    #[test]
    fn deadline_and_priority_order_batch_service() {
        let mut e = Engine::new(EngineConfig {
            max_batch: 1,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let late = e.submit(add_job(4, 1).with_deadline(u64::MAX)).unwrap();
        let urgent = e.submit(add_job(8, 2).with_deadline(1)).unwrap();
        let high = e.submit(add_job(16, 3).with_priority(9)).unwrap();
        let report = e.run();
        let finish = |id: JobId| e.job_report(id).unwrap().finish_cycle;
        assert!(finish(urgent) < finish(late), "EDF first");
        assert!(
            finish(high) < finish(late),
            "priority beats no-deadline FIFO"
        );
        assert_eq!(
            report.deadline_misses(),
            1,
            "the 1-cycle deadline is missed"
        );
    }

    #[test]
    fn preemption_interleaves_without_corrupting_tenants() {
        // A slice budget of 1 forces a context switch after every vector
        // instruction; outputs must still be exact.
        let mut e = Engine::new(EngineConfig {
            slice_vectors: 1,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let a = e.submit(add_job(16, 5)).unwrap();
        let b = e.submit(add_job(16, 9)).unwrap();
        let report = e.run();
        assert!(report.context_switches > 4, "budget 1 must thrash contexts");
        assert!(report.jobs.iter().all(|j| j.preemptions > 0));
        let out_a = e.memory(a).unwrap().read_u32_slice(0x4000, 16);
        let out_b = e.memory(b).unwrap().read_u32_slice(0x4000, 16);
        assert_eq!(
            out_a,
            (0..16).map(|i| (i * 5 + 1) * 2).collect::<Vec<u32>>()
        );
        assert_eq!(
            out_b,
            (0..16).map(|i| (i * 9 + 1) * 2).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn faulting_job_restarts_and_reports_its_fault() {
        let mut e = engine();
        let id = e.submit(add_job(32, 2).with_fault_at(11)).unwrap();
        e.run();
        let job = e.job_report(id).unwrap();
        assert!(job.succeeded());
        assert_eq!(job.faults, 1, "the injected fault must be taken");
        assert_eq!(job.report.cp.vector, 4);
        let out = e.memory(id).unwrap().read_u32_slice(0x4000, 32);
        assert_eq!(out, (0..32).map(|i| (i * 2 + 1) * 2).collect::<Vec<u32>>());
    }
}

//! The batch-scheduling engine: admission, batching, slicing and
//! context switching over one shared [`CapeMachine`].

use std::collections::VecDeque;

use cape_core::{CapeConfig, CapeMachine, FaultConfig, MachineContext, MachineCounters, RunReport};
use cape_cp::{ControlProcessor, SliceOutcome};
use cape_isa::EncodeError;
use cape_mem::MainMemory;

use crate::job::{fingerprint, JobError, JobId, JobReport, JobSpec};
use crate::report::{EngineReport, QueueLatency};

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is at capacity — backpressure; resubmit after
    /// a drain.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The program contains an instruction with no machine encoding
    /// (admission runs every instruction through the encoder so a
    /// malformed job is bounced at the front door, not mid-run).
    InvalidProgram {
        /// Index of the offending instruction.
        index: usize,
        /// The encoder's diagnosis.
        source: EncodeError,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue is full ({capacity} jobs)")
            }
            AdmissionError::InvalidProgram { index, source } => {
                write!(f, "instruction {index} is not encodable: {source}")
            }
            AdmissionError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::InvalidProgram { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Why a fault-layer request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultApiError {
    /// The engine was built without a [`FaultPolicy`], so the CSB fault
    /// layer is disarmed and there is nothing to inject into. A health
    /// prober treats this as "machine not probeable", not a crash.
    NoFaultPolicy,
}

impl std::fmt::Display for FaultApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultApiError::NoFaultPolicy => {
                write!(
                    f,
                    "the engine has no fault policy; the fault layer is disarmed"
                )
            }
        }
    }
}

impl std::error::Error for FaultApiError {}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The machine the engine serves jobs on.
    pub machine: CapeConfig,
    /// Maximum jobs waiting for service; submissions beyond this bound
    /// are refused with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Vector instructions a job may commit per slice before it is
    /// preempted (always at a microprogram sync point — the vector
    /// engine is drained when the slice ends).
    pub slice_vectors: u64,
    /// Maximum jobs co-scheduled in one batch. Batches are formed from
    /// jobs with identical program fingerprints so they share compiled
    /// microprograms in the VCU cache.
    pub max_batch: usize,
    /// Fault-tolerance policy. `None` (the default) runs the fast path:
    /// no fault layer, no checkpointing, no scrubbing, and the
    /// resident-tenant optimization skips redundant context transfers.
    pub fault: Option<FaultPolicy>,
}

impl EngineConfig {
    /// Defaults: a 64-deep queue, 32 vector instructions per slice,
    /// batches of up to 8 same-kernel jobs, fault tolerance off.
    pub fn new(machine: CapeConfig) -> Self {
        Self {
            machine,
            queue_capacity: 64,
            slice_vectors: 32,
            max_batch: 8,
            fault: None,
        }
    }
}

/// How the engine survives hardware faults: the CSB fault layer to arm,
/// plus the checkpointed-retry bounds. With a policy set, every slice is
/// bracketed by a VMU-costed context restore/save (the checkpoint), a
/// parity scrub runs after every slice *before* the slice's end state
/// can become the next checkpoint, and a slice whose detectors latched
/// — or whose watchdog fired — is rolled back and re-executed from the
/// last verified checkpoint up to [`FaultPolicy::max_retries`] times.
#[derive(Debug, Clone, Copy)]
pub struct FaultPolicy {
    /// Configuration for the CSB fault-injection/detection layer (use
    /// [`FaultConfig::quiescent`] for detection machinery without
    /// injection).
    pub csb: FaultConfig,
    /// Re-executions of one slice before the job fails typed.
    pub max_retries: u32,
    /// Engine cycles charged per rollback (models handler + re-arm).
    pub retry_backoff_cycles: u64,
    /// Watchdog fuel: instructions one slice may commit before the CP
    /// declares it runaway ([`SliceOutcome::TimedOut`]).
    pub slice_fuel: u64,
}

impl FaultPolicy {
    /// A policy with seeded random injection and paper-plausible retry
    /// bounds: 3 retries, 2,000-cycle backoff, 200k-instruction fuel.
    pub fn seeded(seed: u64) -> Self {
        Self {
            csb: FaultConfig::seeded(seed),
            max_retries: 3,
            retry_backoff_cycles: 2_000,
            slice_fuel: 200_000,
        }
    }

    /// Detection, scrubbing and checkpointed retry armed, but no fault
    /// injection — the configuration for measuring clean-run overhead.
    pub fn quiescent() -> Self {
        Self {
            csb: FaultConfig::quiescent(2),
            max_retries: 3,
            retry_backoff_cycles: 2_000,
            slice_fuel: 200_000,
        }
    }
}

/// A job waiting for service.
#[derive(Debug)]
struct Pending {
    id: u32,
    spec: JobSpec,
    fingerprint: u64,
    admit_cycle: u64,
}

/// A job being served in the current batch.
struct Active {
    id: u32,
    spec: JobSpec,
    fingerprint: u64,
    admit_cycle: u64,
    cp: ControlProcessor,
    ctx: MachineContext,
    acc: MachineCounters,
    start_cycle: Option<u64>,
    finish_cycle: u64,
    slices: u64,
    preemptions: u64,
    retries: u64,
    done: bool,
    error: Option<JobError>,
}

/// A served job: its report plus its memory image (outputs).
#[derive(Debug)]
struct Finished {
    report: JobReport,
    mem: MainMemory,
}

/// A multi-tenant serving runtime for one [`CapeMachine`].
///
/// Jobs are admitted through a bounded queue, batched by program
/// fingerprint (identical static code ⇒ shared compiled microprograms),
/// and executed round-robin in slices of
/// [`EngineConfig::slice_vectors`] vector instructions. Preemption only
/// happens at microprogram sync points; between slices of different
/// tenants the engine saves and restores the full CSB register file
/// through the bulk transposed-I/O path, charging
/// [`CapeMachine::context_transfer_cycles`] per transfer.
///
/// The engine clock is virtual: it advances by each slice's CP-cycle
/// delta plus context-transfer costs, giving deterministic queue-wait
/// and throughput figures.
pub struct Engine {
    config: EngineConfig,
    machine: CapeMachine,
    now: u64,
    next_id: u32,
    pending: VecDeque<Pending>,
    finished: Vec<Finished>,
    /// Tenant whose register state currently lives in the CSB; slices
    /// of the resident tenant skip the save/restore round trip.
    resident: Option<u32>,
    batches: u64,
    context_switches: u64,
    context_switch_cycles: u64,
    retries: u64,
}

impl Engine {
    /// An engine serving a freshly built machine.
    ///
    /// # Panics
    ///
    /// Panics if any of the config's capacities or budgets is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.slice_vectors > 0, "slice budget must be positive");
        assert!(config.max_batch > 0, "batch size must be positive");
        let mut machine = CapeMachine::new(config.machine);
        if let Some(policy) = &config.fault {
            machine.enable_fault_injection(policy.csb);
        }
        Self {
            machine,
            config,
            now: 0,
            next_id: 0,
            pending: VecDeque::new(),
            finished: Vec::new(),
            resident: None,
            batches: 0,
            context_switches: 0,
            context_switch_cycles: 0,
            retries: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Jobs currently waiting for service.
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Jobs served (halted or failed typed) so far.
    pub fn finished_jobs(&self) -> usize {
        self.finished.len()
    }

    /// Checkpointed slice re-executions across every job served so far —
    /// one of the health signals a fleet monitor samples between batches
    /// without paying for a full [`EngineReport`] clone.
    pub fn total_retries(&self) -> u64 {
        self.retries
    }

    /// Read access to the shared machine (cache statistics, config).
    pub fn machine(&self) -> &CapeMachine {
        &self.machine
    }

    /// Plants one specific CSB fault at chain `i` (testing hook, and the
    /// strike mechanism cluster stress harnesses use to degrade one
    /// machine of a fleet).
    ///
    /// # Errors
    ///
    /// [`FaultApiError::NoFaultPolicy`] when the engine was built
    /// without a [`FaultPolicy`] — the fault layer is disarmed, so there
    /// is no injection machinery to plant the fault into.
    pub fn inject_fault(
        &mut self,
        chain: usize,
        kind: cape_core::FaultKind,
    ) -> Result<(), FaultApiError> {
        if !self.machine.fault_injection_enabled() {
            return Err(FaultApiError::NoFaultPolicy);
        }
        self.machine.inject_csb_fault(chain, kind);
        Ok(())
    }

    /// Field-repairs the machine: installs `per_shard` fresh spare
    /// blocks in every shard and re-runs quarantine-and-remap (see
    /// [`CapeMachine::service_spares`]). The fleet scheduler calls this
    /// when re-admitting a quarantined machine; on success the machine
    /// has no pending faults and a replenished spare inventory.
    pub fn service_spares(&mut self, per_shard: usize) -> cape_core::RemapOutcome {
        self.machine.service_spares(per_shard)
    }

    /// Admits a job, or refuses it with typed backpressure.
    ///
    /// Admission validates the whole program through the instruction
    /// encoder, so a malformed job can never take down the machine
    /// mid-slice.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the bounded queue is at
    /// capacity, [`AdmissionError::EmptyProgram`] /
    /// [`AdmissionError::InvalidProgram`] when the program fails
    /// validation.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        if self.pending.len() >= self.config.queue_capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if spec.program.is_empty() {
            return Err(AdmissionError::EmptyProgram);
        }
        for (index, instr) in spec.program.iter().enumerate() {
            instr
                .try_encode()
                .map_err(|source| AdmissionError::InvalidProgram { index, source })?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let fingerprint = fingerprint(&spec.program);
        self.pending.push_back(Pending {
            id,
            spec,
            fingerprint,
            admit_cycle: self.now,
        });
        Ok(JobId(id))
    }

    /// Serves every queued job to completion and reports the drain.
    pub fn run(&mut self) -> EngineReport {
        while self.run_next_batch() {}
        self.report()
    }

    /// Serves exactly one batch if any jobs are queued, returning
    /// whether a batch ran. A fleet scheduler steps its machines with
    /// this so it can re-check machine health (and drain a degrading
    /// machine) between batches instead of committing to a full drain.
    pub fn run_next_batch(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.run_batch();
        true
    }

    /// Hands back every queued-but-unstarted job, emptying the queue.
    ///
    /// Each entry is the [`JobId`] admission assigned plus the untouched
    /// [`JobSpec`] (no slice of a pending job has run, so the spec —
    /// memory image included — is exactly what was submitted). This is
    /// the migration hook: a cluster drains a degraded machine's queue
    /// and resubmits the specs to healthy peers, using the ids (or the
    /// specs' stable [`JobSpec::tag`]s) to correlate reports across the
    /// move. Already-finished jobs are unaffected.
    pub fn drain_pending(&mut self) -> Vec<(JobId, JobSpec)> {
        self.pending
            .drain(..)
            .map(|p| (JobId(p.id), p.spec))
            .collect()
    }

    /// Picks the next batch: the most urgent pending job (earliest
    /// deadline, then highest priority, then FIFO) plus every other
    /// pending job with the same program fingerprint, up to
    /// `max_batch`, in admission order.
    ///
    /// Single pass, in place: each job is popped from the front once and
    /// either joins the batch or rotates to the back of the same deque
    /// (the ring buffer's capacity is reused — the old implementation
    /// drained into a freshly allocated `kept` deque, paying an
    /// O(queue-length) allocation + copy per batch).
    fn take_batch(&mut self) -> Vec<Pending> {
        let key = self
            .pending
            .iter()
            .min_by_key(|p| {
                (
                    p.spec.deadline.unwrap_or(u64::MAX),
                    std::cmp::Reverse(p.spec.priority),
                    p.id,
                )
            })
            .map(|p| p.fingerprint)
            .expect("take_batch requires a non-empty queue");
        let mut batch = Vec::new();
        for _ in 0..self.pending.len() {
            let p = self.pending.pop_front().expect("iterating queue length");
            if p.fingerprint == key && batch.len() < self.config.max_batch {
                batch.push(p);
            } else {
                self.pending.push_back(p);
            }
        }
        batch
    }

    /// Runs one batch round-robin until every member halts or fails.
    fn run_batch(&mut self) {
        let batch = self.take_batch();
        self.batches += 1;
        let mut active: Vec<Active> = batch
            .into_iter()
            .map(|p| Active {
                id: p.id,
                fingerprint: p.fingerprint,
                admit_cycle: p.admit_cycle,
                cp: self.machine.new_control_processor(),
                ctx: self.machine.fresh_context(),
                acc: MachineCounters::default(),
                start_cycle: None,
                finish_cycle: 0,
                slices: 0,
                preemptions: 0,
                retries: 0,
                done: false,
                error: None,
                spec: p.spec,
            })
            .collect();
        let mut alive = active.len();
        while alive > 0 {
            for job in active.iter_mut() {
                if job.done {
                    continue;
                }
                self.run_one_slice(job, alive);
                if job.done {
                    alive -= 1;
                }
            }
        }
        for job in active {
            let finished = self.retire(job);
            self.finished.push(finished);
        }
    }

    /// Runs one slice of `job`, switching its context in (and, if other
    /// tenants are still alive, back out) around the execution.
    fn run_one_slice(&mut self, job: &mut Active, alive: usize) {
        match self.config.fault {
            None => self.run_one_slice_fast(job, alive),
            Some(policy) => self.run_one_slice_checked(job, policy),
        }
    }

    /// The fast path: no checkpointing, no scrubbing, no watchdog, and
    /// a sole-resident tenant skips redundant context transfers.
    fn run_one_slice_fast(&mut self, job: &mut Active, alive: usize) {
        // Context switch in — skipped when the job's registers are
        // already resident (it ran the previous slice alone).
        if self.resident != Some(job.id) {
            self.machine.set_tenant(job.id);
            self.machine.restore_context(&job.ctx);
            self.charge_context_transfer();
            self.resident = Some(job.id);
        }
        if job.slices == 0 {
            job.start_cycle = Some(self.now);
            if let Some(elem) = job.spec.fault_at_element {
                self.machine.inject_page_fault(elem);
            }
        }
        let counters_before = self.machine.counters();
        let cycles_before = job.cp.stats().cycles;
        let outcome = self.machine.run_slice(
            &mut job.cp,
            &job.spec.program,
            &mut job.spec.mem,
            self.config.slice_vectors,
            u64::MAX,
        );
        job.acc
            .accumulate(&self.machine.counters().since(&counters_before));
        self.now += job.cp.stats().cycles - cycles_before;
        job.slices += 1;
        match outcome {
            Ok(SliceOutcome::Halted) => {
                job.done = true;
                job.finish_cycle = self.now;
            }
            Ok(SliceOutcome::Preempted) => {
                job.preemptions += 1;
                // Save only when another tenant will actually run next;
                // a sole survivor keeps its registers resident.
                if alive > 1 {
                    job.ctx = self.machine.save_context();
                    self.charge_context_transfer();
                }
            }
            Ok(SliceOutcome::TimedOut) => {
                unreachable!("the watchdog is disabled on the fast path")
            }
            Err(e) => {
                job.done = true;
                job.error = Some(JobError::Processor {
                    detail: e.to_string(),
                });
                job.finish_cycle = self.now;
            }
        }
    }

    /// The self-healing path: every slice starts from a verified
    /// checkpoint `(cp, ctx, mem)` and is only accepted — its end state
    /// becoming the next checkpoint — after a post-slice scrub comes
    /// back clean. A slice whose detectors latched, or whose watchdog
    /// fired, is rolled back and re-executed; [`FaultPolicy::max_retries`]
    /// bounds the loop, after which the job fails with a typed
    /// [`JobError`]. The scrub-before-save ordering is the correctness
    /// invariant: corrupted state can never become a checkpoint, so a
    /// rollback always lands on bit-clean state.
    fn run_one_slice_checked(&mut self, job: &mut Active, policy: FaultPolicy) {
        // The rollback image: everything one slice can mutate. `job.ctx`
        // (the vector state) is already the checkpoint and is only
        // replaced after a clean scrub below.
        let checkpoint_cp = job.cp.clone();
        let checkpoint_mem = job.spec.mem.clone();
        let mut attempt: u32 = 0;
        loop {
            // Always restore: the checkpoint is authoritative, and the
            // restore re-baselines any blocks remapped by a prior
            // attempt. Charged at the VMU bulk-transfer cost.
            self.machine.set_tenant(job.id);
            self.machine.restore_context(&job.ctx);
            self.charge_context_transfer();
            self.resident = Some(job.id);
            if job.slices == 0 {
                job.start_cycle = Some(self.now);
            }
            if job.slices == 0 && attempt == 0 {
                if let Some(elem) = job.spec.fault_at_element {
                    self.machine.inject_page_fault(elem);
                }
            }
            let counters_before = self.machine.counters();
            let cycles_before = job.cp.stats().cycles;
            let outcome = self.machine.run_slice(
                &mut job.cp,
                &job.spec.program,
                &mut job.spec.mem,
                self.config.slice_vectors,
                policy.slice_fuel,
            );
            // Retried slices accumulate too: wasted attempts are real
            // work the machine performed.
            job.acc
                .accumulate(&self.machine.counters().since(&counters_before));
            self.now += job.cp.stats().cycles - cycles_before;
            job.slices += 1;

            // Detection before checkpoint. The parity/golden tiers ran
            // inside the slice's broadcasts; the scrub sweeps every
            // block (idle ones included) so nothing latches late.
            if let Some(report) = self.machine.scrub() {
                let _ = report;
            }
            let corrupted = self.machine.pending_faults() > 0;
            if corrupted {
                let remap = self.machine.quarantine_and_remap();
                if !remap.fully_recovered() {
                    // Out of spares: the faulty blocks stay pending and
                    // the machine is degraded — fail typed, never mask.
                    job.done = true;
                    job.error = Some(JobError::SparesExhausted {
                        pending_blocks: self.machine.pending_faults(),
                    });
                    job.finish_cycle = self.now;
                    return;
                }
            }
            let timed_out = matches!(outcome, Ok(SliceOutcome::TimedOut));
            if corrupted || timed_out {
                attempt += 1;
                if attempt > policy.max_retries {
                    job.done = true;
                    job.error = Some(if timed_out {
                        JobError::WatchdogTimeout {
                            retries: policy.max_retries,
                        }
                    } else {
                        JobError::FaultRetriesExhausted {
                            retries: policy.max_retries,
                        }
                    });
                    job.finish_cycle = self.now;
                    return;
                }
                // Roll back to the verified checkpoint and re-execute.
                job.retries += 1;
                self.retries += 1;
                self.now += policy.retry_backoff_cycles;
                job.cp = checkpoint_cp.clone();
                job.spec.mem = checkpoint_mem.clone();
                continue;
            }
            match outcome {
                Ok(SliceOutcome::Halted) => {
                    job.done = true;
                    job.finish_cycle = self.now;
                }
                Ok(SliceOutcome::Preempted) => {
                    job.preemptions += 1;
                    // The scrub came back clean: this end state is the
                    // new checkpoint.
                    job.ctx = self.machine.save_context();
                    self.charge_context_transfer();
                }
                Ok(SliceOutcome::TimedOut) => unreachable!("handled by the rollback arm"),
                Err(e) => {
                    job.done = true;
                    job.error = Some(JobError::Processor {
                        detail: e.to_string(),
                    });
                    job.finish_cycle = self.now;
                }
            }
            return;
        }
    }

    fn charge_context_transfer(&mut self) {
        let cycles = self.machine.context_transfer_cycles();
        self.now += cycles;
        self.context_switches += 1;
        self.context_switch_cycles += cycles;
    }

    fn retire(&self, job: Active) -> Finished {
        let cp = job.cp.stats();
        let report = RunReport {
            cycles: cp.cycles,
            freq_ghz: self.config.machine.freq_ghz,
            cp,
            microops: job.acc.microops,
            csb_energy_uj: job.acc.energy_pj / 1e6,
            hbm_bytes_read: job.acc.hbm_bytes_read,
            hbm_bytes_written: job.acc.hbm_bytes_written,
            lane_ops: job.acc.lane_ops,
            vmu_cycles: job.acc.vmu_cycles,
            vcu_cycles: job.acc.vcu_cycles,
            program_cache_hits: job.acc.cache_hits,
            program_cache_misses: job.acc.cache_misses,
            fused_windows: job.acc.fused_windows,
            fused_ops: job.acc.fused_ops,
            fused_joins_saved: job.acc.fused_joins_saved,
            window_flushes: job.acc.window_flushes,
            dead_stores_eliminated: job.acc.dead_stores_eliminated,
        };
        Finished {
            report: JobReport {
                id: JobId(job.id),
                tag: job.spec.tag,
                name: job.spec.name,
                fingerprint: job.fingerprint,
                priority: job.spec.priority,
                deadline: job.spec.deadline,
                admit_cycle: job.admit_cycle,
                start_cycle: job.start_cycle.unwrap_or(job.finish_cycle),
                finish_cycle: job.finish_cycle,
                slices: job.slices,
                preemptions: job.preemptions,
                report,
                faults: job.acc.faults_taken,
                retries: job.retries,
                error: job.error,
            },
            mem: job.spec.mem,
        }
    }

    /// The aggregate report over every job served so far.
    pub fn report(&self) -> EngineReport {
        let cache = self.machine.program_cache();
        let waits: Vec<u64> = self
            .finished
            .iter()
            .map(|f| f.report.queue_cycles())
            .collect();
        let mut window_flushes = cape_core::WindowFlushes::default();
        let mut dead_stores_eliminated = 0;
        for f in &self.finished {
            window_flushes.accumulate(&f.report.report.window_flushes);
            dead_stores_eliminated += f.report.report.dead_stores_eliminated;
        }
        EngineReport {
            jobs: self.finished.iter().map(|f| f.report.clone()).collect(),
            total_cycles: self.now,
            freq_ghz: self.config.machine.freq_ghz,
            batches: self.batches,
            context_switches: self.context_switches,
            context_switch_cycles: self.context_switch_cycles,
            queue_latency: QueueLatency::from_waits(&waits),
            cross_tenant_hits: cache.cross_tenant_hits(),
            cross_tenant_hit_rate: cache.cross_tenant_hit_rate(),
            cache_hit_rate: cache.hit_rate(),
            fused_window_hits: cache.window_hits(),
            fused_window_misses: cache.window_misses(),
            fused_window_evictions: cache.window_evictions(),
            cross_tenant_window_hits: cache.cross_tenant_window_hits(),
            window_flushes,
            dead_stores_eliminated,
            retries: self.retries,
            fault: self.machine.fault_stats(),
            spare_blocks_free: self.machine.spare_blocks_free(),
            quarantined_blocks: self.machine.quarantined_blocks(),
        }
    }

    /// The report of a served job.
    pub fn job_report(&self, id: JobId) -> Option<&JobReport> {
        self.finished.iter().map(|f| &f.report).find(|r| r.id == id)
    }

    /// A served job's memory image — where its outputs live.
    pub fn memory(&self, id: JobId) -> Option<&MainMemory> {
        self.finished
            .iter()
            .find(|f| f.report.id == id)
            .map(|f| &f.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_isa::assemble;

    fn add_job(n: u32, scale: u32) -> JobSpec {
        let mut mem = MainMemory::new();
        let data: Vec<u32> = (0..n).map(|i| i * scale + 1).collect();
        mem.write_u32_slice(0x1000, &data);
        let prog = assemble(&format!(
            "li t0, {n}
vsetvli t1, t0
li a0, 0x1000
vle32.v v1, (a0)
vadd.vv v2, v1, v1
li a1, 0x4000
vse32.v v2, (a1)
halt"
        ))
        .unwrap();
        JobSpec::new(format!("add{scale}"), prog, mem)
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::new(cape_core::CapeConfig::tiny(2)))
    }

    #[test]
    fn serves_one_job_end_to_end() {
        let mut e = engine();
        let id = e.submit(add_job(8, 3)).unwrap();
        let report = e.run();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.completed(), 1);
        let out = e.memory(id).unwrap().read_u32_slice(0x4000, 8);
        let want: Vec<u32> = (0..8).map(|i| (i * 3 + 1) * 2).collect();
        assert_eq!(out, want);
        assert!(e.job_report(id).unwrap().succeeded());
    }

    #[test]
    fn backpressure_refuses_submissions_past_capacity() {
        let mut e = Engine::new(EngineConfig {
            queue_capacity: 2,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        e.submit(add_job(4, 1)).unwrap();
        e.submit(add_job(4, 2)).unwrap();
        let err = e.submit(add_job(4, 3)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
        // Draining makes room again.
        e.run();
        assert!(e.submit(add_job(4, 3)).is_ok());
    }

    #[test]
    fn admission_rejects_unencodable_and_empty_programs() {
        use cape_isa::Reg;
        let mut e = engine();
        // addi with an immediate past the 12-bit field: executable by the
        // simulator, but with no machine encoding — admission bounces it.
        let bad = cape_isa::Program::builder()
            .addi(Reg::T0, Reg::ZERO, 10_000)
            .halt()
            .build()
            .unwrap();
        let err = e
            .submit(JobSpec::new("bad", bad, MainMemory::new()))
            .unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::InvalidProgram { index: 0, .. }
        ));

        let empty = cape_isa::Program::builder().build().unwrap();
        let err = e
            .submit(JobSpec::new("empty", empty, MainMemory::new()))
            .unwrap_err();
        assert_eq!(err, AdmissionError::EmptyProgram);
        assert_eq!(e.pending_jobs(), 0, "rejected jobs must not queue");
    }

    #[test]
    fn same_kernel_jobs_share_one_batch_and_amortize_compiles() {
        let mut e = engine();
        for i in 0..4 {
            // Same program text, different inputs: same fingerprint.
            let mut spec = add_job(8, 1);
            spec.name = format!("tenant{i}");
            let data: Vec<u32> = (0..8).map(|k| k + i * 100).collect();
            spec.mem.write_u32_slice(0x1000, &data);
            e.submit(spec).unwrap();
        }
        let report = e.run();
        assert_eq!(report.batches, 1, "identical kernels batch together");
        assert_eq!(report.completed(), 4);
        assert!(
            report.cross_tenant_hit_rate > 0.5,
            "co-scheduled tenants must reuse each other's compiles: {}",
            report.cross_tenant_hit_rate
        );
        // Outputs stay per-tenant despite the shared machine.
        for (i, job) in report.jobs.iter().enumerate() {
            let out = e.memory(job.id).unwrap().read_u32_slice(0x4000, 8);
            let want: Vec<u32> = (0..8u32).map(|k| (k + i as u32 * 100) * 2).collect();
            assert_eq!(out, want, "tenant {i} output corrupted");
        }
    }

    #[test]
    fn deadline_and_priority_order_batch_service() {
        let mut e = Engine::new(EngineConfig {
            max_batch: 1,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let late = e.submit(add_job(4, 1).with_deadline(u64::MAX)).unwrap();
        let urgent = e.submit(add_job(8, 2).with_deadline(1)).unwrap();
        let high = e.submit(add_job(16, 3).with_priority(9)).unwrap();
        let report = e.run();
        let finish = |id: JobId| e.job_report(id).unwrap().finish_cycle;
        assert!(finish(urgent) < finish(late), "EDF first");
        assert!(
            finish(high) < finish(late),
            "priority beats no-deadline FIFO"
        );
        assert_eq!(
            report.deadline_misses(),
            1,
            "the 1-cycle deadline is missed"
        );
    }

    #[test]
    fn preemption_interleaves_without_corrupting_tenants() {
        // A slice budget of 1 forces a context switch after every vector
        // instruction; outputs must still be exact.
        let mut e = Engine::new(EngineConfig {
            slice_vectors: 1,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let a = e.submit(add_job(16, 5)).unwrap();
        let b = e.submit(add_job(16, 9)).unwrap();
        let report = e.run();
        assert!(report.context_switches > 4, "budget 1 must thrash contexts");
        assert!(report.jobs.iter().all(|j| j.preemptions > 0));
        let out_a = e.memory(a).unwrap().read_u32_slice(0x4000, 16);
        let out_b = e.memory(b).unwrap().read_u32_slice(0x4000, 16);
        assert_eq!(
            out_a,
            (0..16).map(|i| (i * 5 + 1) * 2).collect::<Vec<u32>>()
        );
        assert_eq!(
            out_b,
            (0..16).map(|i| (i * 9 + 1) * 2).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn quiescent_fault_mode_is_bit_identical_to_the_fast_path() {
        // Detection + checkpointing armed, zero injection: outputs must
        // match the fast path exactly, with zero retries and a clean
        // fault ledger (scrubs excepted).
        let run = |fault: Option<FaultPolicy>| {
            let mut e = Engine::new(EngineConfig {
                fault,
                slice_vectors: 2,
                ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
            });
            let ids: Vec<JobId> = (1..4).map(|s| e.submit(add_job(16, s)).unwrap()).collect();
            let report = e.run();
            let outs: Vec<Vec<u32>> = ids
                .iter()
                .map(|&id| e.memory(id).unwrap().read_u32_slice(0x4000, 16))
                .collect();
            (report, outs)
        };
        let (fast, fast_outs) = run(None);
        let (checked, checked_outs) = run(Some(FaultPolicy::quiescent()));
        assert_eq!(fast.completed(), 3);
        assert_eq!(checked.completed(), 3);
        assert_eq!(
            fast_outs, checked_outs,
            "fault mode must not change results"
        );
        assert_eq!(checked.retries, 0);
        assert_eq!(checked.fault.injected_total(), 0);
        assert!(checked.fault.scrubs > 0, "every slice must scrub");
        assert!(
            checked.total_cycles >= fast.total_cycles,
            "checkpointing cannot be free: {} vs {}",
            checked.total_cycles,
            fast.total_cycles
        );
    }

    #[test]
    fn injected_stuck_at_is_detected_remapped_and_the_job_still_exact() {
        let mut e = Engine::new(EngineConfig {
            fault: Some(FaultPolicy::quiescent()),
            slice_vectors: 1,
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let id = e.submit(add_job(16, 5)).unwrap();
        // Wedge four columns of v1 in the block holding chain 0. The
        // stuck-at re-asserts every broadcast until quarantined.
        e.inject_fault(
            0,
            cape_core::FaultKind::StuckAt {
                lane: 0,
                subarray: 3,
                row: 1,
                mask: 0xF,
                value: true,
            },
        )
        .unwrap();
        let report = e.run();
        let job = e.job_report(id).unwrap();
        assert!(job.succeeded(), "error: {:?}", job.error);
        assert!(job.retries >= 1, "the corrupted slice must be re-executed");
        let out = e.memory(id).unwrap().read_u32_slice(0x4000, 16);
        assert_eq!(
            out,
            (0..16).map(|i| (i * 5 + 1) * 2).collect::<Vec<u32>>(),
            "self-healed output must be bit-exact"
        );
        assert_eq!(report.fault.injected_stuck, 1);
        assert!(report.fault.fully_accounted(), "{:?}", report.fault);
        assert!(report.fault.blocks_remapped >= 1);
        assert_eq!(
            report.quarantined_blocks,
            report.fault.blocks_quarantined as usize
        );
    }

    #[test]
    fn runaway_job_times_out_typed_after_bounded_retries() {
        let mut e = Engine::new(EngineConfig {
            fault: Some(FaultPolicy {
                slice_fuel: 64,
                max_retries: 2,
                ..FaultPolicy::quiescent()
            }),
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let spin = assemble("loop: j loop").unwrap();
        let id = e
            .submit(JobSpec::new("spin", spin, MainMemory::new()))
            .unwrap();
        let healthy = e.submit(add_job(8, 3)).unwrap();
        let report = e.run();
        let job = e.job_report(id).unwrap();
        assert_eq!(job.error, Some(JobError::WatchdogTimeout { retries: 2 }));
        assert_eq!(job.retries, 2);
        assert_eq!(report.retries, 2);
        // The runaway tenant must not take the healthy one with it.
        let job = e.job_report(healthy).unwrap();
        assert!(job.succeeded());
        let out = e.memory(healthy).unwrap().read_u32_slice(0x4000, 8);
        assert_eq!(out, (0..8).map(|i| (i * 3 + 1) * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn dead_block_with_no_spares_fails_typed_not_silently() {
        let mut e = Engine::new(EngineConfig {
            fault: Some(FaultPolicy {
                csb: cape_core::FaultConfig::quiescent(0), // no spares
                ..FaultPolicy::quiescent()
            }),
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        let id = e.submit(add_job(16, 2)).unwrap();
        e.inject_fault(0, cape_core::FaultKind::DeadBlock).unwrap();
        let report = e.run();
        let job = e.job_report(id).unwrap();
        assert!(
            matches!(job.error, Some(JobError::SparesExhausted { .. })),
            "got {:?}",
            job.error
        );
        assert!(report.fault.fully_accounted(), "{:?}", report.fault);
        assert_eq!(report.spare_blocks_free, 0);
    }

    #[test]
    fn rejected_vector_op_reaches_the_job_report_as_a_processor_error() {
        use cape_isa::{Reg, VReg};
        let mut e = engine();
        // vmul with vd aliasing a source: admission can't see it (it
        // encodes fine), the microcode sequencer rejects it typed.
        let prog = cape_isa::Program::builder()
            .li(Reg::T0, 4)
            .vsetvli(Reg::T1, Reg::T0)
            .vmul_vv(VReg::V1, VReg::V1, VReg::V2)
            .halt()
            .build()
            .unwrap();
        let id = e
            .submit(JobSpec::new("alias", prog, MainMemory::new()))
            .unwrap();
        e.run();
        let job = e.job_report(id).unwrap();
        match &job.error {
            Some(JobError::Processor { detail }) => {
                assert!(detail.contains("must not alias"), "{detail}")
            }
            other => panic!("expected a processor error, got {other:?}"),
        }
    }

    #[test]
    fn inject_fault_without_a_policy_is_a_typed_error_not_a_panic() {
        let mut e = engine();
        assert_eq!(
            e.inject_fault(0, cape_core::FaultKind::DeadBlock),
            Err(FaultApiError::NoFaultPolicy)
        );
        // With a policy the same call succeeds.
        let mut e = Engine::new(EngineConfig {
            fault: Some(FaultPolicy::quiescent()),
            ..EngineConfig::new(cape_core::CapeConfig::tiny(2))
        });
        assert_eq!(e.inject_fault(0, cape_core::FaultKind::DeadBlock), Ok(()));
    }

    #[test]
    fn drain_pending_hands_back_unserved_specs_for_resubmission() {
        let mut e = engine();
        let a = e.submit(add_job(8, 2).with_tag(70)).unwrap();
        let b = e.submit(add_job(8, 4).with_tag(71)).unwrap();
        let drained = e.drain_pending();
        assert_eq!(e.pending_jobs(), 0);
        assert_eq!(
            drained.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b],
            "drain returns admission order with the admitted ids"
        );
        // The drained specs are untouched: resubmitting them to another
        // engine produces exactly the outputs the jobs would have had,
        // and the stable tags survive the move into the new reports.
        let mut other = engine();
        let ids: Vec<JobId> = drained
            .into_iter()
            .map(|(_, spec)| other.submit(spec).unwrap())
            .collect();
        let report = other.run();
        assert_eq!(report.completed(), 2);
        assert_eq!(other.job_report(ids[0]).unwrap().tag, Some(70));
        assert_eq!(other.job_report(ids[1]).unwrap().tag, Some(71));
        for (i, scale) in [2u32, 4].iter().enumerate() {
            let out = other.memory(ids[i]).unwrap().read_u32_slice(0x4000, 8);
            let want: Vec<u32> = (0..8).map(|k| (k * scale + 1) * 2).collect();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn run_next_batch_steps_one_batch_at_a_time() {
        let mut e = engine();
        e.submit(add_job(4, 1)).unwrap(); // fingerprint A
        e.submit(add_job(8, 1)).unwrap(); // fingerprint B (different vl)
        assert!(e.run_next_batch());
        assert_eq!(e.pending_jobs(), 1, "one fingerprint served per step");
        assert!(e.run_next_batch());
        assert!(!e.run_next_batch(), "empty queue steps are no-ops");
        assert_eq!(e.report().completed(), 2);
    }

    #[test]
    fn faulting_job_restarts_and_reports_its_fault() {
        let mut e = engine();
        let id = e.submit(add_job(32, 2).with_fault_at(11)).unwrap();
        e.run();
        let job = e.job_report(id).unwrap();
        assert!(job.succeeded());
        assert_eq!(job.faults, 1, "the injected fault must be taken");
        assert_eq!(job.report.cp.vector, 4);
        let out = e.memory(id).unwrap().read_u32_slice(0x4000, 32);
        assert_eq!(out, (0..32).map(|i| (i * 2 + 1) * 2).collect::<Vec<u32>>());
    }
}

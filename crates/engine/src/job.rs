//! Job descriptions, identities and per-job results.

use std::hash::{Hash, Hasher};

use cape_core::RunReport;
use cape_isa::Program;
use cape_mem::MainMemory;
use serde::{Deserialize, Serialize};

/// Identifier handed out at admission. Job ids are unique for the
/// lifetime of an [`Engine`](crate::Engine) and double as the tenant id
/// under which the job's program-cache traffic is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One unit of work submitted to the engine: a CAPE vector program, the
/// private memory image holding its input vectors, and scheduling
/// metadata.
///
/// Each job owns its address space outright — co-scheduled tenants can
/// never alias each other's memory, so isolation reduces to the vector
/// register file, which the engine context-switches.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label carried into the report.
    pub name: String,
    /// The RISC-V vector program to run to its `halt`.
    pub program: Program,
    /// The job's private address space (inputs pre-written, outputs
    /// read back after completion).
    pub mem: MainMemory,
    /// Scheduling priority — higher runs first among jobs with equal
    /// deadline pressure.
    pub priority: u8,
    /// Optional absolute deadline in engine cycles; jobs with deadlines
    /// are served earliest-deadline-first ahead of priority.
    pub deadline: Option<u64>,
    /// Test hook: arm a Section V-C page fault at this element index
    /// for the job's first vector memory instruction.
    pub fault_at_element: Option<usize>,
    /// Caller-owned stable identity, carried verbatim into the
    /// [`JobReport`]. Engine-local [`JobId`]s change when a job is
    /// drained off one machine and resubmitted to another; a cluster
    /// stamps its own job id here so a migrated job's reports stay
    /// correlatable across machines.
    pub tag: Option<u64>,
}

impl JobSpec {
    /// A job with default scheduling metadata (priority 0, no deadline).
    pub fn new(name: impl Into<String>, program: Program, mem: MainMemory) -> Self {
        Self {
            name: name.into(),
            program,
            mem,
            priority: 0,
            deadline: None,
            fault_at_element: None,
            tag: None,
        }
    }

    /// Sets the priority (higher = more urgent).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline in engine cycles.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms a one-shot page fault at `elem` for the job's first vector
    /// memory instruction (Section V-C restart testing).
    pub fn with_fault_at(mut self, elem: usize) -> Self {
        self.fault_at_element = Some(elem);
        self
    }

    /// Stamps a stable caller-owned identity (see [`JobSpec::tag`]).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }
}

/// FNV-1a over a program's instruction stream — the batching key.
///
/// Two jobs with equal fingerprints run the identical static code, so
/// their vector instructions compile to the same cached microprograms
/// and co-scheduling them turns every lookup after the first into a
/// cross-tenant cache hit.
pub fn fingerprint(program: &Program) -> u64 {
    let mut h = Fnv1a::default();
    for instr in program.iter() {
        instr.hash(&mut h);
    }
    h.finish()
}

/// Minimal FNV-1a 64-bit [`Hasher`], so `fingerprint` is stable and
/// dependency-free (the std `DefaultHasher` is explicitly unspecified
/// across releases).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Why a job failed, typed so a caller can tell a program bug
/// ([`JobError::Processor`]) from machine-side resource exhaustion
/// (watchdog, retries, spares) and decide whether resubmission can
/// possibly help.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a job error distinguishes program bugs from recoverable machine faults"]
pub enum JobError {
    /// The control processor terminated the run with a typed error —
    /// bad address, instruction budget, or a vector instruction the
    /// microcode sequencer rejected. Deterministic: resubmitting the
    /// same program will fail the same way.
    Processor {
        /// `Display` form of the [`CpError`](cape_cp::CpError).
        detail: String,
    },
    /// The slice watchdog kept firing: every checkpointed re-execution
    /// exhausted its fuel without reaching a halt or sync point.
    WatchdogTimeout {
        /// Re-executions attempted before giving up.
        retries: u32,
    },
    /// Injected hardware faults corrupted every attempt at one slice;
    /// the retry bound was reached with detections still latching.
    FaultRetriesExhausted {
        /// Re-executions attempted before giving up.
        retries: u32,
    },
    /// Faulty blocks could not be remapped because the CSB is out of
    /// spare blocks. The machine is permanently degraded; every
    /// subsequent job on it fails the same way.
    SparesExhausted {
        /// Faulty blocks still pending quarantine.
        pending_blocks: usize,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Processor { detail } => write!(f, "processor error: {detail}"),
            JobError::WatchdogTimeout { retries } => {
                write!(f, "slice watchdog fired after {retries} retries")
            }
            JobError::FaultRetriesExhausted { retries } => {
                write!(f, "hardware faults persisted across {retries} retries")
            }
            JobError::SparesExhausted { pending_blocks } => {
                write!(
                    f,
                    "{pending_blocks} faulty blocks pending with no spares left"
                )
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Everything the engine measured about one completed job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The id assigned at admission.
    pub id: JobId,
    /// The stable caller-owned identity from [`JobSpec::tag`], if any —
    /// constant across drain/resubmit migrations while `id` is not.
    pub tag: Option<u64>,
    /// The label from the [`JobSpec`].
    pub name: String,
    /// The program fingerprint the scheduler batched on.
    pub fingerprint: u64,
    /// Priority the job ran with.
    pub priority: u8,
    /// Deadline the job was admitted with, if any.
    pub deadline: Option<u64>,
    /// Engine cycle at which the job was admitted to the queue.
    pub admit_cycle: u64,
    /// Engine cycle at which the job's first slice began.
    pub start_cycle: u64,
    /// Engine cycle at which the job halted (or failed).
    pub finish_cycle: u64,
    /// Slices the job ran in.
    pub slices: u64,
    /// Times the job was preempted at a sync point (slices that did not
    /// end in `halt`).
    pub preemptions: u64,
    /// The job's own execution report: cycles are the job's private CP
    /// clock (as if it ran alone), activity counters are the deltas
    /// attributed to this job's slices only.
    pub report: RunReport,
    /// Page faults this job's vector memory instructions took.
    pub faults: u64,
    /// Checkpointed slice re-executions forced by the watchdog or by
    /// hardware fault detections (zero outside fault mode).
    pub retries: u64,
    /// Why the job failed; `None` for a clean halt.
    pub error: Option<JobError>,
}

impl JobReport {
    /// Cycles spent waiting between admission and first execution.
    pub fn queue_cycles(&self) -> u64 {
        self.start_cycle - self.admit_cycle
    }

    /// Whether the job finished by its deadline (`None` if it had none).
    pub fn met_deadline(&self) -> Option<bool> {
        self.deadline.map(|d| self.finish_cycle <= d)
    }

    /// True if the job halted cleanly.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_isa::assemble;

    #[test]
    fn fingerprint_is_stable_and_code_sensitive() {
        let a = assemble("li t0, 4\nvsetvli t1, t0\nhalt").unwrap();
        let b = assemble("li t0, 4\nvsetvli t1, t0\nhalt").unwrap();
        let c = assemble("li t0, 5\nvsetvli t1, t0\nhalt").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn spec_builders_set_metadata() {
        let prog = assemble("halt").unwrap();
        let spec = JobSpec::new("j", prog, MainMemory::new())
            .with_priority(7)
            .with_deadline(1_000)
            .with_fault_at(3);
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.deadline, Some(1_000));
        assert_eq!(spec.fault_at_element, Some(3));
    }
}

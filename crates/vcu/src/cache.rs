//! The VCU's microcode program cache.
//!
//! Compiling a [`VectorOp`] to its [`CompiledOp`] broadcast form is a pure
//! function of the operation and the element width, so the VCU memoizes
//! it: loop bodies re-issue the same handful of static vector
//! instructions thousands of times, and every repeat skips compilation
//! and goes straight to the one-fan-out broadcast path. This models the
//! chain controllers' truth-table memory (TTM) staying warm across
//! iterations — only a *new* instruction shape pays the command-bus
//! distribution of a fresh truth table.

use std::collections::HashMap;

use cape_ucode::{CompiledOp, VectorOp};

/// Cache key: the full decoded operation (register indices *and* scalar
/// operands — scalar bits specialize the emitted program) plus SEW.
type Key = (VectorOp, u32);

#[derive(Debug, Clone)]
struct Entry {
    compiled: CompiledOp,
    /// Last-touch tick, for LRU eviction.
    stamp: u64,
}

/// An LRU cache of compiled microop programs keyed by `(VectorOp, SEW)`.
///
/// Kept outside [`Vcu`](crate::Vcu) (which stays a `Copy` timing model)
/// and threaded into [`Vcu::execute_sew_cached`](crate::Vcu) by the owner
/// of the execution loop.
#[derive(Debug, Clone)]
pub struct ProgramCache {
    entries: HashMap<Key, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ProgramCache {
    /// Default entry count. Sized so scalar-specialized sweeps — e.g.
    /// histogram's 256-bucket `vmseq.vx` inner loop, one program per
    /// bucket value — still fit without LRU thrash; compiled programs are
    /// a few dozen microops, so this is cheap.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A cache holding at most `capacity` compiled programs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "program cache needs at least one entry");
        Self {
            entries: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached program for `(op, sew_bits)`, compiling (and, at
    /// capacity, evicting the least recently used entry) on a miss.
    pub fn get_or_compile(&mut self, op: &VectorOp, sew_bits: u32) -> &CompiledOp {
        self.tick += 1;
        let key = (*op, sew_bits);
        if self.entries.contains_key(&key) {
            self.hits += 1;
            let entry = self.entries.get_mut(&key).expect("key just checked");
            entry.stamp = self.tick;
            return &self.entries[&key].compiled;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("cache at capacity is non-empty");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        let compiled = CompiledOp::compile(op, sew_bits as usize);
        self.entries.insert(
            key,
            Entry {
                compiled,
                stamp: self.tick,
            },
        );
        &self.entries[&key].compiled
    }

    /// Lookups that found a compiled program.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by LRU eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: VectorOp = VectorOp::Add {
        vd: 3,
        vs1: 1,
        vs2: 2,
    };
    const SUB: VectorOp = VectorOp::Sub {
        vd: 4,
        vs1: 1,
        vs2: 2,
    };

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(&ADD, 32);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.get_or_compile(&ADD, 32);
        cache.get_or_compile(&ADD, 32);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keyed_by_sew() {
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(&ADD, 32);
        let narrow = cache.get_or_compile(&ADD, 8).clone();
        assert_eq!(cache.misses(), 2, "same op at a new SEW must recompile");
        assert_eq!(narrow.width(), 8);
        assert!(narrow.program().len() < cache.get_or_compile(&ADD, 32).program().len());
    }

    #[test]
    fn keyed_by_scalar_operand() {
        // Scalar bits specialize the program, so they are part of the key.
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: 0,
            },
            32,
        );
        cache.get_or_compile(
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: 1,
            },
            32,
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ProgramCache::new(2);
        cache.get_or_compile(&ADD, 32);
        cache.get_or_compile(&SUB, 32);
        cache.get_or_compile(&ADD, 32); // ADD is now the most recent
        cache.get_or_compile(&ADD, 8); // at capacity: SUB is the LRU victim
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(&ADD, 32);
        assert_eq!(cache.hits(), 2, "ADD@32 must have survived eviction");
        cache.get_or_compile(&SUB, 32);
        assert_eq!(cache.misses(), 4, "SUB was evicted and recompiles");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        ProgramCache::new(0);
    }
}

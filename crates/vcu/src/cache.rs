//! The VCU's microcode program cache.
//!
//! Compiling a [`VectorOp`] to its [`CompiledOp`] broadcast form is a pure
//! function of the operation and the element width, so the VCU memoizes
//! it: loop bodies re-issue the same handful of static vector
//! instructions thousands of times, and every repeat skips compilation
//! and goes straight to the one-fan-out broadcast path. This models the
//! chain controllers' truth-table memory (TTM) staying warm across
//! iterations — only a *new* instruction shape pays the command-bus
//! distribution of a fresh truth table.
//!
//! # Fusion windows
//!
//! The cache also memoizes *fused windows*: several back-to-back vector
//! instructions compiled into one super-program
//! ([`fuse_window`](cape_ucode::fuse_window)) and keyed by an FNV-1a
//! fingerprint over the `(VectorOp, SEW)` sequence
//! ([`window_fingerprint`](cape_ucode::window_fingerprint)). The
//! fingerprint is SEW-aware — every op hashes with its own width, so
//! mixed-SEW windows (a `vsetvli` that changes only the element width is
//! not a barrier) key distinct super-programs. Because 64 bits of hash
//! can collide, each window entry also stores its full key sequence and
//! a lookup verifies it on hit: a collision counts as a miss and re-runs
//! the fusion pass rather than ever serving the wrong super-program.
//! Loop bodies re-issue the same window every iteration, and
//! multi-tenant fingerprint batching in the engine replays the same
//! window across jobs, so the fusion pass runs once per window *shape*,
//! not once per execution.
//!
//! Host-side cost per N-instruction window, before vs after fusion:
//!
//! | per window of N ops       | per-op path | fused window |
//! |---------------------------|-------------|--------------|
//! | pool broadcasts (fan-out) | N           | 1            |
//! | joins (fan-in)            | N           | 1            |
//! | passes over `ChainBlock`s | N           | 1            |
//! | plan steps executed       | Σ plan_len  | ≤ Σ plan_len (cross-op peepholes) |
//! | cache lookups             | N           | N + 1 (per-op entries feed the window builder) |
//! | modeled CSB cycles/energy | Σ per-op    | Σ per-op (bit-identical ledger) |

use std::collections::HashMap;

use cape_ucode::{CompiledOp, SequencerError, VectorOp};

/// Cache key: the full decoded operation (register indices *and* scalar
/// operands — scalar bits specialize the emitted program) plus SEW.
type Key = (VectorOp, u32);

#[derive(Debug, Clone)]
struct Entry {
    compiled: CompiledOp,
    /// Last-touch tick, for LRU eviction.
    stamp: u64,
    /// Tenant that paid the compilation — hits from other tenants count
    /// as cross-tenant amortization.
    owner: u32,
}

#[derive(Debug, Clone)]
struct WindowEntry {
    compiled: CompiledOp,
    /// The full `(VectorOp, SEW)` sequence the fingerprint summarizes,
    /// verified on every hit so a 64-bit collision can never serve the
    /// wrong super-program.
    key: Box<[Key]>,
    stamp: u64,
    owner: u32,
}

/// Per-tenant cache traffic, for multi-tenant accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Lookups by this tenant served from the cache.
    pub hits: u64,
    /// Lookups by this tenant that had to compile.
    pub misses: u64,
    /// Fused-window lookups by this tenant served from the cache.
    pub fused_hits: u64,
    /// Fused-window lookups by this tenant that had to run the fusion
    /// pass.
    pub fused_misses: u64,
    /// Fused windows this tenant compiled that were displaced by LRU
    /// eviction (attributed to the tenant that paid the fusion, not the
    /// one whose insert displaced it).
    pub fused_evictions: u64,
}

/// An LRU cache of compiled microop programs keyed by `(VectorOp, SEW)`.
///
/// Kept outside [`Vcu`](crate::Vcu) (which stays a `Copy` timing model)
/// and threaded into [`Vcu::execute_sew_cached`](crate::Vcu) by the owner
/// of the execution loop.
#[derive(Debug, Clone)]
pub struct ProgramCache {
    entries: HashMap<Key, Entry>,
    /// Fused windows keyed by the FNV fingerprint of their
    /// `(VectorOp, SEW)` sequence, LRU-bounded at the same capacity as
    /// the per-op map (windows are strictly rarer than ops).
    windows: HashMap<u64, WindowEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    window_hits: u64,
    window_misses: u64,
    window_evictions: u64,
    /// Fingerprint hits whose stored key differed from the probe key —
    /// 64-bit collisions caught by full-key verification.
    window_collisions: u64,
    /// Tenant attributed with subsequent lookups (0 in single-tenant use).
    current_tenant: u32,
    /// Hits served by an entry a *different* tenant compiled.
    cross_tenant_hits: u64,
    /// Window hits served by a fused program a *different* tenant built.
    cross_tenant_window_hits: u64,
    tenant_stats: HashMap<u32, TenantCacheStats>,
}

impl ProgramCache {
    /// Default entry count. Sized so scalar-specialized sweeps — e.g.
    /// histogram's 256-bucket `vmseq.vx` inner loop, one program per
    /// bucket value — still fit without LRU thrash; compiled programs are
    /// a few dozen microops, so this is cheap.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A cache holding at most `capacity` compiled programs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "program cache needs at least one entry");
        Self {
            entries: HashMap::with_capacity(capacity),
            windows: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            window_hits: 0,
            window_misses: 0,
            window_evictions: 0,
            window_collisions: 0,
            current_tenant: 0,
            cross_tenant_hits: 0,
            cross_tenant_window_hits: 0,
            tenant_stats: HashMap::new(),
        }
    }

    /// Attributes subsequent lookups to `tenant`. Entries remember the
    /// tenant that compiled them, so hits by other tenants are counted as
    /// cross-tenant amortization. Single-tenant users never call this and
    /// everything lands on tenant 0.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.current_tenant = tenant;
    }

    /// Tenant currently attributed with lookups.
    pub fn tenant(&self) -> u32 {
        self.current_tenant
    }

    /// Returns the cached program for `(op, sew_bits)`, compiling (and, at
    /// capacity, evicting the least recently used entry) on a miss.
    ///
    /// # Panics
    ///
    /// Panics if the operation cannot be compiled; use
    /// [`ProgramCache::try_get_or_compile`] for the non-panicking form.
    pub fn get_or_compile(&mut self, op: &VectorOp, sew_bits: u32) -> &CompiledOp {
        match self.try_get_or_compile(op, sew_bits) {
            Ok(compiled) => compiled,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns the cached program for `(op, sew_bits)`, compiling on a
    /// miss, and surfacing malformed operations as a typed error instead
    /// of panicking (a failed compile is not counted or cached).
    ///
    /// # Errors
    ///
    /// Propagates the [`SequencerError`] from
    /// [`CompiledOp::try_compile`].
    pub fn try_get_or_compile(
        &mut self,
        op: &VectorOp,
        sew_bits: u32,
    ) -> Result<&CompiledOp, SequencerError> {
        let key = (*op, sew_bits);
        if self.entries.contains_key(&key) {
            self.tick += 1;
            self.hits += 1;
            self.tenant_stats
                .entry(self.current_tenant)
                .or_default()
                .hits += 1;
            let entry = self.entries.get_mut(&key).expect("key just checked");
            entry.stamp = self.tick;
            if entry.owner != self.current_tenant {
                self.cross_tenant_hits += 1;
            }
            return Ok(&self.entries[&key].compiled);
        }
        // Compile before touching any counter: a malformed op must leave
        // the cache statistics exactly as it found them.
        let compiled = CompiledOp::try_compile(op, sew_bits as usize)?;
        self.tick += 1;
        self.misses += 1;
        self.tenant_stats
            .entry(self.current_tenant)
            .or_default()
            .misses += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("cache at capacity is non-empty");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry {
                compiled,
                stamp: self.tick,
                owner: self.current_tenant,
            },
        );
        Ok(&self.entries[&key].compiled)
    }

    /// Returns the fused window cached under `fingerprint`, if any,
    /// counting a window hit or miss. The stored `(VectorOp, SEW)` key
    /// sequence is compared against `key` on a fingerprint match: a
    /// mismatch is a 64-bit collision and is served as a miss, never as
    /// the colliding entry's super-program. On a miss the caller runs
    /// the fusion pass and stores the result with
    /// [`ProgramCache::window_insert`].
    ///
    /// Returns an owned clone (cheap — the program's op list and plan
    /// are shared `Arc`s) so the caller can execute it while the cache
    /// stays borrowable.
    pub fn window_lookup(&mut self, fingerprint: u64, key: &[Key]) -> Option<CompiledOp> {
        self.tick += 1;
        let stats = self.tenant_stats.entry(self.current_tenant).or_default();
        match self.windows.get_mut(&fingerprint) {
            Some(entry) if entry.key.as_ref() == key => {
                self.window_hits += 1;
                stats.fused_hits += 1;
                entry.stamp = self.tick;
                if entry.owner != self.current_tenant {
                    self.cross_tenant_window_hits += 1;
                }
                Some(entry.compiled.clone())
            }
            found => {
                if found.is_some() {
                    self.window_collisions += 1;
                }
                self.window_misses += 1;
                stats.fused_misses += 1;
                None
            }
        }
    }

    /// Stores a freshly fused window under `fingerprint`, evicting the
    /// least recently used window at capacity. Evictions are attributed
    /// to the tenant that built the evicted window. An insert over a
    /// colliding fingerprint replaces the old entry (latest wins — the
    /// displaced window simply re-fuses if its shape recurs).
    pub fn window_insert(&mut self, fingerprint: u64, key: &[Key], compiled: CompiledOp) {
        self.tick += 1;
        if !self.windows.contains_key(&fingerprint) && self.windows.len() >= self.capacity {
            let victim = self
                .windows
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("window cache at capacity is non-empty");
            let evicted = self.windows.remove(&victim).expect("victim just found");
            self.window_evictions += 1;
            self.tenant_stats
                .entry(evicted.owner)
                .or_default()
                .fused_evictions += 1;
        }
        self.windows.insert(
            fingerprint,
            WindowEntry {
                compiled,
                key: key.into(),
                stamp: self.tick,
                owner: self.current_tenant,
            },
        );
    }

    /// Lookups that found a compiled program.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by LRU eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fused-window lookups served from the cache.
    pub fn window_hits(&self) -> u64 {
        self.window_hits
    }

    /// Fused-window lookups that had to run the fusion pass.
    pub fn window_misses(&self) -> u64 {
        self.window_misses
    }

    /// Fused windows displaced by LRU eviction.
    pub fn window_evictions(&self) -> u64 {
        self.window_evictions
    }

    /// Fingerprint matches rejected by full-key verification — 64-bit
    /// collisions that would have served the wrong super-program.
    pub fn window_collisions(&self) -> u64 {
        self.window_collisions
    }

    /// Window hits served by a fused program a different tenant built.
    pub fn cross_tenant_window_hits(&self) -> u64 {
        self.cross_tenant_window_hits
    }

    /// Number of fused windows currently cached.
    pub fn windows_len(&self) -> usize {
        self.windows.len()
    }

    /// Hits served by an entry compiled by a different tenant — the
    /// cross-tenant amortization a shared cache buys.
    pub fn cross_tenant_hits(&self) -> u64 {
        self.cross_tenant_hits
    }

    /// Fraction of hits that were served by another tenant's compilation
    /// (0 when there were no hits).
    pub fn cross_tenant_hit_rate(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.cross_tenant_hits as f64 / self.hits as f64
        }
    }

    /// Cache traffic attributed to `tenant` (zeroes if never seen).
    pub fn tenant_stats(&self, tenant: u32) -> TenantCacheStats {
        self.tenant_stats.get(&tenant).copied().unwrap_or_default()
    }

    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: VectorOp = VectorOp::Add {
        vd: 3,
        vs1: 1,
        vs2: 2,
    };
    const SUB: VectorOp = VectorOp::Sub {
        vd: 4,
        vs1: 1,
        vs2: 2,
    };

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(&ADD, 32);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.get_or_compile(&ADD, 32);
        cache.get_or_compile(&ADD, 32);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keyed_by_sew() {
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(&ADD, 32);
        let narrow = cache.get_or_compile(&ADD, 8).clone();
        assert_eq!(cache.misses(), 2, "same op at a new SEW must recompile");
        assert_eq!(narrow.width(), 8);
        assert!(narrow.program().len() < cache.get_or_compile(&ADD, 32).program().len());
    }

    #[test]
    fn keyed_by_scalar_operand() {
        // Scalar bits specialize the program, so they are part of the key.
        let mut cache = ProgramCache::new(8);
        cache.get_or_compile(
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: 0,
            },
            32,
        );
        cache.get_or_compile(
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: 1,
            },
            32,
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ProgramCache::new(2);
        cache.get_or_compile(&ADD, 32);
        cache.get_or_compile(&SUB, 32);
        cache.get_or_compile(&ADD, 32); // ADD is now the most recent
        cache.get_or_compile(&ADD, 8); // at capacity: SUB is the LRU victim
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(&ADD, 32);
        assert_eq!(cache.hits(), 2, "ADD@32 must have survived eviction");
        cache.get_or_compile(&SUB, 32);
        assert_eq!(cache.misses(), 4, "SUB was evicted and recompiles");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        ProgramCache::new(0);
    }

    #[test]
    fn cross_tenant_hits_attribute_to_the_compiling_tenant() {
        let mut cache = ProgramCache::new(8);
        cache.set_tenant(1);
        cache.get_or_compile(&ADD, 32); // tenant 1 compiles
        cache.get_or_compile(&ADD, 32); // same-tenant hit
        cache.set_tenant(2);
        cache.get_or_compile(&ADD, 32); // cross-tenant hit
        cache.get_or_compile(&SUB, 32); // tenant 2 compiles
        cache.set_tenant(1);
        cache.get_or_compile(&SUB, 32); // cross-tenant hit

        assert_eq!(cache.cross_tenant_hits(), 2);
        assert_eq!(cache.hits(), 3);
        assert!((cache.cross_tenant_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            cache.tenant_stats(1),
            TenantCacheStats {
                hits: 2,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(
            cache.tenant_stats(2),
            TenantCacheStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(cache.tenant_stats(99), TenantCacheStats::default());
    }

    #[test]
    fn window_cache_counts_hits_misses_and_tenants() {
        use cape_ucode::{fuse_window, window_fingerprint};
        let mut cache = ProgramCache::new(8);
        let seq = [(ADD, 32u32), (SUB, 32u32)];
        let fp = window_fingerprint(&seq);

        cache.set_tenant(1);
        assert!(cache.window_lookup(fp, &seq).is_none(), "cold cache misses");
        let parts = [
            cache.get_or_compile(&ADD, 32).clone(),
            cache.get_or_compile(&SUB, 32).clone(),
        ];
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), false);
        cache.window_insert(fp, &seq, fused.clone());
        assert_eq!(cache.window_lookup(fp, &seq).as_ref(), Some(&fused));
        assert_eq!((cache.window_hits(), cache.window_misses()), (1, 1));
        assert_eq!(cache.cross_tenant_window_hits(), 0);

        cache.set_tenant(2);
        assert!(cache.window_lookup(fp, &seq).is_some());
        assert_eq!(cache.cross_tenant_window_hits(), 1);
        assert_eq!(cache.tenant_stats(1).fused_hits, 1);
        assert_eq!(cache.tenant_stats(1).fused_misses, 1);
        assert_eq!(cache.tenant_stats(2).fused_hits, 1);
        assert_eq!(cache.windows_len(), 1);
    }

    #[test]
    fn window_evictions_attribute_to_the_building_tenant() {
        use cape_ucode::{fuse_window, window_fingerprint};
        let mut cache = ProgramCache::new(1);
        let a = [(ADD, 32u32), (SUB, 32u32)];
        let b = [(SUB, 32u32), (ADD, 32u32)];
        let parts = [
            cache.get_or_compile(&ADD, 32).clone(),
            cache.get_or_compile(&SUB, 32).clone(),
        ];
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), false);

        cache.set_tenant(1);
        cache.window_insert(window_fingerprint(&a), &a, fused.clone());
        cache.set_tenant(2);
        cache.window_insert(window_fingerprint(&b), &b, fused.clone());
        assert_eq!(cache.window_evictions(), 1);
        assert_eq!(cache.tenant_stats(1).fused_evictions, 1);
        assert_eq!(cache.tenant_stats(2).fused_evictions, 0);
        assert_eq!(cache.windows_len(), 1);
        // Re-inserting an existing fingerprint never evicts.
        cache.window_insert(window_fingerprint(&b), &b, fused);
        assert_eq!(cache.window_evictions(), 1);
    }

    #[test]
    fn fingerprint_collisions_never_serve_the_wrong_window() {
        use cape_ucode::fuse_window;
        let mut cache = ProgramCache::new(8);
        let parts = [
            cache.get_or_compile(&ADD, 32).clone(),
            cache.get_or_compile(&SUB, 32).clone(),
        ];
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), false);

        // Force a collision: insert under some fingerprint with key `a`,
        // then probe the same fingerprint with a different key — as if
        // two distinct windows FNV-hashed to the same 64 bits.
        let a = [(ADD, 32u32), (SUB, 32u32)];
        let b = [(SUB, 32u32), (ADD, 32u32)];
        let fp = 0xdead_beef_u64;
        cache.window_insert(fp, &a, fused.clone());
        assert_eq!(cache.window_lookup(fp, &a).as_ref(), Some(&fused));
        assert!(
            cache.window_lookup(fp, &b).is_none(),
            "key verification must reject the colliding probe"
        );
        assert_eq!(cache.window_collisions(), 1);
        assert_eq!((cache.window_hits(), cache.window_misses()), (1, 1));
        // The colliding window re-fuses and replaces the entry.
        cache.window_insert(fp, &b, fused.clone());
        assert_eq!(cache.window_lookup(fp, &b).as_ref(), Some(&fused));
        assert!(cache.window_lookup(fp, &a).is_none(), "latest insert wins");
        assert_eq!(cache.window_collisions(), 2);
    }

    #[test]
    fn failed_compiles_leave_counters_untouched() {
        let mut cache = ProgramCache::new(8);
        assert!(cache.try_get_or_compile(&ADD, 24).is_err());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
        assert!(cache.try_get_or_compile(&ADD, 32).is_ok());
        assert_eq!(cache.misses(), 1);
    }
}

//! CAPE's Vector Control Unit (VCU, Section V-D of the paper).
//!
//! The VCU receives committed vector instructions from the control
//! processor, loads the corresponding truth table into the (distributed)
//! chain controllers over the pipelined global command bus, and sequences
//! the CSB microoperations. This crate layers the *timing* model on top
//! of `cape-ucode`'s functional sequencer:
//!
//! * **Instruction cycles** come from Table I's closed-form counts for
//!   the instructions the paper lists (e.g. `vadd` = 8n+2), and from the
//!   emulator's exact microop count for the rest (`.vx` specializations,
//!   shifts, `vcpop`, …).
//! * **Global command distribution** adds a constant pipelined overhead
//!   per vector instruction, growing with the H-tree depth (i.e. with
//!   the chain count) — the effect that caps the text-processing
//!   applications' scalability in Section VI-E.
//! * **Reductions** add the reduction-tree drain latency
//!   (5 pipeline stages at 1,024 chains, Section VI-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;

use cape_csb::{Csb, MicroOpStats, ReductionTree};
use cape_ucode::metrics::{extension_cycles, paper_row};
use cape_ucode::{Sequencer, SequencerError, VectorOp};
use serde::{Deserialize, Serialize};

pub use cache::{ProgramCache, TenantCacheStats};

/// Default operand width CAPE's chains are configured for.
pub const OPERAND_BITS: u32 = 32;

/// Result of executing one vector instruction through the VCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcuResult {
    /// Modeled CSB cycles, including command distribution and reduction
    /// drain.
    pub cycles: u64,
    /// Scalar result for reductions and mask queries.
    pub scalar: Option<i64>,
    /// Microops the instruction emitted (energy accounting input).
    pub stats: MicroOpStats,
}

/// The vector control unit's timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vcu {
    cmd_dist_cycles: u64,
    tree_stages: u64,
}

impl Vcu {
    /// Builds the VCU model for a CSB with `num_chains` chains.
    ///
    /// The command-distribution overhead models the pipelined Metal-4
    /// H-tree from the global control unit to every chain controller: one
    /// pipeline stage per two tree levels plus setup, so it grows with
    /// log2 of the chain count.
    pub fn new(num_chains: usize) -> Self {
        assert!(num_chains > 0, "VCU needs at least one chain");
        let levels = usize::BITS - (num_chains - 1).leading_zeros();
        Self {
            cmd_dist_cycles: u64::from(levels.div_ceil(2)) + 2,
            tree_stages: u64::from(ReductionTree::new(num_chains).stages()),
        }
    }

    /// Constant command-distribution overhead charged per vector
    /// instruction.
    pub fn cmd_dist_cycles(&self) -> u64 {
        self.cmd_dist_cycles
    }

    /// Reduction-tree pipeline depth.
    pub fn tree_stages(&self) -> u64 {
        self.tree_stages
    }

    /// Executes a vector operation on the CSB at the default 32-bit
    /// element width and returns its modeled cycle cost.
    ///
    /// # Panics
    ///
    /// Propagates the sequencer's panics for invalid register aliasing.
    pub fn execute(&self, csb: &mut Csb, op: &VectorOp) -> VcuResult {
        self.execute_sew(csb, op, OPERAND_BITS)
    }

    /// Executes a vector operation at the given element width (SEW = 8,
    /// 16 or 32); narrow elements walk fewer bit positions (Section V-A).
    ///
    /// # Panics
    ///
    /// Propagates the sequencer's panics for invalid register aliasing or
    /// an unsupported width.
    pub fn execute_sew(&self, csb: &mut Csb, op: &VectorOp, sew_bits: u32) -> VcuResult {
        let outcome = Sequencer::with_width(csb, sew_bits as usize).execute(op);
        self.finish(op, outcome, sew_bits)
    }

    /// Executes a vector operation through the program cache: the compiled
    /// microop program is looked up (compiling on a miss) and broadcast to
    /// the CSB with one fan-out for the whole program. Bit-identical
    /// results and cycle model to [`Vcu::execute_sew`]; only the host-side
    /// throughput differs.
    ///
    /// # Panics
    ///
    /// Propagates the sequencer's panics for invalid register aliasing or
    /// an unsupported width.
    pub fn execute_sew_cached(
        &self,
        csb: &mut Csb,
        op: &VectorOp,
        sew_bits: u32,
        cache: &mut ProgramCache,
    ) -> VcuResult {
        let compiled = cache.get_or_compile(op, sew_bits);
        let outcome = Sequencer::with_width(csb, sew_bits as usize).run_program(compiled);
        self.finish(op, outcome, sew_bits)
    }

    /// Non-panicking form of [`Vcu::execute_sew_cached`]: malformed
    /// operations (unsupported SEW, destination aliasing a source) surface
    /// as a typed [`SequencerError`] and leave the CSB untouched, so a
    /// long-running host can fail the one bad job and keep serving.
    ///
    /// # Errors
    ///
    /// Propagates the [`SequencerError`] from
    /// [`ProgramCache::try_get_or_compile`].
    pub fn try_execute_sew_cached(
        &self,
        csb: &mut Csb,
        op: &VectorOp,
        sew_bits: u32,
        cache: &mut ProgramCache,
    ) -> Result<VcuResult, SequencerError> {
        let compiled = cache.try_get_or_compile(op, sew_bits)?;
        let outcome = Sequencer::with_width(csb, sew_bits as usize).run_program(compiled);
        Ok(self.finish(op, outcome, sew_bits))
    }

    /// Modeled cycle cost of one instruction given its (data-independent)
    /// microop statistics — exactly what [`Vcu::execute_sew`] would
    /// charge, without executing anything.
    ///
    /// Microop emission never inspects CSB data, so the statistics of a
    /// compiled program
    /// ([`MicroProgram::stats`](cape_csb::MicroProgram::stats)) fully
    /// determine the instruction's timing. This is what lets a fusion
    /// window charge each buffered instruction's cycles at issue while
    /// deferring its broadcast: the deferred execution can't change the
    /// bill.
    pub fn plan_cycles(&self, op: &VectorOp, stats: &MicroOpStats, sew_bits: u32) -> u64 {
        let base = self.base_cycles(op, stats, sew_bits);
        let reduction_drain = if self.uses_reduction_tree(op) {
            self.tree_stages
        } else {
            0
        };
        base + reduction_drain + self.cmd_dist_cycles
    }

    /// Layers the timing model over a sequencer outcome.
    fn finish(&self, op: &VectorOp, outcome: cape_ucode::ExecOutcome, sew_bits: u32) -> VcuResult {
        VcuResult {
            cycles: self.plan_cycles(op, &outcome.stats, sew_bits),
            scalar: outcome.scalar,
            stats: outcome.stats,
        }
    }

    fn uses_reduction_tree(&self, op: &VectorOp) -> bool {
        matches!(
            op,
            VectorOp::RedSum { .. } | VectorOp::Cpop { .. } | VectorOp::First { .. }
        )
    }

    /// Cycle count before distribution/reduction overheads: Table I's
    /// formula where the paper gives one for this exact instruction form,
    /// the emulator's microop count otherwise.
    fn base_cycles(&self, op: &VectorOp, stats: &MicroOpStats, sew_bits: u32) -> u64 {
        let kind = op.kind();
        let table_applies = match op {
            // Table I lists the .vv forms of these...
            VectorOp::Add { .. }
            | VectorOp::Sub { .. }
            | VectorOp::Mul { .. }
            | VectorOp::And { .. }
            | VectorOp::Or { .. }
            | VectorOp::Xor { .. }
            | VectorOp::Mseq { .. }
            | VectorOp::Mslt { .. }
            | VectorOp::Merge { .. }
            | VectorOp::RedSum { .. } => true,
            // ...and vmseq.vx explicitly.
            VectorOp::MseqScalar { .. } => true,
            _ => false,
        };
        if table_applies {
            if let Some(row) = paper_row(kind) {
                return row.total_cycles.eval(sew_bits);
            }
        }
        if let Some(formula) = extension_cycles(kind) {
            return formula.eval(sew_bits);
        }
        // Scalar-specialized forms and anything else: the emulator's
        // exact microop count (each microop is one CSB cycle).
        stats.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_csb::CsbGeometry;

    fn csb() -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(1024));
        let a: Vec<u32> = (0..256).collect();
        csb.write_vector(1, &a);
        csb.write_vector(2, &a);
        csb
    }

    #[test]
    fn paper_configuration_overheads() {
        let vcu = Vcu::new(1024);
        assert_eq!(vcu.tree_stages(), 5);
        assert_eq!(vcu.cmd_dist_cycles(), 7);
        // CAPE131k: deeper tree, longer distribution.
        let big = Vcu::new(4096);
        assert!(big.cmd_dist_cycles() > vcu.cmd_dist_cycles());
        assert_eq!(big.tree_stages(), 6);
    }

    #[test]
    fn vadd_uses_table_one_cycles() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let r = vcu.execute(
            &mut csb,
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        // 8n+2 = 258 plus command distribution.
        assert_eq!(r.cycles, 258 + vcu.cmd_dist_cycles());
    }

    #[test]
    fn logic_is_three_cycles_plus_distribution() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let r = vcu.execute(
            &mut csb,
            &VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(r.cycles, 3 + vcu.cmd_dist_cycles());
    }

    #[test]
    fn redsum_adds_tree_drain() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let r = vcu.execute(&mut csb, &VectorOp::RedSum { vd: 3, vs: 1 });
        assert_eq!(r.cycles, 32 + 5 + vcu.cmd_dist_cycles());
        assert_eq!(r.scalar, Some((0..256).sum::<i64>()));
    }

    #[test]
    fn redsum_is_roughly_eight_times_faster_than_vadd() {
        // Section V-G: "a vector redsum instruction is thus eight times
        // faster than an element-wise vector addition".
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let add = vcu
            .execute(
                &mut csb,
                &VectorOp::Add {
                    vd: 3,
                    vs1: 1,
                    vs2: 2,
                },
            )
            .cycles;
        let red = vcu
            .execute(&mut csb, &VectorOp::RedSum { vd: 4, vs: 1 })
            .cycles;
        let ratio = add as f64 / red as f64;
        assert!((4.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scalar_forms_use_measured_cycles() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        // Adding zero specializes away most truth-table entries.
        let r0 = vcu.execute(
            &mut csb,
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: 0,
            },
        );
        let r1 = vcu.execute(
            &mut csb,
            &VectorOp::AddScalar {
                vd: 3,
                vs1: 1,
                rs: u32::MAX,
            },
        );
        assert!(r0.cycles < r1.cycles, "rs=0 must be cheaper than rs=-1");
        let vv = vcu.execute(
            &mut csb,
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        assert!(r1.cycles <= vv.cycles + vcu.cmd_dist_cycles());
    }

    #[test]
    fn mul_is_quadratic() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let r = vcu.execute(
            &mut csb,
            &VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(r.cycles, 3968 + vcu.cmd_dist_cycles());
        // Section VI-B: vmul performs >3,000 searches and updates.
        assert!(r.stats.searches() + r.stats.updates() > 3000);
    }

    #[test]
    fn narrow_widths_scale_table_one_cycles() {
        let vcu = Vcu::new(1024);
        let mut csb = csb();
        let r8 = vcu.execute_sew(
            &mut csb,
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            8,
        );
        let r32 = vcu.execute_sew(
            &mut csb,
            &VectorOp::Add {
                vd: 4,
                vs1: 1,
                vs2: 2,
            },
            32,
        );
        // 8n+2 at n=8 vs n=32.
        assert_eq!(r8.cycles, 66 + vcu.cmd_dist_cycles());
        assert_eq!(r32.cycles, 258 + vcu.cmd_dist_cycles());
    }

    #[test]
    fn cached_path_matches_uncached_exactly() {
        let vcu = Vcu::new(64);
        let mut cache = ProgramCache::default();
        let ops = [
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::MseqScalar {
                vd: 4,
                vs1: 1,
                rs: 7,
            },
            VectorOp::RedSum { vd: 5, vs: 1 },
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            }, // repeat: cache hit
        ];
        for sew in [8u32, 16, 32] {
            let mut plain = Csb::new(CsbGeometry::new(64));
            let mut cached = Csb::new(CsbGeometry::new(64));
            for csb in [&mut plain, &mut cached] {
                let a: Vec<u32> = (0..2048).map(|i| i * 3 + 1).collect();
                csb.write_vector(1, &a);
                csb.write_vector(2, &a);
                csb.set_active_window(5, 1500);
            }
            for op in &ops {
                let want = vcu.execute_sew(&mut plain, op, sew);
                let got = vcu.execute_sew_cached(&mut cached, op, sew, &mut cache);
                assert_eq!(got, want, "{op:?} at sew {sew}");
            }
            assert_eq!(plain.read_vector(3, 2048), cached.read_vector(3, 2048));
            assert_eq!(plain.read_vector(4, 2048), cached.read_vector(4, 2048));
            assert_eq!(plain.read_vector(5, 2048), cached.read_vector(5, 2048));
        }
        assert_eq!(cache.hits(), 3, "one repeated op per SEW");
        assert_eq!(cache.misses(), 9);
    }

    #[test]
    fn plan_cycles_match_executed_cycles_from_static_stats() {
        use cape_ucode::CompiledOp;
        let vcu = Vcu::new(1024);
        let ops = [
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::AddScalar {
                vd: 4,
                vs1: 1,
                rs: 12345,
            },
            VectorOp::RedSum { vd: 5, vs: 1 },
            VectorOp::ShiftLeft {
                vd: 6,
                vs: 1,
                sh: 3,
            },
        ];
        for sew in [8u32, 16, 32] {
            for op in &ops {
                let static_stats = CompiledOp::compile(op, sew as usize).program().stats();
                let mut csb = csb();
                let executed = vcu.execute_sew(&mut csb, op, sew);
                assert_eq!(
                    vcu.plan_cycles(op, &static_stats, sew),
                    executed.cycles,
                    "{op:?} at sew {sew}"
                );
                assert_eq!(static_stats, executed.stats, "{op:?} at sew {sew}");
            }
        }
    }

    #[test]
    fn try_execute_rejects_malformed_op_without_touching_csb() {
        let vcu = Vcu::new(8);
        let mut cache = ProgramCache::default();
        let mut csb = Csb::new(CsbGeometry::new(8));
        csb.write_vector(1, &[3, 5, 7]);
        csb.set_active_window(0, 3);
        let before = csb.read_vector(1, 3);
        let err = vcu
            .try_execute_sew_cached(
                &mut csb,
                &VectorOp::Mul {
                    vd: 1,
                    vs1: 1,
                    vs2: 2,
                },
                32,
                &mut cache,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SequencerError::DestAliasesSource {
                mnemonic: "vmul",
                vd: 1
            }
        ));
        assert_eq!(csb.read_vector(1, 3), before, "CSB must be untouched");
        // The good path through the same API still works.
        let ok = vcu
            .try_execute_sew_cached(
                &mut csb,
                &VectorOp::AddScalar {
                    vd: 2,
                    vs1: 1,
                    rs: 10,
                },
                32,
                &mut cache,
            )
            .unwrap();
        assert!(ok.cycles > 0);
        assert_eq!(csb.read_vector(2, 3), vec![13, 15, 17]);
    }

    #[test]
    fn results_match_functional_semantics() {
        let vcu = Vcu::new(8);
        let mut csb = Csb::new(CsbGeometry::new(8));
        csb.write_vector(1, &[3, 5, 7]);
        csb.set_active_window(0, 3);
        vcu.execute(
            &mut csb,
            &VectorOp::AddScalar {
                vd: 2,
                vs1: 1,
                rs: 10,
            },
        );
        assert_eq!(csb.read_vector(2, 3), vec![13, 15, 17]);
    }
}

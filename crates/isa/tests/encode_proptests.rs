//! Property tests: every constructible instruction round-trips through
//! its 32-bit machine encoding.

use cape_isa::{AluOp, BranchCond, Instr, Reg, Sew, VAluOp, VReg};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn imm_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn valu_op() -> impl Strategy<Value = VAluOp> {
    prop_oneof![
        Just(VAluOp::Add),
        Just(VAluOp::Sub),
        Just(VAluOp::Mul),
        Just(VAluOp::And),
        Just(VAluOp::Or),
        Just(VAluOp::Xor),
        Just(VAluOp::Mseq),
        Just(VAluOp::Msne),
        Just(VAluOp::Mslt),
        Just(VAluOp::Msltu),
        Just(VAluOp::Min),
        Just(VAluOp::Minu),
        Just(VAluOp::Max),
        Just(VAluOp::Maxu),
    ]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![Just(Sew::E8), Just(Sew::E16), Just(Sew::E32)]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (imm_op(), reg(), reg(), -2048i32..2048).prop_map(|(op, rd, rs1, imm)| Instr::OpImm {
            op,
            rd,
            rs1,
            imm
        }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Lw { rd, rs1, offset }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Ld { rd, rs1, offset }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rs2, rs1, offset)| Instr::Sw {
            rs2,
            rs1,
            offset
        }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rs2, rs1, offset)| Instr::Sd {
            rs2,
            rs1,
            offset
        }),
        (
            branch_cond(),
            reg(),
            reg(),
            (-2048i32..2048).prop_map(|o| o * 2)
        )
            .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (reg(), reg(), sew()).prop_map(|(rd, rs1, sew)| Instr::Vsetvli { rd, rs1, sew }),
        reg().prop_map(|rs1| Instr::Vsetstart { rs1 }),
        (vreg(), reg()).prop_map(|(vd, rs1)| Instr::Vle32 { vd, rs1 }),
        (vreg(), reg()).prop_map(|(vs3, rs1)| Instr::Vse32 { vs3, rs1 }),
        (vreg(), reg(), reg()).prop_map(|(vd, rs1, rs2)| Instr::Vlrw { vd, rs1, rs2 }),
        (valu_op(), vreg(), vreg(), vreg()).prop_map(|(op, vd, lhs, rhs)| Instr::VOpVv {
            op,
            vd,
            lhs,
            rhs
        }),
        (valu_op(), vreg(), vreg(), reg()).prop_map(|(op, vd, lhs, rs)| Instr::VOpVx {
            op,
            vd,
            lhs,
            rs
        }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, on_false, on_true)| Instr::VmergeVvm {
            vd,
            on_false,
            on_true
        }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instr::VredsumVs { vd, vs2, vs1 }),
        (vreg(), reg()).prop_map(|(vd, rs)| Instr::VmvVx { vd, rs }),
        (reg(), vreg()).prop_map(|(rd, vs)| Instr::VmvXs { rd, vs }),
        (vreg(), vreg()).prop_map(|(vd, vs)| Instr::VmvVv { vd, vs }),
        (vreg(), vreg(), reg()).prop_map(|(vd, lhs, rs)| Instr::VrsubVx { vd, lhs, rs }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs1, vs2)| Instr::VmaccVv { vd, vs1, vs2 }),
        (reg(), vreg()).prop_map(|(rd, vs)| Instr::VcpopM { rd, vs }),
        (reg(), vreg()).prop_map(|(rd, vs)| Instr::VfirstM { rd, vs }),
        vreg().prop_map(|vd| Instr::VidV { vd }),
        (vreg(), vreg(), 0u32..32).prop_map(|(vd, vs, imm)| Instr::VsllVi { vd, vs, imm }),
        (vreg(), vreg(), 0u32..32).prop_map(|(vd, vs, imm)| Instr::VsrlVi { vd, vs, imm }),
        (vreg(), vreg(), 0u32..32).prop_map(|(vd, vs, imm)| Instr::VsraVi { vd, vs, imm }),
        Just(Instr::Ecall),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn every_instruction_roundtrips_through_machine_code(i in instr()) {
        let word = i.encode();
        prop_assert_eq!(Instr::decode(word), Ok(i), "word {:#010x}", word);
    }

    #[test]
    fn display_reassembles_for_label_free_instructions(i in instr()) {
        // Branches/jumps print numeric offsets which the assembler accepts
        // directly; everything else must round-trip through its text form.
        let text = i.to_string();
        let prog = cape_isa::assemble(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to reassemble: {e}"));
        // `li`-style pseudo expansion never triggers for Display output,
        // so the program is exactly one instruction.
        prop_assert_eq!(prog.len(), 1, "{}", text);
        prop_assert_eq!(*prog.instr(0), i, "{}", text);
    }
}

//! Binary encoding and decoding of instructions.
//!
//! Scalar instructions use the standard RV64 R/I/S/B/U/J formats; vector
//! instructions use the OP-V major opcode with the RVV 1.0 field layout
//! (`funct6 | vm | vs2 | vs1 | funct3 | vd | opcode`); `vlrw` sits on the
//! custom-0 opcode. Every encodable instruction round-trips:
//! `Instr::decode(i.encode()) == Ok(i)`.

use crate::instr::{AluOp, BranchCond, Instr, Sew, VAluOp};
use crate::reg::{Reg, VReg};

const OP_LUI: u32 = 0x37;
const OP_JAL: u32 = 0x6F;
const OP_JALR: u32 = 0x67;
const OP_IMM: u32 = 0x13;
const OP_OP: u32 = 0x33;
const OP_LOAD: u32 = 0x03;
const OP_STORE: u32 = 0x23;
const OP_BRANCH: u32 = 0x63;
const OP_SYSTEM: u32 = 0x73;
const OP_V: u32 = 0x57;
const OP_VLOAD: u32 = 0x07;
const OP_VSTORE: u32 = 0x27;
const OP_CUSTOM0: u32 = 0x0B;

/// The `vtype` immediate for a SEW at LMUL=1 (vsew in bits [5:3]).
fn vtype_for(sew: Sew) -> u32 {
    let vsew = match sew {
        Sew::E8 => 0b000,
        Sew::E16 => 0b001,
        Sew::E32 => 0b010,
    };
    vsew << 3
}

/// Error produced when a 32-bit word is not a recognized instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn err(word: u32, reason: impl Into<String>) -> DecodeError {
    DecodeError {
        word,
        reason: reason.into(),
    }
}

/// Error produced when an instruction has no valid binary encoding — an
/// `OpImm` with an operation that lacks an immediate form, or an
/// immediate/offset that does not fit its encoding field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// The instruction that could not be encoded.
    pub instr: Instr,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot encode {:?}: {}", self.instr, self.reason)
    }
}

impl std::error::Error for EncodeError {}

fn enc_err(instr: Instr, reason: impl Into<String>) -> EncodeError {
    EncodeError {
        instr,
        reason: reason.into(),
    }
}

// ----- field helpers -----------------------------------------------------

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    funct7 << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12 | rd << 7 | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    ((imm as u32) & 0xFFF) << 20 | rs1 << 15 | funct3 << 12 | rd << 7 | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (imm >> 5 & 0x7F) << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12 | (imm & 0x1F) << 7 | opcode
}

fn b_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (imm >> 12 & 1) << 31
        | (imm >> 5 & 0x3F) << 25
        | rs2 << 20
        | rs1 << 15
        | funct3 << 12
        | (imm >> 1 & 0xF) << 8
        | (imm >> 11 & 1) << 7
        | opcode
}

fn j_type(imm: i32, rd: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (imm >> 20 & 1) << 31
        | (imm >> 1 & 0x3FF) << 21
        | (imm >> 11 & 1) << 20
        | (imm >> 12 & 0xFF) << 12
        | rd << 7
        | opcode
}

fn v_type(funct6: u32, vm: u32, vs2: u32, vs1: u32, funct3: u32, vd: u32) -> u32 {
    funct6 << 26 | vm << 25 | vs2 << 20 | vs1 << 15 | funct3 << 12 | vd << 7 | OP_V
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

// Vector funct3 encodings.
const OPIVV: u32 = 0b000;
const OPIVI: u32 = 0b011;
const OPIVX: u32 = 0b100;
const OPMVV: u32 = 0b010;
const OPMVX: u32 = 0b110;

fn valu_funct6(op: VAluOp) -> u32 {
    match op {
        VAluOp::Add => 0b000000,
        VAluOp::Sub => 0b000010,
        VAluOp::Minu => 0b000100,
        VAluOp::Min => 0b000101,
        VAluOp::Maxu => 0b000110,
        VAluOp::Max => 0b000111,
        VAluOp::And => 0b001001,
        VAluOp::Or => 0b001010,
        VAluOp::Xor => 0b001011,
        VAluOp::Mseq => 0b011000,
        VAluOp::Msne => 0b011001,
        VAluOp::Msltu => 0b011010,
        VAluOp::Mslt => 0b011011,
        VAluOp::Mul => 0b100101, // OPMVV/OPMVX space
    }
}

fn valu_from_funct6(funct6: u32, mul_space: bool) -> Option<VAluOp> {
    Some(match (funct6, mul_space) {
        (0b000000, false) => VAluOp::Add,
        (0b000010, false) => VAluOp::Sub,
        (0b000100, false) => VAluOp::Minu,
        (0b000101, false) => VAluOp::Min,
        (0b000110, false) => VAluOp::Maxu,
        (0b000111, false) => VAluOp::Max,
        (0b001001, false) => VAluOp::And,
        (0b001010, false) => VAluOp::Or,
        (0b001011, false) => VAluOp::Xor,
        (0b011000, false) => VAluOp::Mseq,
        (0b011001, false) => VAluOp::Msne,
        (0b011010, false) => VAluOp::Msltu,
        (0b011011, false) => VAluOp::Mslt,
        (0b100101, true) => VAluOp::Mul,
        _ => return None,
    })
}

impl Instr {
    /// Encodes the instruction into its 32-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics if an `OpImm` carries an operation with no immediate form
    /// (`sub`, `mul`, `div`, `rem`) or if an immediate/offset is out of
    /// range for its encoding field. Use [`Instr::try_encode`] for a
    /// non-panicking variant.
    pub fn encode(&self) -> u32 {
        self.try_encode().unwrap_or_else(|e| panic!("{}", e.reason))
    }

    /// Encodes the instruction into its 32-bit machine word, reporting
    /// unencodable instructions as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] if an `OpImm` carries an operation with
    /// no immediate form (`sub`, `mul`, `div`, `rem`) or if an
    /// immediate/offset does not fit its encoding field.
    pub fn try_encode(&self) -> Result<u32, EncodeError> {
        use Instr::*;
        Ok(match *self {
            Lui { rd, imm20 } => {
                if !(-(1 << 19)..1 << 19).contains(&imm20) {
                    return Err(enc_err(*self, "lui immediate out of range"));
                }
                ((imm20 as u32) & 0xFFFFF) << 12 | (rd.index() as u32) << 7 | OP_LUI
            }
            Jal { rd, offset } => {
                if offset % 2 != 0 || !(-(1 << 20)..1 << 20).contains(&offset) {
                    return Err(enc_err(*self, "jal offset out of range or misaligned"));
                }
                j_type(offset, rd.index() as u32, OP_JAL)
            }
            Jalr { rd, rs1, offset } => {
                i_type(offset, rs1.index() as u32, 0, rd.index() as u32, OP_JALR)
            }
            OpImm { op, rd, rs1, imm } => {
                let (funct3, imm) = match op {
                    AluOp::Add => (0b000, imm),
                    AluOp::Slt => (0b010, imm),
                    AluOp::Sltu => (0b011, imm),
                    AluOp::Xor => (0b100, imm),
                    AluOp::Or => (0b110, imm),
                    AluOp::And => (0b111, imm),
                    AluOp::Sll => (0b001, imm & 0x3F),
                    AluOp::Srl => (0b101, imm & 0x3F),
                    AluOp::Sra => (0b101, (imm & 0x3F) | 0x400),
                    other => {
                        return Err(enc_err(*self, format!("{other:?} has no immediate form")))
                    }
                };
                if !matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra)
                    && !(-2048..2048).contains(&imm)
                {
                    return Err(enc_err(*self, "imm out of range"));
                }
                i_type(imm, rs1.index() as u32, funct3, rd.index() as u32, OP_IMM)
            }
            Op { op, rd, rs1, rs2 } => {
                let (funct7, funct3) = match op {
                    AluOp::Add => (0b0000000, 0b000),
                    AluOp::Sub => (0b0100000, 0b000),
                    AluOp::Sll => (0b0000000, 0b001),
                    AluOp::Slt => (0b0000000, 0b010),
                    AluOp::Sltu => (0b0000000, 0b011),
                    AluOp::Xor => (0b0000000, 0b100),
                    AluOp::Srl => (0b0000000, 0b101),
                    AluOp::Sra => (0b0100000, 0b101),
                    AluOp::Or => (0b0000000, 0b110),
                    AluOp::And => (0b0000000, 0b111),
                    AluOp::Mul => (0b0000001, 0b000),
                    AluOp::Div => (0b0000001, 0b100),
                    AluOp::Divu => (0b0000001, 0b101),
                    AluOp::Rem => (0b0000001, 0b110),
                    AluOp::Remu => (0b0000001, 0b111),
                };
                r_type(
                    funct7,
                    rs2.index() as u32,
                    rs1.index() as u32,
                    funct3,
                    rd.index() as u32,
                    OP_OP,
                )
            }
            Lw { rd, rs1, offset } => i_type(
                offset,
                rs1.index() as u32,
                0b010,
                rd.index() as u32,
                OP_LOAD,
            ),
            Lwu { rd, rs1, offset } => i_type(
                offset,
                rs1.index() as u32,
                0b110,
                rd.index() as u32,
                OP_LOAD,
            ),
            Ld { rd, rs1, offset } => i_type(
                offset,
                rs1.index() as u32,
                0b011,
                rd.index() as u32,
                OP_LOAD,
            ),
            Sw { rs2, rs1, offset } => s_type(
                offset,
                rs2.index() as u32,
                rs1.index() as u32,
                0b010,
                OP_STORE,
            ),
            Sd { rs2, rs1, offset } => s_type(
                offset,
                rs2.index() as u32,
                rs1.index() as u32,
                0b011,
                OP_STORE,
            ),
            Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if offset % 2 != 0 || !(-4096..4096).contains(&offset) {
                    return Err(enc_err(*self, "branch offset out of range or misaligned"));
                }
                let funct3 = match cond {
                    BranchCond::Eq => 0b000,
                    BranchCond::Ne => 0b001,
                    BranchCond::Lt => 0b100,
                    BranchCond::Ge => 0b101,
                    BranchCond::Ltu => 0b110,
                    BranchCond::Geu => 0b111,
                };
                b_type(
                    offset,
                    rs2.index() as u32,
                    rs1.index() as u32,
                    funct3,
                    OP_BRANCH,
                )
            }
            Ecall => OP_SYSTEM,
            Vsetvli { rd, rs1, sew } => {
                vtype_for(sew) << 20
                    | (rs1.index() as u32) << 15
                    | 0b111 << 12
                    | (rd.index() as u32) << 7
                    | OP_V
            }
            Vle32 { vd, rs1 } => {
                1 << 25
                    | (rs1.index() as u32) << 15
                    | 0b110 << 12
                    | (vd.index() as u32) << 7
                    | OP_VLOAD
            }
            Vse32 { vs3, rs1 } => {
                1 << 25
                    | (rs1.index() as u32) << 15
                    | 0b110 << 12
                    | (vs3.index() as u32) << 7
                    | OP_VSTORE
            }
            Vsetstart { rs1 } => i_type(0, rs1.index() as u32, 0b001, 0, OP_CUSTOM0),
            Vlrw { vd, rs1, rs2 } => r_type(
                0,
                rs2.index() as u32,
                rs1.index() as u32,
                0,
                vd.index() as u32,
                OP_CUSTOM0,
            ),
            VOpVv { op, vd, lhs, rhs } => {
                let funct3 = if op == VAluOp::Mul { OPMVV } else { OPIVV };
                v_type(
                    valu_funct6(op),
                    1,
                    lhs.index() as u32,
                    rhs.index() as u32,
                    funct3,
                    vd.index() as u32,
                )
            }
            VOpVx { op, vd, lhs, rs } => {
                let funct3 = if op == VAluOp::Mul { OPMVX } else { OPIVX };
                v_type(
                    valu_funct6(op),
                    1,
                    lhs.index() as u32,
                    rs.index() as u32,
                    funct3,
                    vd.index() as u32,
                )
            }
            VmergeVvm {
                vd,
                on_false,
                on_true,
            } => v_type(
                0b010111,
                0,
                on_false.index() as u32,
                on_true.index() as u32,
                OPIVV,
                vd.index() as u32,
            ),
            VredsumVs { vd, vs2, vs1 } => v_type(
                0b000000,
                1,
                vs2.index() as u32,
                vs1.index() as u32,
                OPMVV,
                vd.index() as u32,
            ),
            VmvVx { vd, rs } => v_type(0b010111, 1, 0, rs.index() as u32, OPIVX, vd.index() as u32),
            VmvXs { rd, vs } => v_type(
                0b010000,
                1,
                vs.index() as u32,
                0b00000,
                OPMVV,
                rd.index() as u32,
            ),
            VmvVv { vd, vs } => v_type(0b010111, 1, 0, vs.index() as u32, OPIVV, vd.index() as u32),
            VrsubVx { vd, lhs, rs } => v_type(
                0b000011,
                1,
                lhs.index() as u32,
                rs.index() as u32,
                OPIVX,
                vd.index() as u32,
            ),
            VmaccVv { vd, vs1, vs2 } => v_type(
                0b101101,
                1,
                vs2.index() as u32,
                vs1.index() as u32,
                OPMVV,
                vd.index() as u32,
            ),
            VsraVi { vd, vs, imm } => {
                if imm >= 32 {
                    return Err(enc_err(*self, "vector shift immediate out of range"));
                }
                v_type(
                    0b101001,
                    1,
                    vs.index() as u32,
                    imm,
                    OPIVI,
                    vd.index() as u32,
                )
            }
            VcpopM { rd, vs } => v_type(
                0b010000,
                1,
                vs.index() as u32,
                0b10000,
                OPMVV,
                rd.index() as u32,
            ),
            VfirstM { rd, vs } => v_type(
                0b010000,
                1,
                vs.index() as u32,
                0b10001,
                OPMVV,
                rd.index() as u32,
            ),
            VidV { vd } => v_type(0b010100, 1, 0, 0b10001, OPMVV, vd.index() as u32),
            VsllVi { vd, vs, imm } => {
                if imm >= 32 {
                    return Err(enc_err(*self, "vector shift immediate out of range"));
                }
                v_type(
                    0b100101,
                    1,
                    vs.index() as u32,
                    imm,
                    OPIVI,
                    vd.index() as u32,
                )
            }
            VsrlVi { vd, vs, imm } => {
                if imm >= 32 {
                    return Err(enc_err(*self, "vector shift immediate out of range"));
                }
                v_type(
                    0b101000,
                    1,
                    vs.index() as u32,
                    imm,
                    OPIVI,
                    vd.index() as u32,
                )
            }
        })
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the unrecognized opcode or field
    /// combination.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let opcode = word & 0x7F;
        let rd = Reg::new((word >> 7 & 0x1F) as u8);
        let funct3 = word >> 12 & 0x7;
        let rs1 = Reg::new((word >> 15 & 0x1F) as u8);
        let rs2 = Reg::new((word >> 20 & 0x1F) as u8);
        let funct7 = word >> 25;
        let i_imm = sext(word >> 20, 12);
        match opcode {
            OP_LUI => Ok(Instr::Lui {
                rd,
                imm20: sext(word >> 12, 20),
            }),
            OP_JAL => {
                let imm = (word >> 31 & 1) << 20
                    | (word >> 21 & 0x3FF) << 1
                    | (word >> 20 & 1) << 11
                    | (word >> 12 & 0xFF) << 12;
                Ok(Instr::Jal {
                    rd,
                    offset: sext(imm, 21),
                })
            }
            OP_JALR => Ok(Instr::Jalr {
                rd,
                rs1,
                offset: i_imm,
            }),
            OP_IMM => {
                let op = match funct3 {
                    0b000 => AluOp::Add,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    0b001 => AluOp::Sll,
                    0b101 => {
                        if word >> 30 & 1 == 1 {
                            AluOp::Sra
                        } else {
                            AluOp::Srl
                        }
                    }
                    _ => unreachable!(),
                };
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    (word >> 20 & 0x3F) as i32
                } else {
                    i_imm
                };
                Ok(Instr::OpImm { op, rd, rs1, imm })
            }
            OP_OP => {
                let op = match (funct7, funct3) {
                    (0b0000000, 0b000) => AluOp::Add,
                    (0b0100000, 0b000) => AluOp::Sub,
                    (0b0000000, 0b001) => AluOp::Sll,
                    (0b0000000, 0b010) => AluOp::Slt,
                    (0b0000000, 0b011) => AluOp::Sltu,
                    (0b0000000, 0b100) => AluOp::Xor,
                    (0b0000000, 0b101) => AluOp::Srl,
                    (0b0100000, 0b101) => AluOp::Sra,
                    (0b0000000, 0b110) => AluOp::Or,
                    (0b0000000, 0b111) => AluOp::And,
                    (0b0000001, 0b000) => AluOp::Mul,
                    (0b0000001, 0b100) => AluOp::Div,
                    (0b0000001, 0b101) => AluOp::Divu,
                    (0b0000001, 0b110) => AluOp::Rem,
                    (0b0000001, 0b111) => AluOp::Remu,
                    _ => return Err(err(word, "unknown OP funct7/funct3")),
                };
                Ok(Instr::Op { op, rd, rs1, rs2 })
            }
            OP_LOAD => match funct3 {
                0b010 => Ok(Instr::Lw {
                    rd,
                    rs1,
                    offset: i_imm,
                }),
                0b110 => Ok(Instr::Lwu {
                    rd,
                    rs1,
                    offset: i_imm,
                }),
                0b011 => Ok(Instr::Ld {
                    rd,
                    rs1,
                    offset: i_imm,
                }),
                _ => Err(err(word, "unsupported load width")),
            },
            OP_STORE => {
                let imm = sext((word >> 25) << 5 | (word >> 7 & 0x1F), 12);
                match funct3 {
                    0b010 => Ok(Instr::Sw {
                        rs2,
                        rs1,
                        offset: imm,
                    }),
                    0b011 => Ok(Instr::Sd {
                        rs2,
                        rs1,
                        offset: imm,
                    }),
                    _ => Err(err(word, "unsupported store width")),
                }
            }
            OP_BRANCH => {
                let cond = match funct3 {
                    0b000 => BranchCond::Eq,
                    0b001 => BranchCond::Ne,
                    0b100 => BranchCond::Lt,
                    0b101 => BranchCond::Ge,
                    0b110 => BranchCond::Ltu,
                    0b111 => BranchCond::Geu,
                    _ => return Err(err(word, "unknown branch condition")),
                };
                let imm = (word >> 31 & 1) << 12
                    | (word >> 7 & 1) << 11
                    | (word >> 25 & 0x3F) << 5
                    | (word >> 8 & 0xF) << 1;
                Ok(Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset: sext(imm, 13),
                })
            }
            OP_SYSTEM if word == OP_SYSTEM => Ok(Instr::Ecall),
            OP_SYSTEM => Err(err(word, "only ecall is supported on SYSTEM")),
            OP_VLOAD if funct3 == 0b110 => Ok(Instr::Vle32 {
                vd: VReg::new((word >> 7 & 0x1F) as u8),
                rs1,
            }),
            OP_VLOAD => Err(err(word, "unsupported vector load width")),
            OP_VSTORE if funct3 == 0b110 => Ok(Instr::Vse32 {
                vs3: VReg::new((word >> 7 & 0x1F) as u8),
                rs1,
            }),
            OP_VSTORE => Err(err(word, "unsupported vector store width")),
            OP_CUSTOM0 if funct3 == 0 && funct7 == 0 => Ok(Instr::Vlrw {
                vd: VReg::new((word >> 7 & 0x1F) as u8),
                rs1,
                rs2,
            }),
            OP_CUSTOM0 if funct3 == 1 => Ok(Instr::Vsetstart { rs1 }),
            OP_CUSTOM0 => Err(err(word, "unknown custom-0 instruction")),
            OP_V => decode_op_v(word),
            _ => Err(err(word, format!("unknown major opcode {opcode:#04x}"))),
        }
    }
}

fn decode_op_v(word: u32) -> Result<Instr, DecodeError> {
    let vd = VReg::new((word >> 7 & 0x1F) as u8);
    let rd = Reg::new((word >> 7 & 0x1F) as u8);
    let funct3 = word >> 12 & 0x7;
    let vs1_bits = word >> 15 & 0x1F;
    let vs2 = VReg::new((word >> 20 & 0x1F) as u8);
    let vm = word >> 25 & 1;
    let funct6 = word >> 26;
    match funct3 {
        0b111 => {
            if word >> 31 != 0 {
                return Err(err(word, "vsetvl register form is unsupported"));
            }
            let vtype = word >> 20 & 0x7FF;
            let sew = match vtype {
                v if v == vtype_for(Sew::E8) => Sew::E8,
                v if v == vtype_for(Sew::E16) => Sew::E16,
                v if v == vtype_for(Sew::E32) => Sew::E32,
                _ => return Err(err(word, "unsupported vtype (e8/e16/e32, m1 only)")),
            };
            Ok(Instr::Vsetvli {
                rd,
                rs1: Reg::new(vs1_bits as u8),
                sew,
            })
        }
        OPIVV => {
            if funct6 == 0b010111 {
                return Ok(if vm == 0 {
                    Instr::VmergeVvm {
                        vd,
                        on_false: vs2,
                        on_true: VReg::new(vs1_bits as u8),
                    }
                } else {
                    Instr::VmvVv {
                        vd,
                        vs: VReg::new(vs1_bits as u8),
                    }
                });
            }
            let op =
                valu_from_funct6(funct6, false).ok_or_else(|| err(word, "unknown OPIVV funct6"))?;
            Ok(Instr::VOpVv {
                op,
                vd,
                lhs: vs2,
                rhs: VReg::new(vs1_bits as u8),
            })
        }
        OPIVX => {
            if funct6 == 0b010111 && vm == 1 {
                return Ok(Instr::VmvVx {
                    vd,
                    rs: Reg::new(vs1_bits as u8),
                });
            }
            if funct6 == 0b000011 {
                return Ok(Instr::VrsubVx {
                    vd,
                    lhs: vs2,
                    rs: Reg::new(vs1_bits as u8),
                });
            }
            let op =
                valu_from_funct6(funct6, false).ok_or_else(|| err(word, "unknown OPIVX funct6"))?;
            Ok(Instr::VOpVx {
                op,
                vd,
                lhs: vs2,
                rs: Reg::new(vs1_bits as u8),
            })
        }
        OPIVI => match funct6 {
            0b100101 => Ok(Instr::VsllVi {
                vd,
                vs: vs2,
                imm: vs1_bits,
            }),
            0b101000 => Ok(Instr::VsrlVi {
                vd,
                vs: vs2,
                imm: vs1_bits,
            }),
            0b101001 => Ok(Instr::VsraVi {
                vd,
                vs: vs2,
                imm: vs1_bits,
            }),
            _ => Err(err(word, "unknown OPIVI funct6")),
        },
        OPMVV => match funct6 {
            0b000000 => Ok(Instr::VredsumVs {
                vd,
                vs2,
                vs1: VReg::new(vs1_bits as u8),
            }),
            0b100101 => Ok(Instr::VOpVv {
                op: VAluOp::Mul,
                vd,
                lhs: vs2,
                rhs: VReg::new(vs1_bits as u8),
            }),
            0b101101 => Ok(Instr::VmaccVv {
                vd,
                vs1: VReg::new(vs1_bits as u8),
                vs2,
            }),
            0b010000 if vs1_bits == 0b00000 => Ok(Instr::VmvXs { rd, vs: vs2 }),
            0b010000 if vs1_bits == 0b10000 => Ok(Instr::VcpopM { rd, vs: vs2 }),
            0b010000 if vs1_bits == 0b10001 => Ok(Instr::VfirstM { rd, vs: vs2 }),
            0b010100 if vs1_bits == 0b10001 => Ok(Instr::VidV { vd }),
            _ => Err(err(word, "unknown OPMVV funct6")),
        },
        OPMVX => match funct6 {
            0b100101 => Ok(Instr::VOpVx {
                op: VAluOp::Mul,
                vd,
                lhs: vs2,
                rs: Reg::new(vs1_bits as u8),
            }),
            _ => Err(err(word, "unknown OPMVX funct6")),
        },
        _ => Err(err(word, "unknown OP-V funct3")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let mut v = vec![
            Lui {
                rd: Reg::A0,
                imm20: -3,
            },
            Jal {
                rd: Reg::RA,
                offset: -2048,
            },
            Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            },
            Lw {
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: -4,
            },
            Lwu {
                rd: Reg::A1,
                rs1: Reg::SP,
                offset: 124,
            },
            Ld {
                rd: Reg::A2,
                rs1: Reg::SP,
                offset: 8,
            },
            Sw {
                rs2: Reg::A0,
                rs1: Reg::SP,
                offset: -32,
            },
            Sd {
                rs2: Reg::T6,
                rs1: Reg::A5,
                offset: 2040,
            },
            Ecall,
            Vsetvli {
                rd: Reg::T1,
                rs1: Reg::T0,
                sew: Sew::E32,
            },
            Vsetvli {
                rd: Reg::T1,
                rs1: Reg::T0,
                sew: Sew::E8,
            },
            Vsetvli {
                rd: Reg::T1,
                rs1: Reg::T0,
                sew: Sew::E16,
            },
            Vsetstart { rs1: Reg::T2 },
            VmvVv {
                vd: VReg::V18,
                vs: VReg::V19,
            },
            VrsubVx {
                vd: VReg::V20,
                lhs: VReg::V21,
                rs: Reg::S5,
            },
            VmaccVv {
                vd: VReg::V22,
                vs1: VReg::V23,
                vs2: VReg::V24,
            },
            VsraVi {
                vd: VReg::V25,
                vs: VReg::V26,
                imm: 7,
            },
            Vle32 {
                vd: VReg::V4,
                rs1: Reg::A0,
            },
            Vse32 {
                vs3: VReg::V5,
                rs1: Reg::A1,
            },
            Vlrw {
                vd: VReg::V6,
                rs1: Reg::A2,
                rs2: Reg::A3,
            },
            VmergeVvm {
                vd: VReg::V1,
                on_false: VReg::V2,
                on_true: VReg::V3,
            },
            VredsumVs {
                vd: VReg::V9,
                vs2: VReg::V8,
                vs1: VReg::V7,
            },
            VmvVx {
                vd: VReg::V10,
                rs: Reg::A4,
            },
            VmvXs {
                rd: Reg::A5,
                vs: VReg::V9,
            },
            VcpopM {
                rd: Reg::A0,
                vs: VReg::V11,
            },
            VfirstM {
                rd: Reg::A1,
                vs: VReg::V12,
            },
            VidV { vd: VReg::V13 },
            VsllVi {
                vd: VReg::V14,
                vs: VReg::V15,
                imm: 31,
            },
            VsrlVi {
                vd: VReg::V16,
                vs: VReg::V17,
                imm: 1,
            },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ] {
            v.push(Op {
                op,
                rd: Reg::S2,
                rs1: Reg::S3,
                rs2: Reg::S4,
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
        ] {
            v.push(OpImm {
                op,
                rd: Reg::T2,
                rs1: Reg::T3,
                imm: -7,
            });
        }
        for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            v.push(OpImm {
                op,
                rd: Reg::T2,
                rs1: Reg::T3,
                imm: 33,
            });
        }
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            v.push(Branch {
                cond,
                rs1: Reg::A6,
                rs2: Reg::A7,
                offset: -256,
            });
        }
        for op in [
            VAluOp::Add,
            VAluOp::Sub,
            VAluOp::Mul,
            VAluOp::And,
            VAluOp::Or,
            VAluOp::Xor,
            VAluOp::Mseq,
            VAluOp::Msne,
            VAluOp::Mslt,
            VAluOp::Msltu,
            VAluOp::Min,
            VAluOp::Minu,
            VAluOp::Max,
            VAluOp::Maxu,
        ] {
            v.push(VOpVv {
                op,
                vd: VReg::V20,
                lhs: VReg::V21,
                rhs: VReg::V22,
            });
            v.push(VOpVx {
                op,
                vd: VReg::V23,
                lhs: VReg::V24,
                rs: Reg::S5,
            });
        }
        v
    }

    #[test]
    fn every_instruction_roundtrips() {
        for i in sample_instrs() {
            let word = i.encode();
            assert_eq!(Instr::decode(word), Ok(i), "word {word:#010x} for {i}");
        }
    }

    #[test]
    fn vadd_vv_matches_rvv_layout() {
        // vadd.vv v3, v1, v2 (vd=3, vs2=1, vs1=2, unmasked):
        // funct6=0, vm=1, vs2=1, vs1=2, funct3=000, vd=3, opcode=0x57.
        let i = Instr::VOpVv {
            op: VAluOp::Add,
            vd: VReg::V3,
            lhs: VReg::V1,
            rhs: VReg::V2,
        };
        assert_eq!(i.encode(), 1 << 25 | 1 << 20 | 2 << 15 | 3 << 7 | 0x57);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Instr::decode(0xFFFF_FFFF).is_err());
        assert!(Instr::decode(0x0000_0000).is_err());
        // A SYSTEM word that is not ecall.
        assert!(Instr::decode(0x0010_0073).is_err());
    }

    #[test]
    fn ecall_is_the_canonical_word() {
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
    }

    #[test]
    #[should_panic(expected = "no immediate form")]
    fn sub_immediate_panics() {
        Instr::OpImm {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        }
        .encode();
    }

    #[test]
    fn try_encode_reports_missing_immediate_form() {
        let i = Instr::OpImm {
            op: AluOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        };
        let e = i.try_encode().unwrap_err();
        assert_eq!(e.instr, i);
        assert!(e.reason.contains("no immediate form"), "{}", e.reason);
        assert!(e.to_string().contains("cannot encode"));
    }

    #[test]
    fn try_encode_reports_out_of_range_immediates() {
        let lui = Instr::Lui {
            rd: Reg::A0,
            imm20: 1 << 19,
        };
        assert!(lui.try_encode().unwrap_err().reason.contains("lui"));

        let addi = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 4096,
        };
        assert!(addi.try_encode().unwrap_err().reason.contains("imm"));

        let br = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 3,
        };
        assert!(br.try_encode().unwrap_err().reason.contains("branch"));

        let shift = Instr::VsllVi {
            vd: VReg::V1,
            vs: VReg::V2,
            imm: 32,
        };
        assert!(shift.try_encode().unwrap_err().reason.contains("shift"));
    }

    #[test]
    fn try_encode_succeeds_on_valid_instructions() {
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 42,
        };
        assert_eq!(i.try_encode().unwrap(), i.encode());
    }
}

//! A small text assembler for the supported instruction subset.
//!
//! The accepted syntax is the same one [`Instr`]'s `Display` produces,
//! plus labels (`name:`), comments (`#` or `//` to end of line), and the
//! usual pseudo-instructions (`li`, `mv`, `j`, `beqz`, `bnez`, `nop`,
//! `halt`). Branch targets may be labels or numeric byte offsets.

use crate::instr::{AluOp, BranchCond, Instr, VAluOp};
use crate::program::{Program, ProgramBuilder, ProgramError};
use crate::reg::{Reg, VReg};
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn e(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax problems,
/// unknown mnemonics/registers, or unresolved labels.
///
/// # Example
///
/// ```
/// let prog = cape_isa::assemble(r"
///     li t0, 128
///     vsetvli t1, t0, e32,m1
///     vle32.v v1, (a0)
///     vadd.vx v2, v1, t0
///     vse32.v v2, (a1)
///     halt
/// ").unwrap();
/// assert_eq!(prog.len(), 6);
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    for (li, raw) in src.lines().enumerate() {
        let line = li + 1;
        let mut text = raw;
        for marker in ["#", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(e(line, format!("bad label {label:?}")));
            }
            b.label(label);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        parse_instr(&mut b, text, line)?;
    }
    b.build().map_err(|pe| match &pe {
        ProgramError::DuplicateLabel(_)
        | ProgramError::UndefinedLabel(_)
        | ProgramError::BranchOutOfRange { .. } => e(0, pe.to_string()),
    })
}

fn parse_instr(b: &mut ProgramBuilder, text: &str, line: usize) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let ops: Vec<String> = if rest.is_empty() {
        vec![]
    } else {
        rest.split(',').map(|s| s.trim().to_string()).collect()
    };
    let argc = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(e(
                line,
                format!("{mnemonic} expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let reg = |s: &str| s.parse::<Reg>().map_err(|m| e(line, m));
    let vreg = |s: &str| s.parse::<VReg>().map_err(|m| e(line, m));
    let imm = |s: &str| -> Result<i64, AsmError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let v = if let Some(hex) = body.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            body.parse::<i64>()
        }
        .map_err(|_| e(line, format!("bad immediate {s:?}")))?;
        Ok(if neg { -v } else { v })
    };
    // "offset(base)" memory operand.
    let mem = |s: &str| -> Result<(i32, Reg), AsmError> {
        let open = s
            .find('(')
            .ok_or_else(|| e(line, format!("bad memory operand {s:?}")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| e(line, format!("bad memory operand {s:?}")))?;
        let off = s[..open].trim();
        let off = if off.is_empty() { 0 } else { imm(off)? as i32 };
        Ok((off, reg(s[open + 1..close].trim())?))
    };

    let scalar_alu = |name: &str| -> Option<AluOp> {
        Some(match name {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "sll" => AluOp::Sll,
            "slt" => AluOp::Slt,
            "sltu" => AluOp::Sltu,
            "xor" => AluOp::Xor,
            "srl" => AluOp::Srl,
            "sra" => AluOp::Sra,
            "or" => AluOp::Or,
            "and" => AluOp::And,
            "mul" => AluOp::Mul,
            "div" => AluOp::Div,
            "divu" => AluOp::Divu,
            "rem" => AluOp::Rem,
            "remu" => AluOp::Remu,
            _ => return None,
        })
    };
    let vector_alu = |name: &str| -> Option<VAluOp> {
        Some(match name {
            "vadd" => VAluOp::Add,
            "vsub" => VAluOp::Sub,
            "vmul" => VAluOp::Mul,
            "vand" => VAluOp::And,
            "vor" => VAluOp::Or,
            "vxor" => VAluOp::Xor,
            "vmseq" => VAluOp::Mseq,
            "vmsne" => VAluOp::Msne,
            "vmslt" => VAluOp::Mslt,
            "vmsltu" => VAluOp::Msltu,
            "vmin" => VAluOp::Min,
            "vminu" => VAluOp::Minu,
            "vmax" => VAluOp::Max,
            "vmaxu" => VAluOp::Maxu,
            _ => return None,
        })
    };
    let branch_cond = |name: &str| -> Option<BranchCond> {
        Some(match name {
            "beq" => BranchCond::Eq,
            "bne" => BranchCond::Ne,
            "blt" => BranchCond::Lt,
            "bge" => BranchCond::Ge,
            "bltu" => BranchCond::Ltu,
            "bgeu" => BranchCond::Geu,
            _ => return None,
        })
    };

    match mnemonic {
        "nop" => {
            argc(0)?;
            b.nop();
        }
        "halt" | "ecall" => {
            argc(0)?;
            b.halt();
        }
        "li" => {
            argc(2)?;
            b.li(reg(&ops[0])?, imm(&ops[1])?);
        }
        "mv" => {
            argc(2)?;
            b.mv(reg(&ops[0])?, reg(&ops[1])?);
        }
        "j" => {
            argc(1)?;
            b.j(ops[0].clone());
        }
        "jal" => {
            argc(2)?;
            b.push(Instr::Jal {
                rd: reg(&ops[0])?,
                offset: imm(&ops[1])? as i32,
            });
        }
        "jalr" => {
            argc(2)?;
            let (offset, rs1) = mem(&ops[1])?;
            b.push(Instr::Jalr {
                rd: reg(&ops[0])?,
                rs1,
                offset,
            });
        }
        "lui" => {
            argc(2)?;
            b.push(Instr::Lui {
                rd: reg(&ops[0])?,
                imm20: imm(&ops[1])? as i32,
            });
        }
        "beqz" => {
            argc(2)?;
            b.beqz(reg(&ops[0])?, ops[1].clone());
        }
        "bnez" => {
            argc(2)?;
            b.bnez(reg(&ops[0])?, ops[1].clone());
        }
        "lw" | "lwu" | "ld" => {
            argc(2)?;
            let rd = reg(&ops[0])?;
            let (offset, rs1) = mem(&ops[1])?;
            b.push(match mnemonic {
                "lw" => Instr::Lw { rd, rs1, offset },
                "lwu" => Instr::Lwu { rd, rs1, offset },
                _ => Instr::Ld { rd, rs1, offset },
            });
        }
        "sw" | "sd" => {
            argc(2)?;
            let rs2 = reg(&ops[0])?;
            let (offset, rs1) = mem(&ops[1])?;
            b.push(match mnemonic {
                "sw" => Instr::Sw { rs2, rs1, offset },
                _ => Instr::Sd { rs2, rs1, offset },
            });
        }
        "vsetvli" => {
            // vsetvli rd, rs1[, e8|e16|e32][, m1] -- vtype tokens are
            // optional; the width defaults to e32.
            if ops.len() < 2 {
                return Err(e(line, "vsetvli expects rd, rs1[, e32,m1]"));
            }
            let mut sew = crate::instr::Sew::E32;
            for extra in &ops[2..] {
                match extra.as_str() {
                    "e8" => sew = crate::instr::Sew::E8,
                    "e16" => sew = crate::instr::Sew::E16,
                    "e32" => sew = crate::instr::Sew::E32,
                    "m1" => {}
                    other => return Err(e(line, format!("unsupported vtype token {other:?}"))),
                }
            }
            b.vsetvli_sew(reg(&ops[0])?, reg(&ops[1])?, sew);
        }
        "vsetstart" => {
            argc(1)?;
            b.vsetstart(reg(&ops[0])?);
        }
        "vle32.v" => {
            argc(2)?;
            let (off, rs1) = mem(&ops[1])?;
            if off != 0 {
                return Err(e(line, "vector loads take no offset"));
            }
            b.vle32(vreg(&ops[0])?, rs1);
        }
        "vse32.v" => {
            argc(2)?;
            let (off, rs1) = mem(&ops[1])?;
            if off != 0 {
                return Err(e(line, "vector stores take no offset"));
            }
            b.vse32(vreg(&ops[0])?, rs1);
        }
        "vlrw.v" => {
            argc(3)?;
            b.vlrw(vreg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?);
        }
        "vmerge.vvm" => {
            argc(4)?;
            if ops[3] != "v0" {
                return Err(e(line, "vmerge mask must be v0"));
            }
            b.vmerge(vreg(&ops[0])?, vreg(&ops[1])?, vreg(&ops[2])?);
        }
        "vredsum.vs" => {
            argc(3)?;
            b.vredsum(vreg(&ops[0])?, vreg(&ops[1])?, vreg(&ops[2])?);
        }
        "vmv.v.x" => {
            argc(2)?;
            b.vmv_vx(vreg(&ops[0])?, reg(&ops[1])?);
        }
        "vmv.v.v" => {
            argc(2)?;
            b.vmv_vv(vreg(&ops[0])?, vreg(&ops[1])?);
        }
        "vrsub.vx" => {
            argc(3)?;
            b.vrsub_vx(vreg(&ops[0])?, vreg(&ops[1])?, reg(&ops[2])?);
        }
        "vmacc.vv" => {
            argc(3)?;
            b.vmacc_vv(vreg(&ops[0])?, vreg(&ops[1])?, vreg(&ops[2])?);
        }
        "vsra.vi" => {
            argc(3)?;
            b.vsra_vi(vreg(&ops[0])?, vreg(&ops[1])?, imm(&ops[2])? as u32);
        }
        "vmv.x.s" => {
            argc(2)?;
            b.vmv_xs(reg(&ops[0])?, vreg(&ops[1])?);
        }
        "vcpop.m" => {
            argc(2)?;
            b.vcpop(reg(&ops[0])?, vreg(&ops[1])?);
        }
        "vfirst.m" => {
            argc(2)?;
            b.vfirst(reg(&ops[0])?, vreg(&ops[1])?);
        }
        "vid.v" => {
            argc(1)?;
            b.vid(vreg(&ops[0])?);
        }
        "vsll.vi" => {
            argc(3)?;
            b.vsll_vi(vreg(&ops[0])?, vreg(&ops[1])?, imm(&ops[2])? as u32);
        }
        "vsrl.vi" => {
            argc(3)?;
            b.vsrl_vi(vreg(&ops[0])?, vreg(&ops[1])?, imm(&ops[2])? as u32);
        }
        _ => {
            // Families with systematic suffixes.
            if let Some(cond) = branch_cond(mnemonic) {
                argc(3)?;
                let rs1 = reg(&ops[0])?;
                let rs2 = reg(&ops[1])?;
                if let Ok(off) = imm(&ops[2]) {
                    b.push(Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        offset: off as i32,
                    });
                } else {
                    b.branch(cond, rs1, rs2, ops[2].clone());
                }
                return Ok(());
            }
            if let Some((base, form)) = mnemonic.rsplit_once('.') {
                if let Some(op) = vector_alu(base) {
                    argc(3)?;
                    match form {
                        "vv" => {
                            b.vop_vv(op, vreg(&ops[0])?, vreg(&ops[1])?, vreg(&ops[2])?);
                        }
                        "vx" => {
                            b.vop_vx(op, vreg(&ops[0])?, vreg(&ops[1])?, reg(&ops[2])?);
                        }
                        _ => return Err(e(line, format!("unknown vector form .{form}"))),
                    }
                    return Ok(());
                }
            }
            if let Some(base) = mnemonic.strip_suffix('i') {
                if let Some(op) = scalar_alu(base) {
                    argc(3)?;
                    b.push(Instr::OpImm {
                        op,
                        rd: reg(&ops[0])?,
                        rs1: reg(&ops[1])?,
                        imm: imm(&ops[2])? as i32,
                    });
                    return Ok(());
                }
            }
            if let Some(op) = scalar_alu(mnemonic) {
                argc(3)?;
                b.op(op, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?);
                return Ok(());
            }
            return Err(e(line, format!("unknown mnemonic {mnemonic:?}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_vector_loop() {
        let prog = assemble(
            r"
            # stride through memory in MAX_VL chunks
            li   t0, 256
            loop:
              vsetvli t1, t0, e32, m1
              vle32.v v1, (a0)
              vle32.v v2, (a1)
              vadd.vv v3, v1, v2
              vse32.v v3, (a2)
              sub  t0, t0, t1
              bnez t0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(prog.len(), 9);
        assert!(prog.instr(1).is_vector());
    }

    #[test]
    fn display_output_reassembles() {
        let mut b = Program::builder();
        b.li(Reg::T0, 7);
        b.vsetvli_sew(Reg::T1, Reg::T0, crate::instr::Sew::E8);
        b.vsetvli_sew(Reg::T1, Reg::T0, crate::instr::Sew::E16);
        b.vmseq_vx(VReg::V2, VReg::V1, Reg::T0);
        b.vmsne_vv(VReg::V3, VReg::V1, VReg::V2);
        b.vmin_vv(VReg::V4, VReg::V1, VReg::V2);
        b.vmaxu_vv(VReg::V5, VReg::V1, VReg::V2);
        b.vmv_vv(VReg::V6, VReg::V1);
        b.vrsub_vx(VReg::V7, VReg::V1, Reg::T0);
        b.vmacc_vv(VReg::V8, VReg::V1, VReg::V2);
        b.vsra_vi(VReg::V9, VReg::V1, 3);
        b.vcpop(Reg::A0, VReg::V2);
        b.sw(Reg::A0, 0, Reg::A1);
        b.halt();
        let prog = b.build().unwrap();
        let text = prog
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let back = assemble(&text).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn rejects_wrong_operand_counts() {
        assert!(assemble("vadd.vv v1, v2").is_err());
        assert!(assemble("li t0").is_err());
    }

    #[test]
    fn rejects_unknown_registers() {
        assert!(assemble("add t0, t1, q9").is_err());
        assert!(assemble("vadd.vv v1, v2, v99").is_err());
    }

    #[test]
    fn numeric_branch_offsets_are_accepted() {
        let prog = assemble("bne t0, zero, -4\nhalt").unwrap();
        assert_eq!(
            *prog.instr(0),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -4
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let prog = assemble("\n  # whole-line comment\n nop // trailing\n\nhalt\n").unwrap();
        assert_eq!(prog.len(), 2);
    }
}

//! Programs and the label-resolving builder.

use crate::instr::{AluOp, BranchCond, Instr, Sew, VAluOp};
use crate::reg::{Reg, VReg};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An executable CAPE program: a flat sequence of instructions starting at
/// address 0, one word (4 bytes) each.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Starts building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at index `i` (address `4*i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn instr(&self, i: usize) -> &Instr {
        &self.instrs[i]
    }

    /// Iterates over the instructions in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Encodes the whole program into machine words.
    pub fn encode(&self) -> Vec<u32> {
        self.instrs.iter().map(Instr::encode).collect()
    }

    /// Decodes a program from machine words.
    ///
    /// # Errors
    ///
    /// Returns the first word that fails to decode.
    pub fn decode(words: &[u32]) -> Result<Program, crate::encode::DecodeError> {
        let instrs = words
            .iter()
            .map(|&w| Instr::decode(w))
            .collect::<Result<_, _>>()?;
        Ok(Program { instrs })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{:6}: {instr}", i * 4)?;
        }
        Ok(())
    }
}

/// Errors produced while finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch or jump referenced an unknown label.
    UndefinedLabel(String),
    /// A resolved branch offset does not fit its encoding.
    BranchOutOfRange {
        /// The referenced label.
        label: String,
        /// The byte offset that did not fit.
        offset: i64,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            ProgramError::UndefinedLabel(l) => write!(f, "label {l:?} is not defined"),
            ProgramError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to {label:?} out of range (offset {offset})")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    BranchTo {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    JalTo {
        rd: Reg,
        label: String,
    },
}

/// Builds a [`Program`], resolving labels to branch offsets.
///
/// Besides one method per instruction, the builder provides the common
/// pseudo-instructions (`li`, `mv`, `j`, `beqz`, `bnez`, `nop`, `halt`).
///
/// # Example
///
/// ```
/// use cape_isa::{Program, Reg};
///
/// let mut p = Program::builder();
/// p.li(Reg::T0, 3);
/// p.label("loop");
/// p.addi(Reg::T0, Reg::T0, -1);
/// p.bnez(Reg::T0, "loop");
/// p.halt();
/// let prog = p.build()?;
/// assert_eq!(prog.len(), 4);
/// # Ok::<(), cape_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    label_error: Option<ProgramError>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self.labels.insert(name.clone(), self.items.len()).is_some() {
            self.label_error
                .get_or_insert(ProgramError::DuplicateLabel(name));
        }
        self
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Current instruction index (useful for computing sizes).
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for duplicate/undefined labels or
    /// out-of-range branches.
    pub fn build(&self) -> Result<Program, ProgramError> {
        if let Some(e) = &self.label_error {
            return Err(e.clone());
        }
        let mut instrs = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let resolve = |label: &String| -> Result<i64, ProgramError> {
                let target = self
                    .labels
                    .get(label)
                    .ok_or_else(|| ProgramError::UndefinedLabel(label.clone()))?;
                Ok((*target as i64 - idx as i64) * 4)
            };
            let instr = match item {
                Item::Fixed(i) => *i,
                Item::BranchTo {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => {
                    let offset = resolve(label)?;
                    if !(-4096..4096).contains(&offset) {
                        return Err(ProgramError::BranchOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    }
                }
                Item::JalTo { rd, label } => {
                    let offset = resolve(label)?;
                    if !(-(1 << 20)..1 << 20).contains(&offset) {
                        return Err(ProgramError::BranchOutOfRange {
                            label: label.clone(),
                            offset,
                        });
                    }
                    Instr::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    }
                }
            };
            instrs.push(instr);
        }
        Ok(Program { instrs })
    }

    // ----- scalar ------------------------------------------------------

    /// `li rd, imm` — load a 32-bit-signed immediate (expands to
    /// `lui`+`addi` when it does not fit 12 bits).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        assert!(
            (-(1 << 31)..1 << 31).contains(&imm),
            "li immediate {imm} exceeds 32 bits"
        );
        let imm = imm as i32;
        if (-2048..2048).contains(&imm) {
            self.push(Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1: Reg::ZERO,
                imm,
            })
        } else {
            let low = (imm << 20) >> 20; // sign-extended low 12 bits
            let high = imm.wrapping_sub(low) >> 12;
            self.push(Instr::Lui { rd, imm20: high });
            if low != 0 {
                self.push(Instr::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: low,
                });
            }
            self
        }
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1: rs,
            imm: 0,
        })
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        })
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// A register-register ALU operation.
    pub fn op(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Op { op, rd, rs1, rs2 })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Mul, rd, rs1, rs2)
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.push(Instr::Lw { rd, rs1, offset })
    }

    /// `ld rd, offset(rs1)`.
    pub fn ld(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.push(Instr::Ld { rd, rs1, offset })
    }

    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.push(Instr::Sw { rs2, rs1, offset })
    }

    /// `sd rs2, offset(rs1)`.
    pub fn sd(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.push(Instr::Sd { rs2, rs1, offset })
    }

    /// A conditional branch to a label.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.items.push(Item::BranchTo {
            cond,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.beq(rs, Reg::ZERO, label)
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.bne(rs, Reg::ZERO, label)
    }

    /// `j label` (unconditional jump).
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::JalTo {
            rd: Reg::ZERO,
            label: label.into(),
        });
        self
    }

    /// `ecall` used as the halt convention.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Ecall)
    }

    // ----- vector ------------------------------------------------------

    /// `vsetvli rd, rs1, e32,m1`.
    pub fn vsetvli(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Instr::Vsetvli {
            rd,
            rs1,
            sew: Sew::E32,
        })
    }

    /// `vsetvli rd, rs1, e<sew>,m1` with an explicit element width.
    pub fn vsetvli_sew(&mut self, rd: Reg, rs1: Reg, sew: Sew) -> &mut Self {
        self.push(Instr::Vsetvli { rd, rs1, sew })
    }

    /// `vmv.v.v vd, vs`.
    pub fn vmv_vv(&mut self, vd: VReg, vs: VReg) -> &mut Self {
        self.push(Instr::VmvVv { vd, vs })
    }

    /// `vrsub.vx vd, lhs, rs`.
    pub fn vrsub_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.push(Instr::VrsubVx { vd, lhs, rs })
    }

    /// `vmacc.vv vd, vs1, vs2`.
    pub fn vmacc_vv(&mut self, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VmaccVv { vd, vs1, vs2 })
    }

    /// `vsra.vi vd, vs, imm`.
    pub fn vsra_vi(&mut self, vd: VReg, vs: VReg, imm: u32) -> &mut Self {
        self.push(Instr::VsraVi { vd, vs, imm })
    }

    /// `vmin[u].vv` / `vmax[u].vv` convenience forms.
    pub fn vmin_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Min, vd, lhs, rhs)
    }

    /// `vminu.vv vd, lhs, rhs`.
    pub fn vminu_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Minu, vd, lhs, rhs)
    }

    /// `vmax.vv vd, lhs, rhs`.
    pub fn vmax_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Max, vd, lhs, rhs)
    }

    /// `vmaxu.vv vd, lhs, rhs`.
    pub fn vmaxu_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Maxu, vd, lhs, rhs)
    }

    /// `vmsne.vv vd, lhs, rhs`.
    pub fn vmsne_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Msne, vd, lhs, rhs)
    }

    /// `vmsne.vx vd, lhs, rs`.
    pub fn vmsne_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Msne, vd, lhs, rs)
    }

    /// `vsetstart rs1` — set the first active element index.
    pub fn vsetstart(&mut self, rs1: Reg) -> &mut Self {
        self.push(Instr::Vsetstart { rs1 })
    }

    /// `vle32.v vd, (rs1)`.
    pub fn vle32(&mut self, vd: VReg, rs1: Reg) -> &mut Self {
        self.push(Instr::Vle32 { vd, rs1 })
    }

    /// `vse32.v vs3, (rs1)`.
    pub fn vse32(&mut self, vs3: VReg, rs1: Reg) -> &mut Self {
        self.push(Instr::Vse32 { vs3, rs1 })
    }

    /// `vlrw.v vd, rs1, rs2` — the CAPE replica load.
    pub fn vlrw(&mut self, vd: VReg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Vlrw { vd, rs1, rs2 })
    }

    /// Generic `v<op>.vv`.
    pub fn vop_vv(&mut self, op: VAluOp, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.push(Instr::VOpVv { op, vd, lhs, rhs })
    }

    /// Generic `v<op>.vx`.
    pub fn vop_vx(&mut self, op: VAluOp, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.push(Instr::VOpVx { op, vd, lhs, rs })
    }

    /// `vadd.vv vd, lhs, rhs`.
    pub fn vadd_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Add, vd, lhs, rhs)
    }

    /// `vadd.vx vd, lhs, rs`.
    pub fn vadd_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Add, vd, lhs, rs)
    }

    /// `vsub.vv vd, lhs, rhs`.
    pub fn vsub_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Sub, vd, lhs, rhs)
    }

    /// `vmul.vv vd, lhs, rhs`.
    pub fn vmul_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Mul, vd, lhs, rhs)
    }

    /// `vmul.vx vd, lhs, rs`.
    pub fn vmul_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Mul, vd, lhs, rs)
    }

    /// `vand.vv vd, lhs, rhs`.
    pub fn vand_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::And, vd, lhs, rhs)
    }

    /// `vor.vv vd, lhs, rhs`.
    pub fn vor_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Or, vd, lhs, rhs)
    }

    /// `vxor.vv vd, lhs, rhs`.
    pub fn vxor_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Xor, vd, lhs, rhs)
    }

    /// `vmseq.vv vd, lhs, rhs`.
    pub fn vmseq_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Mseq, vd, lhs, rhs)
    }

    /// `vmseq.vx vd, lhs, rs`.
    pub fn vmseq_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Mseq, vd, lhs, rs)
    }

    /// `vmslt.vv vd, lhs, rhs`.
    pub fn vmslt_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Mslt, vd, lhs, rhs)
    }

    /// `vmslt.vx vd, lhs, rs`.
    pub fn vmslt_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Mslt, vd, lhs, rs)
    }

    /// `vmsltu.vv vd, lhs, rhs`.
    pub fn vmsltu_vv(&mut self, vd: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.vop_vv(VAluOp::Msltu, vd, lhs, rhs)
    }

    /// `vmsltu.vx vd, lhs, rs`.
    pub fn vmsltu_vx(&mut self, vd: VReg, lhs: VReg, rs: Reg) -> &mut Self {
        self.vop_vx(VAluOp::Msltu, vd, lhs, rs)
    }

    /// `vmerge.vvm vd, on_false, on_true, v0`.
    pub fn vmerge(&mut self, vd: VReg, on_false: VReg, on_true: VReg) -> &mut Self {
        self.push(Instr::VmergeVvm {
            vd,
            on_false,
            on_true,
        })
    }

    /// `vredsum.vs vd, vs2, vs1`.
    pub fn vredsum(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VredsumVs { vd, vs2, vs1 })
    }

    /// `vmv.v.x vd, rs`.
    pub fn vmv_vx(&mut self, vd: VReg, rs: Reg) -> &mut Self {
        self.push(Instr::VmvVx { vd, rs })
    }

    /// `vmv.x.s rd, vs` — read element 0 into a scalar register.
    pub fn vmv_xs(&mut self, rd: Reg, vs: VReg) -> &mut Self {
        self.push(Instr::VmvXs { rd, vs })
    }

    /// `vcpop.m rd, vs`.
    pub fn vcpop(&mut self, rd: Reg, vs: VReg) -> &mut Self {
        self.push(Instr::VcpopM { rd, vs })
    }

    /// `vfirst.m rd, vs`.
    pub fn vfirst(&mut self, rd: Reg, vs: VReg) -> &mut Self {
        self.push(Instr::VfirstM { rd, vs })
    }

    /// `vid.v vd`.
    pub fn vid(&mut self, vd: VReg) -> &mut Self {
        self.push(Instr::VidV { vd })
    }

    /// `vsll.vi vd, vs, imm`.
    pub fn vsll_vi(&mut self, vd: VReg, vs: VReg, imm: u32) -> &mut Self {
        self.push(Instr::VsllVi { vd, vs, imm })
    }

    /// `vsrl.vi vd, vs, imm`.
    pub fn vsrl_vi(&mut self, vd: VReg, vs: VReg, imm: u32) -> &mut Self {
        self.push(Instr::VsrlVi { vd, vs, imm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_to_byte_offsets() {
        let mut p = Program::builder();
        p.label("top");
        p.addi(Reg::T0, Reg::T0, -1);
        p.bnez(Reg::T0, "top");
        p.halt();
        let prog = p.build().unwrap();
        assert_eq!(
            *prog.instr(1),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -4
            }
        );
    }

    #[test]
    fn forward_labels_resolve() {
        let mut p = Program::builder();
        p.beqz(Reg::A0, "done");
        p.nop();
        p.nop();
        p.label("done");
        p.halt();
        let prog = p.build().unwrap();
        assert_eq!(
            *prog.instr(0),
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: 12
            }
        );
    }

    #[test]
    fn li_expands_large_immediates() {
        let mut p = Program::builder();
        p.li(Reg::A0, 5);
        p.li(Reg::A1, 0x12345);
        p.li(Reg::A2, -100_000);
        p.halt();
        let prog = p.build().unwrap();
        // 1 + 2 + 2 + 1 instructions.
        assert_eq!(prog.len(), 6);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut p = Program::builder();
        p.j("nowhere");
        assert_eq!(
            p.build(),
            Err(ProgramError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut p = Program::builder();
        p.label("x");
        p.nop();
        p.label("x");
        assert_eq!(p.build(), Err(ProgramError::DuplicateLabel("x".into())));
    }

    #[test]
    fn program_words_roundtrip() {
        let mut p = Program::builder();
        p.li(Reg::T0, 64);
        p.vsetvli(Reg::T1, Reg::T0);
        p.vle32(VReg::V1, Reg::A0);
        p.vadd_vv(VReg::V3, VReg::V1, VReg::V1);
        p.vse32(VReg::V3, Reg::A1);
        p.halt();
        let prog = p.build().unwrap();
        let words = prog.encode();
        assert_eq!(Program::decode(&words).unwrap(), prog);
    }

    #[test]
    fn display_lists_addresses() {
        let mut p = Program::builder();
        p.nop();
        p.halt();
        let text = p.build().unwrap().to_string();
        assert!(text.contains("0:"));
        assert!(text.contains("4: ecall"));
    }
}

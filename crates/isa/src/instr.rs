//! The instruction set: RV64I/M scalar subset + RVV subset + `vlrw`.

use crate::reg::{Reg, VReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One decoded instruction.
///
/// Scalar instructions follow RV64I plus the M extension's multiply and
/// divide. Vector instructions follow the RVV convention that the
/// assembly prints `vd, vs2, vs1` — here the operand carried in the `vs2`
/// encoding field is named by its role (`lhs`, `on_false`, …) to keep call
/// sites readable.
///
/// Branch and jump offsets are in *bytes* relative to the instruction's
/// own address, as in real RISC-V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // operand roles are documented on the variant level
pub enum Instr {
    // ----- RV64I scalar ------------------------------------------------
    /// Load upper immediate: `rd = imm << 12`.
    Lui { rd: Reg, imm20: i32 },
    /// Jump and link.
    Jal { rd: Reg, offset: i32 },
    /// Indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Immediate ALU operation.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation (including M-extension ops).
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// 32-bit signed load.
    Lw { rd: Reg, rs1: Reg, offset: i32 },
    /// 32-bit unsigned load.
    Lwu { rd: Reg, rs1: Reg, offset: i32 },
    /// 64-bit load.
    Ld { rd: Reg, rs1: Reg, offset: i32 },
    /// 32-bit store.
    Sw { rs2: Reg, rs1: Reg, offset: i32 },
    /// 64-bit store.
    Sd { rs2: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Environment call — used as the halt convention by the control
    /// processor model.
    Ecall,

    // ----- vector configuration ----------------------------------------
    /// `vsetvli rd, rs1, e<sew>,m1` — request a vector length of `rs1`
    /// elements at the given element width; `rd` receives the granted
    /// length (Section V-F). Resets `vstart` to zero, as the RVV
    /// specification requires. Narrow widths walk fewer bit positions —
    /// the paper's "element types smaller than 32 bits" configuration.
    Vsetvli { rd: Reg, rs1: Reg, sew: Sew },
    /// `vsetstart rs1` — CAPE helper writing the `vstart` CSR: the index
    /// of the first active element (Section V-F repurposes the standard
    /// `vstart` CSR for windowed execution; this stands in for
    /// `csrw vstart, rs1`).
    Vsetstart { rs1: Reg },

    // ----- vector memory ------------------------------------------------
    /// `vle32.v vd, (rs1)` — unit-stride vector load.
    Vle32 { vd: VReg, rs1: Reg },
    /// `vse32.v vs3, (rs1)` — unit-stride vector store.
    Vse32 { vs3: VReg, rs1: Reg },
    /// `vlrw.v vd, rs1, rs2` — CAPE's replica vector load: load `rs2`
    /// contiguous 32-bit values from address `rs1` and replicate the chunk
    /// along the whole vector register (Section V-G).
    Vlrw { vd: VReg, rs1: Reg, rs2: Reg },

    // ----- vector compute -------------------------------------------------
    /// `v<op>.vv vd, lhs, rhs` — element-wise vector-vector operation.
    VOpVv {
        op: VAluOp,
        vd: VReg,
        lhs: VReg,
        rhs: VReg,
    },
    /// `v<op>.vx vd, lhs, rs` — element-wise vector-scalar operation.
    VOpVx {
        op: VAluOp,
        vd: VReg,
        lhs: VReg,
        rs: Reg,
    },
    /// `vmerge.vvm vd, on_false, on_true, v0` — masked select.
    VmergeVvm {
        vd: VReg,
        on_false: VReg,
        on_true: VReg,
    },
    /// `vredsum.vs vd, vs2, vs1` — `vd[0] = vs1[0] + sum(vs2[*])`.
    VredsumVs { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vmv.v.x vd, rs` — broadcast a scalar.
    VmvVx { vd: VReg, rs: Reg },
    /// `vmv.x.s rd, vs` — move element 0 of `vs` to a scalar register.
    VmvXs { rd: Reg, vs: VReg },
    /// `vmv.v.v vd, vs` — vector register copy.
    VmvVv { vd: VReg, vs: VReg },
    /// `vrsub.vx vd, lhs, rs` — reversed subtraction `vd = rs - lhs`.
    VrsubVx { vd: VReg, lhs: VReg, rs: Reg },
    /// `vmacc.vv vd, vs1, vs2` — multiply-accumulate `vd += vs1 * vs2`.
    VmaccVv { vd: VReg, vs1: VReg, vs2: VReg },
    /// `vsra.vi vd, vs, imm` — arithmetic shift right by immediate.
    VsraVi { vd: VReg, vs: VReg, imm: u32 },
    /// `vcpop.m rd, vs` — mask population count into a scalar register.
    VcpopM { rd: Reg, vs: VReg },
    /// `vfirst.m rd, vs` — index of first set mask bit (or -1).
    VfirstM { rd: Reg, vs: VReg },
    /// `vid.v vd` — element indices.
    VidV { vd: VReg },
    /// `vsll.vi vd, vs, imm` — logical shift left by immediate.
    VsllVi { vd: VReg, vs: VReg, imm: u32 },
    /// `vsrl.vi vd, vs, imm` — logical shift right by immediate.
    VsrlVi { vd: VReg, vs: VReg, imm: u32 },
}

/// Scalar ALU operations shared by `Op` and (where legal) `OpImm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Div,
    Divu,
    Rem,
    Remu,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Vector ALU operations with `.vv` and/or `.vx` forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum VAluOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Mseq,
    Msne,
    Mslt,
    Msltu,
    Min,
    Minu,
    Max,
    Maxu,
}

/// Selected element width (`vtype.vsew`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
}

impl Sew {
    /// Element width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
        }
    }
}

impl Instr {
    /// True for vector instructions (offloaded to the VCU/VMU; the control
    /// processor stalls subsequent vector instructions until commit).
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Instr::Vsetvli { .. }
                | Instr::Vsetstart { .. }
                | Instr::Vle32 { .. }
                | Instr::Vse32 { .. }
                | Instr::Vlrw { .. }
                | Instr::VOpVv { .. }
                | Instr::VOpVx { .. }
                | Instr::VmergeVvm { .. }
                | Instr::VredsumVs { .. }
                | Instr::VmvVx { .. }
                | Instr::VmvXs { .. }
                | Instr::VmvVv { .. }
                | Instr::VrsubVx { .. }
                | Instr::VmaccVv { .. }
                | Instr::VsraVi { .. }
                | Instr::VcpopM { .. }
                | Instr::VfirstM { .. }
                | Instr::VidV { .. }
                | Instr::VsllVi { .. }
                | Instr::VsrlVi { .. }
        )
    }

    /// True for vector *memory* instructions (routed to the VMU rather
    /// than the VCU).
    pub fn is_vector_memory(&self) -> bool {
        matches!(
            self,
            Instr::Vle32 { .. } | Instr::Vse32 { .. } | Instr::Vlrw { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match self {
            Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20}"),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            OpImm { op, rd, rs1, imm } => write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(*op)),
            Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(*op)),
            Lw { rd, rs1, offset } => write!(f, "lw {rd}, {offset}({rs1})"),
            Lwu { rd, rs1, offset } => write!(f, "lwu {rd}, {offset}({rs1})"),
            Ld { rd, rs1, offset } => write!(f, "ld {rd}, {offset}({rs1})"),
            Sw { rs2, rs1, offset } => write!(f, "sw {rs2}, {offset}({rs1})"),
            Sd { rs2, rs1, offset } => write!(f, "sd {rs2}, {offset}({rs1})"),
            Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", branch_name(*cond))
            }
            Ecall => write!(f, "ecall"),
            Vsetvli { rd, rs1, sew } => {
                let e = match sew {
                    Sew::E8 => "e8",
                    Sew::E16 => "e16",
                    Sew::E32 => "e32",
                };
                write!(f, "vsetvli {rd}, {rs1}, {e},m1")
            }
            Vsetstart { rs1 } => write!(f, "vsetstart {rs1}"),
            Vle32 { vd, rs1 } => write!(f, "vle32.v {vd}, ({rs1})"),
            Vse32 { vs3, rs1 } => write!(f, "vse32.v {vs3}, ({rs1})"),
            Vlrw { vd, rs1, rs2 } => write!(f, "vlrw.v {vd}, {rs1}, {rs2}"),
            VOpVv { op, vd, lhs, rhs } => write!(f, "{}.vv {vd}, {lhs}, {rhs}", valu_name(*op)),
            VOpVx { op, vd, lhs, rs } => write!(f, "{}.vx {vd}, {lhs}, {rs}", valu_name(*op)),
            VmergeVvm {
                vd,
                on_false,
                on_true,
            } => {
                write!(f, "vmerge.vvm {vd}, {on_false}, {on_true}, v0")
            }
            VredsumVs { vd, vs2, vs1 } => write!(f, "vredsum.vs {vd}, {vs2}, {vs1}"),
            VmvVx { vd, rs } => write!(f, "vmv.v.x {vd}, {rs}"),
            VmvXs { rd, vs } => write!(f, "vmv.x.s {rd}, {vs}"),
            VmvVv { vd, vs } => write!(f, "vmv.v.v {vd}, {vs}"),
            VrsubVx { vd, lhs, rs } => write!(f, "vrsub.vx {vd}, {lhs}, {rs}"),
            VmaccVv { vd, vs1, vs2 } => write!(f, "vmacc.vv {vd}, {vs1}, {vs2}"),
            VsraVi { vd, vs, imm } => write!(f, "vsra.vi {vd}, {vs}, {imm}"),
            VcpopM { rd, vs } => write!(f, "vcpop.m {rd}, {vs}"),
            VfirstM { rd, vs } => write!(f, "vfirst.m {rd}, {vs}"),
            VidV { vd } => write!(f, "vid.v {vd}"),
            VsllVi { vd, vs, imm } => write!(f, "vsll.vi {vd}, {vs}, {imm}"),
            VsrlVi { vd, vs, imm } => write!(f, "vsrl.vi {vd}, {vs}, {imm}"),
        }
    }
}

pub(crate) fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

pub(crate) fn branch_name(c: BranchCond) -> &'static str {
    match c {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

pub(crate) fn valu_name(op: VAluOp) -> &'static str {
    match op {
        VAluOp::Add => "vadd",
        VAluOp::Sub => "vsub",
        VAluOp::Mul => "vmul",
        VAluOp::And => "vand",
        VAluOp::Or => "vor",
        VAluOp::Xor => "vxor",
        VAluOp::Mseq => "vmseq",
        VAluOp::Msne => "vmsne",
        VAluOp::Mslt => "vmslt",
        VAluOp::Msltu => "vmsltu",
        VAluOp::Min => "vmin",
        VAluOp::Minu => "vminu",
        VAluOp::Max => "vmax",
        VAluOp::Maxu => "vmaxu",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_classification() {
        let v = Instr::VOpVv {
            op: VAluOp::Add,
            vd: VReg::V1,
            lhs: VReg::V2,
            rhs: VReg::V3,
        };
        assert!(v.is_vector());
        assert!(!v.is_vector_memory());
        let m = Instr::Vle32 {
            vd: VReg::V1,
            rs1: Reg::A0,
        };
        assert!(m.is_vector() && m.is_vector_memory());
        let s = Instr::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert!(!s.is_vector());
    }

    #[test]
    fn display_produces_assembly() {
        let i = Instr::VOpVv {
            op: VAluOp::Add,
            vd: VReg::V3,
            lhs: VReg::V1,
            rhs: VReg::V2,
        };
        assert_eq!(i.to_string(), "vadd.vv v3, v1, v2");
        let b = Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::T0,
            rs2: Reg::ZERO,
            offset: -8,
        };
        assert_eq!(b.to_string(), "bne x5, x0, -8");
        let l = Instr::Lw {
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 16,
        };
        assert_eq!(l.to_string(), "lw x10, 16(x2)");
    }
}

//! RISC-V instruction-set layer for CAPE: RV64I/M scalar subset plus the
//! standard vector extension subset CAPE implements (Section V-A of the
//! paper), with binary encode/decode, a text assembler, and a program
//! builder with label resolution.
//!
//! CAPE is programmed with *standard* RISC-V vector code — that is the
//! paper's programmability claim — so this crate deliberately mirrors the
//! RV32/RV64 encoding formats (R/I/S/B/U/J types and the OP-V major
//! opcode). One instruction is CAPE-specific: the replica vector load
//! `vlrw.v vd, rs1, rs2` (Section V-G), encoded on the *custom-0* major
//! opcode as the paper suggests for vendor extensions.
//!
//! # Example
//!
//! ```
//! use cape_isa::{Instr, Program, Reg, VReg};
//!
//! let mut p = Program::builder();
//! p.li(Reg::T0, 1024);
//! p.vsetvli(Reg::T1, Reg::T0);
//! p.vadd_vv(VReg::V3, VReg::V1, VReg::V2);
//! p.halt();
//! let prog = p.build().unwrap();
//! assert_eq!(prog.len(), 4);
//!
//! // Instructions round-trip through the binary encoding.
//! let word = prog.instr(2).encode();
//! assert_eq!(Instr::decode(word).unwrap(), *prog.instr(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod encode;
mod instr;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use encode::{DecodeError, EncodeError};
pub use instr::{AluOp, BranchCond, Instr, Sew, VAluOp};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use reg::{Reg, VReg};

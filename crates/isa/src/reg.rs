//! Scalar and vector register names.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A scalar (integer) register, `x0`..`x31`, with the standard ABI
/// aliases exposed as associated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Argument/return registers.
    pub const A0: Reg = Reg(10);
    /// Second argument register.
    pub const A1: Reg = Reg(11);
    /// Third argument register.
    pub const A2: Reg = Reg(12);
    /// Fourth argument register.
    pub const A3: Reg = Reg(13);
    /// Fifth argument register.
    pub const A4: Reg = Reg(14);
    /// Sixth argument register.
    pub const A5: Reg = Reg(15);
    /// Seventh argument register.
    pub const A6: Reg = Reg(16);
    /// Eighth argument register.
    pub const A7: Reg = Reg(17);
    /// Temporaries.
    pub const T0: Reg = Reg(5);
    /// Second temporary.
    pub const T1: Reg = Reg(6);
    /// Third temporary.
    pub const T2: Reg = Reg(7);
    /// Fourth temporary.
    pub const T3: Reg = Reg(28);
    /// Fifth temporary.
    pub const T4: Reg = Reg(29);
    /// Sixth temporary.
    pub const T5: Reg = Reg(30);
    /// Seventh temporary.
    pub const T6: Reg = Reg(31);
    /// Saved registers.
    pub const S0: Reg = Reg(8);
    /// Second saved register.
    pub const S1: Reg = Reg(9);
    /// Third saved register.
    pub const S2: Reg = Reg(18);
    /// Fourth saved register.
    pub const S3: Reg = Reg(19);
    /// Fifth saved register.
    pub const S4: Reg = Reg(20);
    /// Sixth saved register.
    pub const S5: Reg = Reg(21);
    /// Seventh saved register.
    pub const S6: Reg = Reg(22);
    /// Eighth saved register.
    pub const S7: Reg = Reg(23);
    /// Ninth saved register.
    pub const S8: Reg = Reg(24);
    /// Tenth saved register.
    pub const S9: Reg = Reg(25);
    /// Eleventh saved register.
    pub const S10: Reg = Reg(26);
    /// Twelfth saved register.
    pub const S11: Reg = Reg(27);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn new(idx: u8) -> Self {
        assert!(idx < 32, "scalar register index {idx} out of range");
        Reg(idx)
    }

    /// The register index (`0..32`).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl FromStr for Reg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let abi = [
            ("zero", 0),
            ("ra", 1),
            ("sp", 2),
            ("gp", 3),
            ("tp", 4),
            ("t0", 5),
            ("t1", 6),
            ("t2", 7),
            ("s0", 8),
            ("fp", 8),
            ("s1", 9),
            ("a0", 10),
            ("a1", 11),
            ("a2", 12),
            ("a3", 13),
            ("a4", 14),
            ("a5", 15),
            ("a6", 16),
            ("a7", 17),
            ("s2", 18),
            ("s3", 19),
            ("s4", 20),
            ("s5", 21),
            ("s6", 22),
            ("s7", 23),
            ("s8", 24),
            ("s9", 25),
            ("s10", 26),
            ("s11", 27),
            ("t3", 28),
            ("t4", 29),
            ("t5", 30),
            ("t6", 31),
        ];
        if let Some(&(_, i)) = abi.iter().find(|(n, _)| *n == s) {
            return Ok(Reg(i));
        }
        if let Some(num) = s.strip_prefix('x') {
            let i: u8 = num.parse().map_err(|_| format!("bad register {s:?}"))?;
            if i < 32 {
                return Ok(Reg(i));
            }
        }
        Err(format!("unknown scalar register {s:?}"))
    }
}

/// A vector register, `v0`..`v31`. `v0` doubles as the mask register, as
/// in the RVV specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(u8);

macro_rules! vreg_consts {
    ($($name:ident = $i:expr),* $(,)?) => {
        $(#[doc = concat!("Vector register v", stringify!($i), ".")]
        pub const $name: VReg = VReg($i);)*
    };
}

impl VReg {
    vreg_consts! {
        V0 = 0, V1 = 1, V2 = 2, V3 = 3, V4 = 4, V5 = 5, V6 = 6, V7 = 7,
        V8 = 8, V9 = 9, V10 = 10, V11 = 11, V12 = 12, V13 = 13, V14 = 14,
        V15 = 15, V16 = 16, V17 = 17, V18 = 18, V19 = 19, V20 = 20,
        V21 = 21, V22 = 22, V23 = 23, V24 = 24, V25 = 25, V26 = 26,
        V27 = 27, V28 = 28, V29 = 29, V30 = 30, V31 = 31,
    }

    /// Creates a vector register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn new(idx: u8) -> Self {
        assert!(idx < 32, "vector register index {idx} out of range");
        VReg(idx)
    }

    /// The register index (`0..32`) — also the subarray row it occupies
    /// in every CAPE chain.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl FromStr for VReg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(num) = s.strip_prefix('v') {
            if let Ok(i) = num.parse::<u8>() {
                if i < 32 {
                    return Ok(VReg(i));
                }
            }
        }
        Err(format!("unknown vector register {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_parse() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("a0".parse::<Reg>().unwrap(), Reg::A0);
        assert_eq!("t3".parse::<Reg>().unwrap(), Reg::T3);
        assert_eq!("x17".parse::<Reg>().unwrap(), Reg::A7);
        assert!("x32".parse::<Reg>().is_err());
        assert!("q1".parse::<Reg>().is_err());
    }

    #[test]
    fn vector_names_parse() {
        assert_eq!("v0".parse::<VReg>().unwrap(), VReg::V0);
        assert_eq!("v31".parse::<VReg>().unwrap(), VReg::V31);
        assert!("v32".parse::<VReg>().is_err());
    }

    #[test]
    fn display_is_canonical() {
        assert_eq!(Reg::A0.to_string(), "x10");
        assert_eq!(VReg::V7.to_string(), "v7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        Reg::new(32);
    }
}

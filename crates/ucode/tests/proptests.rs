//! Property-based tests: the associative algorithms must agree with
//! native scalar semantics on arbitrary inputs, windows and aliasing.

use cape_csb::{Csb, CsbGeometry};
use cape_ucode::{Sequencer, VectorOp};
use proptest::prelude::*;

fn csb3(a: &[u32], b: &[u32]) -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(2));
    csb.write_vector(1, a);
    csb.write_vector(2, b);
    csb.set_active_window(0, a.len());
    csb
}

fn vecs() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..=64).prop_flat_map(|len| {
        (
            proptest::collection::vec(any::<u32>(), len),
            proptest::collection::vec(any::<u32>(), len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_matches_wrapping_add((a, b) in vecs()) {
        let mut csb = csb3(&a, &b);
        Sequencer::new(&mut csb).execute(&VectorOp::Add { vd: 3, vs1: 1, vs2: 2 });
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        prop_assert_eq!(csb.read_vector(3, a.len()), want);
    }

    #[test]
    fn sub_matches_wrapping_sub((a, b) in vecs()) {
        let mut csb = csb3(&a, &b);
        Sequencer::new(&mut csb).execute(&VectorOp::Sub { vd: 3, vs1: 1, vs2: 2 });
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_sub(*y)).collect();
        prop_assert_eq!(csb.read_vector(3, a.len()), want);
    }

    #[test]
    fn mul_matches_wrapping_mul((a, b) in vecs()) {
        let mut csb = csb3(&a, &b);
        Sequencer::new(&mut csb).execute(&VectorOp::Mul { vd: 3, vs1: 1, vs2: 2 });
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_mul(*y)).collect();
        prop_assert_eq!(csb.read_vector(3, a.len()), want);
    }

    #[test]
    fn add_scalar_matches((a, _) in vecs(), rs in any::<u32>()) {
        let mut csb = csb3(&a, &a);
        Sequencer::new(&mut csb).execute(&VectorOp::AddScalar { vd: 3, vs1: 1, rs });
        let want: Vec<u32> = a.iter().map(|x| x.wrapping_add(rs)).collect();
        prop_assert_eq!(csb.read_vector(3, a.len()), want);
    }

    #[test]
    fn mul_scalar_matches((a, _) in vecs(), rs in any::<u32>()) {
        let mut csb = csb3(&a, &a);
        Sequencer::new(&mut csb).execute(&VectorOp::MulScalar { vd: 3, vs1: 1, rs });
        let want: Vec<u32> = a.iter().map(|x| x.wrapping_mul(rs)).collect();
        prop_assert_eq!(csb.read_vector(3, a.len()), want);
    }

    #[test]
    fn comparisons_match((a, b) in vecs()) {
        let mut csb = csb3(&a, &b);
        {
            let mut seq = Sequencer::new(&mut csb);
            seq.execute(&VectorOp::Mseq { vd: 3, vs1: 1, vs2: 2 });
            seq.execute(&VectorOp::Mslt { vd: 4, vs1: 1, vs2: 2, signed: false });
            seq.execute(&VectorOp::Mslt { vd: 5, vs1: 1, vs2: 2, signed: true });
        }
        for e in 0..a.len() {
            prop_assert_eq!(csb.read_element(3, e) & 1 == 1, a[e] == b[e]);
            prop_assert_eq!(csb.read_element(4, e) & 1 == 1, a[e] < b[e]);
            prop_assert_eq!(csb.read_element(5, e) & 1 == 1, (a[e] as i32) < (b[e] as i32));
        }
    }

    #[test]
    fn redsum_matches_wrapping_fold((a, _) in vecs()) {
        let mut csb = csb3(&a, &a);
        let out = Sequencer::new(&mut csb).execute(&VectorOp::RedSum { vd: 6, vs: 1 });
        let want = a.iter().fold(0u32, |s, &x| s.wrapping_add(x));
        prop_assert_eq!(out.scalar, Some(i64::from(want)));
    }

    #[test]
    fn window_protects_tail((a, b) in vecs(), cut in 0usize..64) {
        let vl = (cut % a.len()).max(1);
        let mut csb = csb3(&a, &b);
        csb.write_vector(3, &vec![0x5A5A_5A5A; a.len()]);
        csb.set_active_window(0, vl);
        Sequencer::new(&mut csb).execute(&VectorOp::Add { vd: 3, vs1: 1, vs2: 2 });
        let got = csb.read_vector(3, a.len());
        for e in 0..a.len() {
            if e < vl {
                prop_assert_eq!(got[e], a[e].wrapping_add(b[e]));
            } else {
                prop_assert_eq!(got[e], 0x5A5A_5A5A);
            }
        }
    }

    #[test]
    fn mul_then_redsum_is_dot_product(
        (a, b) in (1usize..=32).prop_flat_map(|len| {
            (
                proptest::collection::vec(0u32..1000, len),
                proptest::collection::vec(0u32..1000, len),
            )
        })
    ) {
        let mut csb = csb3(&a, &b);
        let out = {
            let mut seq = Sequencer::new(&mut csb);
            seq.execute(&VectorOp::Mul { vd: 3, vs1: 1, vs2: 2 });
            seq.execute(&VectorOp::RedSum { vd: 4, vs: 3 })
        };
        let want: u32 = a.iter().zip(&b).fold(0u32, |s, (x, y)| {
            s.wrapping_add(x.wrapping_mul(*y))
        });
        prop_assert_eq!(out.scalar, Some(i64::from(want)));
    }
}

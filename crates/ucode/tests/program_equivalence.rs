//! Differential tests: the program-granularity broadcast path
//! ([`Sequencer::run_program`]) must be bit-identical to the per-microop
//! baseline ([`Sequencer::execute`]) — same scalar results, same microop
//! statistics, and the same CSB register file — for every vector
//! operation, every SEW, and masked/tail windows.

use cape_csb::{Csb, CsbGeometry, DATA_ROWS};
use cape_ucode::{CompiledOp, LogicOp, Sequencer, VectorOp};

/// Every operation shape the sequencer accepts, with registers chosen to
/// satisfy the aliasing rules (vd=3, vs1=1, vs2=2, mask v0) and scalars
/// covering zero, small, sign-bit and all-ones specializations.
fn all_ops() -> Vec<VectorOp> {
    let mut ops = vec![
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Add {
            vd: 1,
            vs1: 1,
            vs2: 2,
        }, // vd aliases vs1
        VectorOp::Add {
            vd: 2,
            vs1: 1,
            vs2: 2,
        }, // vd aliases vs2
        VectorOp::Sub {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Sub {
            vd: 2,
            vs1: 1,
            vs2: 2,
        }, // vd aliases the subtrahend
        VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::And {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Or {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Xor {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mseq {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Msne {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: false,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: false,
            signed: false,
        },
        VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: true,
            signed: true,
        },
        VectorOp::Macc {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mv { vd: 3, vs: 1 },
        VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::Cpop { vs: 4 },
        VectorOp::First { vs: 4 },
        VectorOp::Vid { vd: 3 },
        VectorOp::Increment { vd: 3 },
    ];
    for rs in [0u32, 1, 0x7F, 0x8000_0001, u32::MAX] {
        ops.extend([
            VectorOp::AddScalar { vd: 3, vs1: 1, rs },
            VectorOp::SubScalar { vd: 3, vs1: 1, rs },
            VectorOp::RsubScalar { vd: 3, vs1: 1, rs },
            VectorOp::MulScalar { vd: 3, vs1: 1, rs },
            VectorOp::MseqScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsneScalar { vd: 3, vs1: 1, rs },
            VectorOp::MsltScalar {
                vd: 3,
                vs1: 1,
                rs,
                signed: false,
            },
            VectorOp::MsltScalar {
                vd: 3,
                vs1: 1,
                rs,
                signed: true,
            },
            VectorOp::MinMaxScalar {
                vd: 3,
                vs1: 1,
                rs,
                max: false,
                signed: true,
            },
            VectorOp::MinMaxScalar {
                vd: 3,
                vs1: 1,
                rs,
                max: true,
                signed: false,
            },
            VectorOp::LogicScalar {
                op: LogicOp::And,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Or,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::LogicScalar {
                op: LogicOp::Xor,
                vd: 3,
                vs1: 1,
                rs,
            },
            VectorOp::Broadcast { vd: 3, rs },
        ]);
    }
    for sh in [0u32, 1, 7, 31, 35] {
        ops.extend([
            VectorOp::ShiftLeft { vd: 3, vs: 1, sh },
            VectorOp::ShiftRight { vd: 3, vs: 1, sh },
            VectorOp::ShiftRightArith { vd: 3, vs: 1, sh },
        ]);
    }
    ops
}

/// A CSB with deterministic pseudorandom contents in the source
/// registers, a mask in v0, and a sparse bit pattern in v4 (for
/// `vfirst`/`vcpop`).
fn seeded_csb(chains: usize) -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(chains));
    let n = csb.max_vl();
    let mut state = 0x9E37_79B9_u32;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for reg in [0usize, 1, 2, 3] {
        let vals: Vec<u32> = (0..n).map(|_| next()).collect();
        csb.write_vector(reg, &vals);
    }
    let sparse: Vec<u32> = (0..n).map(|e| u32::from(e % 97 == 41)).collect();
    csb.write_vector(4, &sparse);
    csb
}

/// Runs `op` through both execution paths on identically-seeded CSBs and
/// asserts bit-exact agreement of scalars, stats and all data rows.
fn assert_paths_agree(op: &VectorOp, sew: usize, vstart: usize, vl: usize, chains: usize) {
    let mut per_op = seeded_csb(chains);
    let mut program = seeded_csb(chains);
    per_op.set_active_window(vstart, vl);
    program.set_active_window(vstart, vl);

    let compiled = CompiledOp::compile(op, sew);
    let baseline = Sequencer::with_width(&mut per_op, sew).run_per_op(&compiled);
    let broadcast = Sequencer::with_width(&mut program, sew).run_program(&compiled);

    let ctx = format!("{op:?} sew={sew} window={vstart}..{vl} chains={chains}");
    assert_eq!(broadcast.scalar, baseline.scalar, "scalar result: {ctx}");
    assert_eq!(broadcast.stats, baseline.stats, "microop stats: {ctx}");
    let n = per_op.max_vl();
    for reg in 0..DATA_ROWS {
        assert_eq!(
            program.read_vector(reg, n),
            per_op.read_vector(reg, n),
            "register v{reg}: {ctx}"
        );
    }
}

#[test]
fn every_op_matches_at_every_sew_full_window() {
    for op in &all_ops() {
        for sew in [8usize, 16, 32] {
            assert_paths_agree(op, sew, 0, 128, 4);
        }
    }
}

#[test]
fn every_op_matches_on_masked_and_tail_windows() {
    // vstart > 0 (restart), vl < max (tail), and both at once.
    for op in &all_ops() {
        for &(vstart, vl) in &[(0usize, 77usize), (13, 128), (5, 99)] {
            assert_paths_agree(op, 32, vstart, vl, 4);
        }
    }
}

#[test]
fn representative_ops_match_through_the_worker_pool() {
    // 600 chains with a partial window: enough active chains that the
    // CSB's threaded broadcast path engages (when the host has >1 CPU),
    // with some chains fully masked off.
    let ops = [
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::MseqScalar {
            vd: 3,
            vs1: 1,
            rs: 0x7F,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::Cpop { vs: 4 },
        VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
    ];
    let vl = 600 * 32 - 1000;
    for op in &ops {
        assert_paths_agree(op, 32, 3, vl, 600);
    }
}

#[test]
fn per_op_baseline_equals_legacy_execute() {
    // Sequencer::execute is compile + run_per_op; make sure the public
    // entry point and an explicitly compiled replay agree too.
    let op = VectorOp::Add {
        vd: 3,
        vs1: 1,
        vs2: 2,
    };
    let mut a = seeded_csb(4);
    let mut b = seeded_csb(4);
    a.set_active_window(0, 100);
    b.set_active_window(0, 100);
    let ra = Sequencer::new(&mut a).execute(&op);
    let compiled = CompiledOp::compile(&op, 32);
    let rb = Sequencer::new(&mut b).run_per_op(&compiled);
    assert_eq!(ra, rb);
    assert_eq!(a.read_vector(3, 128), b.read_vector(3, 128));
}

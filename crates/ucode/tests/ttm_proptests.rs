//! Property tests over the packed TTM encoding: arbitrary well-formed
//! truth tables must round-trip through the command-bus format.

use cape_ucode::truth_table::{BitSerialAlgorithm, GroupUpdate, Pattern};
use proptest::prelude::*;

fn pattern() -> impl Strategy<Value = Pattern> {
    let bit = proptest::option::of(any::<bool>());
    (bit.clone(), bit.clone(), bit).prop_map(|(d, a, c)| Pattern { d, a, c })
}

fn group_update() -> impl Strategy<Value = GroupUpdate> {
    (proptest::option::of(any::<bool>()), any::<bool>()).prop_map(|(write_d, write_carry)| {
        GroupUpdate {
            write_d,
            write_carry,
        }
    })
}

fn algorithm() -> impl Strategy<Value = BitSerialAlgorithm> {
    (
        proptest::collection::vec(pattern(), 0..3),
        proptest::collection::vec(pattern(), 0..4),
        proptest::collection::vec(pattern(), 0..4),
        group_update(),
        group_update(),
        any::<bool>(),
    )
        .prop_map(
            |(carry, acc, tag, acc_update, tag_update, carry_init)| BitSerialAlgorithm {
                name: "generated",
                carry_patterns: carry,
                acc_patterns: acc,
                tag_patterns: tag,
                acc_update,
                tag_update,
                carry_init,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ttm_encoding_roundtrips(alg in algorithm()) {
        let words = alg.encode();
        prop_assert_eq!(words.len(), 1 + alg.entries());
        let back = BitSerialAlgorithm::decode(&words).unwrap();
        prop_assert_eq!(back.carry_patterns, alg.carry_patterns);
        prop_assert_eq!(back.acc_patterns, alg.acc_patterns);
        prop_assert_eq!(back.tag_patterns, alg.tag_patterns);
        prop_assert_eq!(back.acc_update, alg.acc_update);
        prop_assert_eq!(back.tag_update, alg.tag_update);
        prop_assert_eq!(back.carry_init, alg.carry_init);
    }

    #[test]
    fn entry_counts_and_row_bounds_are_consistent(alg in algorithm()) {
        prop_assert_eq!(
            alg.entries(),
            alg.carry_patterns.len() + alg.acc_patterns.len() + alg.tag_patterns.len()
        );
        // No pattern in the (d, a, c) space can drive more than 3 rows,
        // which respects the hardware's 4-row search budget even with a
        // vmul-style gate row added.
        prop_assert!(alg.max_search_rows() <= 3);
    }
}

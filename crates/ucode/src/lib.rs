//! Associative algorithms and the microcode sequencer that drives CAPE's
//! Compute-Storage Block.
//!
//! The Vector Control Unit (VCU) breaks every RISC-V vector instruction
//! into a sequence of CSB microoperations — searches, updates, reads,
//! writes and reductions (Section V-D of the CAPE paper, HPCA 2021). The
//! *shape* of that sequence is an **associative algorithm**: a truth table
//! walked bit-serially (arithmetic), a handful of bit-parallel
//! search/update pairs (logic), or a search feeding the reduction tree
//! (`vredsum`).
//!
//! This crate provides:
//!
//! * [`VectorOp`] — the operation set the VCU accepts (the semantic layer
//!   under the RISC-V vector instructions of `cape-isa`).
//! * [`truth_table`] — the symbolic truth-table representation stored in
//!   each chain controller's truth-table memory (TTM), including the
//!   packed binary encoding distributed over the command bus.
//! * [`Sequencer`] — executes a [`VectorOp`] against a
//!   [`Csb`](cape_csb::Csb), emitting the exact microop sequence the
//!   hardware would, and returning per-instruction microop statistics.
//! * [`metrics`] — Table I of the paper (per-instruction truth-table
//!   entries, active rows, cycle counts and energy), both the published
//!   values and the values measured from this emulator.
//!
//! # Example
//!
//! ```
//! use cape_csb::{Csb, CsbGeometry};
//! use cape_ucode::{Sequencer, VectorOp};
//!
//! let mut csb = Csb::new(CsbGeometry::new(2));
//! csb.write_vector(1, &[10, 20, 30]);
//! csb.write_vector(2, &[1, 2, 3]);
//! csb.set_active_window(0, 3);
//!
//! let mut seq = Sequencer::new(&mut csb);
//! seq.execute(&VectorOp::Add { vd: 3, vs1: 1, vs2: 2 });
//! assert_eq!(csb.read_vector(3, 3), vec![11, 22, 33]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod truth_table;

mod sequencer;
mod vop;
mod window;

pub use sequencer::{CompiledOp, ExecOutcome, PostProcess, Sequencer, SequencerError};
pub use vop::{LogicOp, VectorOp, VectorOpKind};
pub use window::{fuse_window, window_fingerprint};

//! Symbolic truth tables and their packed TTM encoding.
//!
//! Every chain controller stores the truth table of the current
//! associative algorithm in a small truth-table memory (TTM); a decoder
//! expands each entry into search/update data and masks for the subarray
//! drivers (Section V-D, Fig. 7). Entries are encoded compactly: only the
//! bits that participate in the operation carry a *valid* flag and a
//! value, plus a group field selecting which match register the search
//! feeds and which bulk update consumes it.
//!
//! The bit-serial arithmetic family (`vadd`, `vsub`, `vmul`'s inner adder,
//! and the Fig. 1 increment) shares one structure, captured by
//! [`BitSerialAlgorithm`]: per bit position, patterns over the triple
//! `(d, a, c)` — destination bit, addend bit, running carry/borrow — are
//! searched in three groups:
//!
//! 1. the **carry group**, searched first on pristine state, which only
//!    writes the next bit's carry;
//! 2. the **accumulator group**, latched into the tag-bit accumulator;
//! 3. the **tag group**, latched into the tag bits.
//!
//! Latching the two destination-flipping groups into *separate* match
//! registers before either update executes is what prevents an update
//! from re-matching elements the other group already transformed — the
//! classic search-order hazard of associative arithmetic.

use serde::{Deserialize, Serialize};

/// A search pattern over the `(d, a, c)` triple at one bit position.
/// `None` is "don't care" (the row is masked out of the search).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Required value of the destination bit `vd[i]`.
    pub d: Option<bool>,
    /// Required value of the addend bit (`vs2[i]`, or `vs1[i]` for `vmul`).
    pub a: Option<bool>,
    /// Required value of the running carry/borrow.
    pub c: Option<bool>,
}

impl Pattern {
    /// Pattern requiring exact values for all three rows.
    pub fn exact(d: bool, a: bool, c: bool) -> Self {
        Self {
            d: Some(d),
            a: Some(a),
            c: Some(c),
        }
    }

    /// Number of rows this pattern actually searches.
    pub fn search_rows(&self) -> usize {
        usize::from(self.d.is_some())
            + usize::from(self.a.is_some())
            + usize::from(self.c.is_some())
    }
}

/// What a group's bulk update writes once its searches have been latched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupUpdate {
    /// New value for the destination bit, if it flips.
    pub write_d: Option<bool>,
    /// Whether the next bit position's carry/borrow row is set to 1
    /// (through the Fig. 5 inter-subarray propagation link).
    pub write_carry: bool,
}

/// A bit-serial associative algorithm: the TTM content for one arithmetic
/// instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialAlgorithm {
    /// Human-readable name (e.g. `"adder"`).
    pub name: &'static str,
    /// Carry-only patterns, searched first (their update writes only the
    /// next carry, so they can precede the destination-flipping groups).
    pub carry_patterns: Vec<Pattern>,
    /// Patterns latched into the tag-bit accumulator.
    pub acc_patterns: Vec<Pattern>,
    /// Patterns latched into the tag bits.
    pub tag_patterns: Vec<Pattern>,
    /// Update consuming the accumulator group.
    pub acc_update: GroupUpdate,
    /// Update consuming the tag group.
    pub tag_update: GroupUpdate,
    /// Initial value of the carry/borrow row at the least significant bit
    /// (1 for increment, 0 for add/sub).
    pub carry_init: bool,
}

impl BitSerialAlgorithm {
    /// The full-adder truth table of `vadd` (Table I: 5 entries).
    ///
    /// With `vd` pre-loaded with `vs1` (in-place accumulation), only the
    /// combinations where the destination bit or the carry changes need
    /// search-update pairs; the crossed-out rows of Fig. 1's truth tables
    /// are exactly the omitted ones.
    pub fn adder() -> Self {
        Self {
            name: "adder",
            // (a=1, c=1) always generates a carry regardless of d.
            carry_patterns: vec![Pattern {
                d: None,
                a: Some(true),
                c: Some(true),
            }],
            // d flips 0 -> 1: 0+0+1 and 0+1+0.
            acc_patterns: vec![
                Pattern::exact(false, false, true),
                Pattern::exact(false, true, false),
            ],
            // d flips 1 -> 0 and generates a carry: 1+0+1 and 1+1+0.
            tag_patterns: vec![
                Pattern::exact(true, false, true),
                Pattern::exact(true, true, false),
            ],
            acc_update: GroupUpdate {
                write_d: Some(true),
                write_carry: false,
            },
            tag_update: GroupUpdate {
                write_d: Some(false),
                write_carry: true,
            },
            carry_init: false,
        }
    }

    /// The full-subtractor truth table of `vsub` (Table I: 5 entries).
    ///
    /// Remarkably, the *search* patterns are identical to the adder's —
    /// only which groups generate a borrow differs: the borrow is
    /// generated when the minuend bit underflows (`d` flips 0 -> 1) or
    /// when both subtrahend and borrow are set.
    pub fn subtractor() -> Self {
        Self {
            name: "subtractor",
            // (a=1, br=1): covers 0-1-1 and 1-1-1, borrow propagates.
            carry_patterns: vec![Pattern {
                d: None,
                a: Some(true),
                c: Some(true),
            }],
            // d flips 0 -> 1 (underflow): 0-0-1 and 0-1-0; both borrow.
            acc_patterns: vec![
                Pattern::exact(false, false, true),
                Pattern::exact(false, true, false),
            ],
            // d flips 1 -> 0, no borrow: 1-0-1 and 1-1-0.
            tag_patterns: vec![
                Pattern::exact(true, false, true),
                Pattern::exact(true, true, false),
            ],
            acc_update: GroupUpdate {
                write_d: Some(true),
                write_carry: true,
            },
            tag_update: GroupUpdate {
                write_d: Some(false),
                write_carry: false,
            },
            carry_init: false,
        }
    }

    /// The half-adder truth table of the Fig. 1 increment (2 entries).
    pub fn incrementer() -> Self {
        Self {
            name: "incrementer",
            carry_patterns: vec![],
            // d flips 0 -> 1 where the carry is set; carry is consumed.
            acc_patterns: vec![Pattern {
                d: Some(false),
                a: None,
                c: Some(true),
            }],
            // d flips 1 -> 0 where the carry is set; carry propagates.
            tag_patterns: vec![Pattern {
                d: Some(true),
                a: None,
                c: Some(true),
            }],
            acc_update: GroupUpdate {
                write_d: Some(true),
                write_carry: false,
            },
            tag_update: GroupUpdate {
                write_d: Some(false),
                write_carry: true,
            },
            carry_init: true,
        }
    }

    /// Total truth-table entry count — the "TT Ent." column of Table I.
    pub fn entries(&self) -> usize {
        self.carry_patterns.len() + self.acc_patterns.len() + self.tag_patterns.len()
    }

    /// Maximum rows searched by any pattern — the "Active Rows/Sub Srch"
    /// column of Table I (excluding gate rows such as `vmul`'s multiplier
    /// bit).
    pub fn max_search_rows(&self) -> usize {
        self.carry_patterns
            .iter()
            .chain(&self.acc_patterns)
            .chain(&self.tag_patterns)
            .map(Pattern::search_rows)
            .max()
            .unwrap_or(0)
    }

    /// Encodes the algorithm into packed TTM words (one `u16` header plus
    /// one `u16` per entry), the format distributed over the global
    /// command bus at instruction start.
    pub fn encode(&self) -> Vec<u16> {
        let mut words = Vec::with_capacity(1 + self.entries());
        let mut header = 0u16;
        header |= encode_update(self.acc_update);
        header |= encode_update(self.tag_update) << 3;
        header |= u16::from(self.carry_init) << 6;
        words.push(header);
        for (group, patterns) in [
            (0u16, &self.carry_patterns),
            (1, &self.acc_patterns),
            (2, &self.tag_patterns),
        ] {
            for p in patterns {
                words.push(encode_pattern(*p) | (group << 6) | (1 << 8));
            }
        }
        words
    }

    /// Decodes packed TTM words produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string when the words are truncated or
    /// contain an invalid group code.
    pub fn decode(words: &[u16]) -> Result<Self, String> {
        let (&header, entries) = words
            .split_first()
            .ok_or_else(|| "empty TTM encoding".to_string())?;
        let mut alg = Self {
            name: "decoded",
            carry_patterns: vec![],
            acc_patterns: vec![],
            tag_patterns: vec![],
            acc_update: decode_update(header),
            tag_update: decode_update(header >> 3),
            carry_init: header >> 6 & 1 == 1,
        };
        for &w in entries {
            if w >> 8 & 1 == 0 {
                return Err(format!("TTM entry {w:#06x} has its valid bit clear"));
            }
            let p = decode_pattern(w);
            match w >> 6 & 0b11 {
                0 => alg.carry_patterns.push(p),
                1 => alg.acc_patterns.push(p),
                2 => alg.tag_patterns.push(p),
                g => return Err(format!("invalid TTM group code {g}")),
            }
        }
        Ok(alg)
    }
}

fn encode_update(u: GroupUpdate) -> u16 {
    let mut w = 0u16;
    if let Some(v) = u.write_d {
        w |= 1 | u16::from(v) << 1;
    }
    w |= u16::from(u.write_carry) << 2;
    w
}

fn decode_update(w: u16) -> GroupUpdate {
    GroupUpdate {
        write_d: (w & 1 == 1).then_some(w >> 1 & 1 == 1),
        write_carry: w >> 2 & 1 == 1,
    }
}

fn encode_pattern(p: Pattern) -> u16 {
    let enc = |v: Option<bool>, at: u16| -> u16 {
        match v {
            Some(b) => (1 | u16::from(b) << 1) << at,
            None => 0,
        }
    };
    enc(p.d, 0) | enc(p.a, 2) | enc(p.c, 4)
}

fn decode_pattern(w: u16) -> Pattern {
    let dec = |at: u16| -> Option<bool> { (w >> at & 1 == 1).then(|| w >> (at + 1) & 1 == 1) };
    Pattern {
        d: dec(0),
        a: dec(2),
        c: dec(4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Software reference for one full-adder bit step, following the
    /// algorithm's group semantics. Returns `(d', carry_out)`.
    fn step(alg: &BitSerialAlgorithm, d: bool, a: bool, c: bool) -> (bool, bool) {
        let matches = |p: &Pattern| {
            p.d.is_none_or(|v| v == d) && p.a.is_none_or(|v| v == a) && p.c.is_none_or(|v| v == c)
        };
        let mut d_out = d;
        let mut carry = false;
        if alg.carry_patterns.iter().any(matches) {
            carry = true;
        }
        if alg.acc_patterns.iter().any(matches) {
            if let Some(v) = alg.acc_update.write_d {
                d_out = v;
            }
            carry |= alg.acc_update.write_carry;
        }
        if alg.tag_patterns.iter().any(matches) {
            if let Some(v) = alg.tag_update.write_d {
                d_out = v;
            }
            carry |= alg.tag_update.write_carry;
        }
        (d_out, carry)
    }

    #[test]
    fn adder_table_implements_a_full_adder() {
        let alg = BitSerialAlgorithm::adder();
        for d in [false, true] {
            for a in [false, true] {
                for c in [false, true] {
                    let (s, co) = step(&alg, d, a, c);
                    let sum = u8::from(d) + u8::from(a) + u8::from(c);
                    assert_eq!(s, sum & 1 == 1, "sum for d={d} a={a} c={c}");
                    assert_eq!(co, sum >= 2, "carry for d={d} a={a} c={c}");
                }
            }
        }
    }

    #[test]
    fn subtractor_table_implements_a_full_subtractor() {
        let alg = BitSerialAlgorithm::subtractor();
        for d in [false, true] {
            for a in [false, true] {
                for c in [false, true] {
                    let (diff, bo) = step(&alg, d, a, c);
                    let v = i8::from(d) - i8::from(a) - i8::from(c);
                    assert_eq!(diff, v.rem_euclid(2) == 1, "diff for d={d} a={a} br={c}");
                    assert_eq!(bo, v < 0, "borrow for d={d} a={a} br={c}");
                }
            }
        }
    }

    #[test]
    fn incrementer_table_implements_a_half_adder() {
        let alg = BitSerialAlgorithm::incrementer();
        for d in [false, true] {
            for c in [false, true] {
                let (s, co) = step(&alg, d, false, c);
                let sum = u8::from(d) + u8::from(c);
                assert_eq!(s, sum & 1 == 1);
                assert_eq!(co, sum >= 2);
            }
        }
    }

    #[test]
    fn entry_counts_match_table_one() {
        assert_eq!(BitSerialAlgorithm::adder().entries(), 5);
        assert_eq!(BitSerialAlgorithm::subtractor().entries(), 5);
        assert_eq!(BitSerialAlgorithm::incrementer().entries(), 2);
    }

    #[test]
    fn search_row_maxima_match_table_one() {
        assert_eq!(BitSerialAlgorithm::adder().max_search_rows(), 3);
        assert_eq!(BitSerialAlgorithm::subtractor().max_search_rows(), 3);
        assert_eq!(BitSerialAlgorithm::incrementer().max_search_rows(), 2);
    }

    #[test]
    fn ttm_encoding_roundtrips() {
        for alg in [
            BitSerialAlgorithm::adder(),
            BitSerialAlgorithm::subtractor(),
            BitSerialAlgorithm::incrementer(),
        ] {
            let words = alg.encode();
            assert_eq!(words.len(), 1 + alg.entries());
            let back = BitSerialAlgorithm::decode(&words).unwrap();
            assert_eq!(back.carry_patterns, alg.carry_patterns);
            assert_eq!(back.acc_patterns, alg.acc_patterns);
            assert_eq!(back.tag_patterns, alg.tag_patterns);
            assert_eq!(back.acc_update, alg.acc_update);
            assert_eq!(back.tag_update, alg.tag_update);
            assert_eq!(back.carry_init, alg.carry_init);
        }
    }

    #[test]
    fn decode_rejects_bad_words() {
        assert!(BitSerialAlgorithm::decode(&[]).is_err());
        // Valid header, entry with valid bit clear.
        assert!(BitSerialAlgorithm::decode(&[0, 0]).is_err());
        // Valid header, entry with group code 3.
        assert!(BitSerialAlgorithm::decode(&[0, (1 << 8) | (3 << 6)]).is_err());
    }
}

//! Per-instruction metrics: the published Table I of the CAPE paper and
//! the corresponding values measured from this crate's emulator.
//!
//! The paper's cycle counts are the authoritative *timing* model (used by
//! `cape-core`); the measured microop counts validate that the emulated
//! associative algorithms have the same asymptotic shape (and expose the
//! handful of places where our reconstruction differs by a small constant
//! factor — see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use cape_csb::{Csb, CsbGeometry};

use crate::sequencer::Sequencer;
use crate::vop::{VectorOp, VectorOpKind};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    /// Instruction mnemonic as printed in the paper.
    pub mnemonic: &'static str,
    /// Truth-table entry count ("TT Ent.").
    pub tt_entries: u32,
    /// Maximum active rows per subarray during search.
    pub search_rows: u32,
    /// Maximum active rows per subarray during update.
    pub update_rows: u32,
    /// Reduction cycles as a function of the operand width `n`.
    pub red_cycles: CycleFormula,
    /// Total cycles as a function of the operand width `n`.
    pub total_cycles: CycleFormula,
    /// Energy per vector lane in picojoules.
    pub energy_pj_per_lane: f64,
}

/// A closed-form cycle count in the operand width `n`
/// (`a*n^2 + b*n + c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleFormula {
    /// Quadratic coefficient.
    pub n2: i64,
    /// Linear coefficient.
    pub n: i64,
    /// Constant term.
    pub c: i64,
}

impl CycleFormula {
    /// A constant cycle count.
    pub const fn constant(c: i64) -> Self {
        Self { n2: 0, n: 0, c }
    }

    /// A linear cycle count `a*n + c`.
    pub const fn linear(n: i64, c: i64) -> Self {
        Self { n2: 0, n, c }
    }

    /// A quadratic cycle count `a*n^2 + b*n + c`.
    pub const fn quadratic(n2: i64, n: i64, c: i64) -> Self {
        Self { n2, n, c }
    }

    /// Evaluates the formula at operand width `n` (clamped at zero).
    pub fn eval(&self, n: u32) -> u64 {
        let n = i64::from(n);
        (self.n2 * n * n + self.n * n + self.c).max(0) as u64
    }
}

impl std::fmt::Display for CycleFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.n2 != 0 {
            parts.push(format!("{}n^2", self.n2));
        }
        if self.n != 0 {
            parts.push(format!("{}n", self.n));
        }
        if self.c != 0 || parts.is_empty() {
            parts.push(self.c.to_string());
        }
        write!(f, "{}", parts.join(" + "))
    }
}

/// The published Table I row for an instruction family, or `None` for the
/// operations the paper does not list individually (extensions such as
/// shifts, `vid`, `vcpop`; their timing is documented in DESIGN.md).
pub fn paper_row(kind: VectorOpKind) -> Option<PaperRow> {
    use CycleFormula as F;
    let row = match kind {
        VectorOpKind::Add => PaperRow {
            mnemonic: "vadd.vv",
            tt_entries: 5,
            search_rows: 3,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::linear(8, 2),
            energy_pj_per_lane: 8.4,
        },
        VectorOpKind::Sub => PaperRow {
            mnemonic: "vsub.vv",
            tt_entries: 5,
            search_rows: 3,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::linear(8, 2),
            energy_pj_per_lane: 8.4,
        },
        VectorOpKind::Mul => PaperRow {
            mnemonic: "vmul.vv",
            tt_entries: 4,
            search_rows: 4,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::quadratic(4, -4, 0),
            energy_pj_per_lane: 99.9,
        },
        VectorOpKind::RedSum => PaperRow {
            mnemonic: "vredsum.vs",
            tt_entries: 1,
            search_rows: 1,
            update_rows: 0,
            red_cycles: F::linear(1, 0),
            total_cycles: F::linear(1, 0),
            energy_pj_per_lane: 0.4,
        },
        VectorOpKind::And => PaperRow {
            mnemonic: "vand.vv",
            tt_entries: 1,
            search_rows: 2,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::constant(3),
            energy_pj_per_lane: 0.4,
        },
        VectorOpKind::Or => PaperRow {
            mnemonic: "vor.vv",
            tt_entries: 1,
            search_rows: 2,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::constant(3),
            energy_pj_per_lane: 0.4,
        },
        VectorOpKind::Xor => PaperRow {
            mnemonic: "vxor.vv",
            tt_entries: 2,
            search_rows: 2,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::constant(4),
            energy_pj_per_lane: 0.5,
        },
        VectorOpKind::MseqVx => PaperRow {
            mnemonic: "vmseq.vx",
            tt_entries: 1,
            search_rows: 1,
            update_rows: 0,
            red_cycles: F::linear(1, 0),
            total_cycles: F::linear(1, 1),
            energy_pj_per_lane: 0.4,
        },
        VectorOpKind::MseqVv => PaperRow {
            mnemonic: "vmseq.vv",
            tt_entries: 2,
            search_rows: 2,
            update_rows: 1,
            red_cycles: F::linear(1, 0),
            total_cycles: F::linear(1, 4),
            energy_pj_per_lane: 0.5,
        },
        VectorOpKind::Mslt => PaperRow {
            mnemonic: "vmslt.vv",
            tt_entries: 5,
            search_rows: 2,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::linear(3, 6),
            energy_pj_per_lane: 3.2,
        },
        VectorOpKind::Merge => PaperRow {
            mnemonic: "vmerge.vv",
            tt_entries: 4,
            search_rows: 3,
            update_rows: 1,
            red_cycles: F::constant(0),
            total_cycles: F::constant(4),
            energy_pj_per_lane: 0.5,
        },
        _ => return None,
    };
    Some(row)
}

/// Timing for the operations *not* listed in Table I (documented
/// extensions; see DESIGN.md). Derived from their microop sequences.
pub fn extension_cycles(kind: VectorOpKind) -> Option<CycleFormula> {
    use CycleFormula as F;
    match kind {
        VectorOpKind::Broadcast => Some(F::constant(1)),
        VectorOpKind::Shift => Some(F::constant(3)),
        // One search plus the reduction-tree traversal.
        VectorOpKind::Cpop => Some(F::constant(2)),
        // One search plus a tree-latency priority encode.
        VectorOpKind::First => Some(F::constant(2)),
        // One chain-local write per column.
        VectorOpKind::Vid => Some(F::constant(32)),
        // Fig. 1 half-adder: 4 microops per bit plus carry setup.
        VectorOpKind::Increment => Some(F::linear(4, 2)),
        // Inequality: equality search + fold + inverted writeback.
        VectorOpKind::Msne => Some(F::linear(1, 5)),
        // Ordered compare into scratch + masked select.
        VectorOpKind::MinMax => Some(F::linear(4, 8)),
        // vmul's passes without the destination clear.
        VectorOpKind::Macc => Some(F::quadratic(4, -4, 0)),
        // Three bit-parallel microops, like a shift.
        VectorOpKind::Mv => Some(F::constant(3)),
        _ => None,
    }
}

/// A Table I row measured from the emulator: microops actually emitted by
/// the sequencer for one instruction at `n = 32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredRow {
    /// Total microops (the emulator's cycle proxy).
    pub microops: u64,
    /// Searches emitted.
    pub searches: u64,
    /// Updates emitted.
    pub updates: u64,
    /// Reduction popcounts emitted.
    pub reduces: u64,
    /// Tag-bus combines emitted.
    pub tag_combines: u64,
}

/// Runs one representative instruction of `kind` on a tiny CSB and
/// reports the emitted microops.
pub fn measure(kind: VectorOpKind) -> MeasuredRow {
    let mut csb = Csb::new(CsbGeometry::new(2));
    let a: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let b: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x85EB_CA6B)).collect();
    let m: Vec<u32> = (0..64u32).map(|i| i & 1).collect();
    csb.write_vector(0, &m);
    csb.write_vector(1, &a);
    csb.write_vector(2, &b);
    let op = match kind {
        VectorOpKind::Add => VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Sub => VectorOp::Sub {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Mul => VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::And => VectorOp::And {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Or => VectorOp::Or {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Xor => VectorOp::Xor {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::MseqVv => VectorOp::Mseq {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::MseqVx => VectorOp::MseqScalar {
            vd: 3,
            vs1: 1,
            rs: 42,
        },
        VectorOpKind::Mslt => VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOpKind::Merge => VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::RedSum => VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOpKind::Cpop => VectorOp::Cpop { vs: 0 },
        VectorOpKind::First => VectorOp::First { vs: 0 },
        VectorOpKind::Broadcast => VectorOp::Broadcast { vd: 3, rs: 7 },
        VectorOpKind::Shift => VectorOp::ShiftLeft {
            vd: 3,
            vs: 1,
            sh: 5,
        },
        VectorOpKind::Vid => VectorOp::Vid { vd: 3 },
        VectorOpKind::Increment => VectorOp::Increment { vd: 1 },
        VectorOpKind::Msne => VectorOp::Msne {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::MinMax => VectorOp::MinMax {
            vd: 3,
            vs1: 1,
            vs2: 2,
            max: false,
            signed: true,
        },
        VectorOpKind::Macc => VectorOp::Macc {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Mv => VectorOp::Mv { vd: 3, vs: 1 },
    };
    let out = Sequencer::new(&mut csb).execute(&op);
    MeasuredRow {
        microops: out.stats.total(),
        searches: out.stats.searches(),
        updates: out.stats.updates(),
        reduces: out.stats.reduces,
        tag_combines: out.stats.tag_combines,
    }
}

/// Every instruction family, in Table I's presentation order followed by
/// the documented extensions.
pub fn all_kinds() -> &'static [VectorOpKind] {
    &[
        VectorOpKind::Add,
        VectorOpKind::Sub,
        VectorOpKind::Mul,
        VectorOpKind::RedSum,
        VectorOpKind::And,
        VectorOpKind::Or,
        VectorOpKind::Xor,
        VectorOpKind::MseqVx,
        VectorOpKind::MseqVv,
        VectorOpKind::Mslt,
        VectorOpKind::Merge,
        VectorOpKind::Cpop,
        VectorOpKind::First,
        VectorOpKind::Broadcast,
        VectorOpKind::Shift,
        VectorOpKind::Vid,
        VectorOpKind::Increment,
        VectorOpKind::Msne,
        VectorOpKind::MinMax,
        VectorOpKind::Macc,
        VectorOpKind::Mv,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_evaluate() {
        assert_eq!(CycleFormula::linear(8, 2).eval(32), 258);
        assert_eq!(CycleFormula::quadratic(4, -4, 0).eval(32), 3968);
        assert_eq!(CycleFormula::constant(3).eval(32), 3);
        assert_eq!(CycleFormula::constant(-1).eval(32), 0);
    }

    #[test]
    fn formula_display_is_readable() {
        assert_eq!(CycleFormula::linear(8, 2).to_string(), "8n + 2");
        assert_eq!(CycleFormula::quadratic(4, -4, 0).to_string(), "4n^2 + -4n");
        assert_eq!(CycleFormula::constant(0).to_string(), "0");
    }

    #[test]
    fn paper_rows_cover_table_one() {
        for kind in [
            VectorOpKind::Add,
            VectorOpKind::Sub,
            VectorOpKind::Mul,
            VectorOpKind::RedSum,
            VectorOpKind::And,
            VectorOpKind::Or,
            VectorOpKind::Xor,
            VectorOpKind::MseqVx,
            VectorOpKind::MseqVv,
            VectorOpKind::Mslt,
            VectorOpKind::Merge,
        ] {
            assert!(
                paper_row(kind).is_some(),
                "{kind:?} missing from Table I data"
            );
        }
        assert!(paper_row(VectorOpKind::Shift).is_none());
        assert!(extension_cycles(VectorOpKind::Shift).is_some());
    }

    #[test]
    fn measured_logic_ops_match_paper_exactly() {
        assert_eq!(measure(VectorOpKind::And).microops, 3);
        assert_eq!(measure(VectorOpKind::Or).microops, 3);
        assert_eq!(measure(VectorOpKind::Xor).microops, 4);
        assert_eq!(measure(VectorOpKind::Merge).microops, 4);
    }

    #[test]
    fn measured_bit_serial_ops_track_paper_shape() {
        // Paper: vadd = 8n+2 = 258 at n=32 (in-place); our emulated
        // three-operand form adds the vd <- vs1 copy prologue.
        let add = measure(VectorOpKind::Add).microops as i64;
        assert!((add - 258).abs() <= 16, "vadd microops {add}");
        let sub = measure(VectorOpKind::Sub).microops as i64;
        assert!((sub - 258).abs() <= 16, "vsub microops {sub}");
        // Paper: vmul = 4n^2-4n = 3968; ours is the same order.
        let mul = measure(VectorOpKind::Mul).microops as i64;
        assert!((mul - 3968).abs() <= 1024, "vmul microops {mul}");
        // Paper: vmseq.vv = n+4; ours adds the mask writeback.
        let mseq = measure(VectorOpKind::MseqVv).microops as i64;
        assert!((mseq - 36).abs() <= 4, "vmseq.vv microops {mseq}");
        // Paper: vmslt = 3n+6; ours is 4 per bit plus setup.
        let mslt = measure(VectorOpKind::Mslt).microops as i64;
        assert!((102..=140).contains(&mslt), "vmslt microops {mslt}");
        // Paper: vredsum ~ n searches feeding the tree.
        assert_eq!(measure(VectorOpKind::RedSum).reduces, 32);
    }
}

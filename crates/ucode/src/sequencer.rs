//! The microcode sequencer: compiles vector operations into microop
//! *programs* and runs them against the CSB.
//!
//! This mirrors the chain controller FSM of Fig. 7 — (1) idle, (2) read
//! TTM, (3) generate comparand/mask for search, (4) generate data/mask for
//! update, (5) reduce — executed here against the functional CSB model.
//! Every microop emitted corresponds to one CSB cycle.
//!
//! Execution is split in two. [`CompiledOp::compile`] lowers a
//! [`VectorOp`] to an immutable [`MicroProgram`] plus a [`PostProcess`]
//! step that turns reduction sums into the scalar result. Compilation is a
//! pure function of the operation and the element width — microop
//! emission never inspects CSB data (even the scalar-specialized forms
//! depend only on the scalar's bits) — which is what makes compiled
//! programs cacheable (the VCU keeps an LRU program cache) and
//! broadcastable in one fan-out per instruction
//! ([`Csb::execute_program`](cape_csb::Csb::execute_program)).

use cape_csb::{
    ColSel, Csb, MicroOp, MicroOpStats, MicroProgram, Probe, TagDest, TagMode, WriteSpec,
    ROW_CARRY, ROW_FLAG, ROW_SCRATCH0, SUBARRAYS_PER_CHAIN,
};

use crate::truth_table::{BitSerialAlgorithm, GroupUpdate, Pattern};
use crate::vop::{LogicOp, VectorOp};

/// Operand width in bits (one subarray per bit).
const N: usize = SUBARRAYS_PER_CHAIN;

/// Result of executing one vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Scalar result for reductions (`vredsum`, `vcpop`) and mask queries
    /// (`vfirst`, which returns `-1` when no bit is set), `None` for
    /// purely vector-to-vector operations.
    pub scalar: Option<i64>,
    /// Microops emitted by this operation alone.
    pub stats: MicroOpStats,
}

/// The addend operand of a bit-serial pass: a vector register row or an
/// already-known scalar whose bits specialize the truth table.
#[derive(Debug, Clone, Copy)]
enum Addend {
    Reg(usize),
    Scalar(u32),
}

/// The post-broadcast step of a compiled operation: how the program's
/// reduction sums (in emission order) and functional fix-ups produce the
/// scalar result and finalize register state.
///
/// These are exactly the points where a result crosses from the chains
/// back to the sequencer, so they run *after* the program's single join —
/// no mid-program synchronization is ever needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostProcess {
    /// Vector-to-vector operation: nothing to do.
    None,
    /// `vredsum`: fold the MSB-first bit-plane popcounts into the sum and
    /// deposit it in element 0 of `vd` (Fig. 6).
    RedSum {
        /// Destination register receiving the scalar sum.
        vd: usize,
    },
    /// `vcpop`: the single reduction sum is the scalar result.
    Cpop,
    /// `vfirst`: global priority encode, modeled as a functional scan of
    /// `vs` over the active window (the timing model charges the tree).
    First {
        /// Mask register being scanned.
        vs: usize,
    },
    /// `vid.v`: chain-local index generation (see DESIGN.md), modeled
    /// functionally.
    Vid {
        /// Destination register receiving element indices.
        vd: usize,
    },
}

impl PostProcess {
    /// Applies the step given the program's reduction sums, returning the
    /// instruction's scalar result (if any).
    fn apply(&self, csb: &mut Csb, width: usize, sums: &[u64]) -> Option<i64> {
        match *self {
            PostProcess::None => None,
            PostProcess::RedSum { vd } => {
                let mut acc: u64 = 0;
                for &count in sums {
                    acc = (acc << 1).wrapping_add(count);
                }
                // RVV: the SEW-wide result lands in element 0 of vd.
                let wrapped = acc as u32 & width_mask(width);
                csb.write_element(vd, 0, wrapped);
                Some(i64::from(wrapped))
            }
            PostProcess::Cpop => Some(sums.first().copied().unwrap_or(0) as i64),
            PostProcess::First { vs } => {
                let (vstart, vl) = (csb.vstart(), csb.vl());
                for e in vstart..vl {
                    if csb.read_element(vs, e) & 1 == 1 {
                        return Some(e as i64);
                    }
                }
                Some(-1)
            }
            PostProcess::Vid { vd } => {
                let (vstart, vl) = (csb.vstart(), csb.vl());
                let mask = width_mask(width);
                for e in vstart..vl {
                    csb.write_element(vd, e, e as u32 & mask);
                }
                None
            }
        }
    }
}

/// Error produced when a vector operation cannot be lowered to a microop
/// program.
///
/// A malformed operation surfaces here as a value instead of a panic, so a
/// long-running host (e.g. the job-serving engine) can reject the one bad
/// job and keep serving the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequencerError {
    /// The requested element width is not one of the supported SEWs.
    UnsupportedWidth(usize),
    /// A bit-serial truth table referenced an addend operand, but the
    /// lowering supplied none — the algorithm and operand shape disagree.
    MissingAddend,
    /// The operation's destination register aliases one of its sources,
    /// which the in-place lowering cannot support (`vmul`, `vmacc`, the
    /// mask-producing comparisons and `vmin`/`vmax.vx`).
    DestAliasesSource {
        /// Mnemonic of the offending operation, e.g. `"vmul"`.
        mnemonic: &'static str,
        /// The destination register that aliases a source.
        vd: usize,
    },
}

impl std::fmt::Display for SequencerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequencerError::UnsupportedWidth(_) => write!(f, "SEW must be 8, 16 or 32"),
            SequencerError::MissingAddend => {
                write!(f, "truth table references an addend but none was supplied")
            }
            SequencerError::DestAliasesSource { mnemonic, vd } => {
                write!(f, "{mnemonic} destination v{vd} must not alias a source")
            }
        }
    }
}

impl std::error::Error for SequencerError {}

/// A vector operation lowered to its broadcast form: the microop program,
/// the post-processing step, and the element width it was compiled for.
///
/// Compiled operations are immutable and independent of CSB state, so one
/// `CompiledOp` can be cached and replayed for every dynamic instance of
/// the same `(VectorOp, SEW)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledOp {
    program: MicroProgram,
    post: PostProcess,
    width: usize,
}

impl CompiledOp {
    /// Compiles `op` for `width`-bit elements (SEW = 8, 16 or 32).
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 8, 16 or 32, if a register index is out of
    /// range, or on the destination aliasing restrictions documented on
    /// [`VectorOp`] (`vmul` and the mask-producing comparisons require
    /// `vd` distinct from sources). Use [`CompiledOp::try_compile`] for a
    /// non-panicking variant.
    pub fn compile(op: &VectorOp, width: usize) -> Self {
        Self::try_compile(op, width).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compiles `op` for `width`-bit elements, reporting malformed
    /// operations as a typed [`SequencerError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SequencerError::UnsupportedWidth`] unless `width` is 8,
    /// 16 or 32, and [`SequencerError::MissingAddend`] if a truth table
    /// references an addend the lowering did not supply.
    pub fn try_compile(op: &VectorOp, width: usize) -> Result<Self, SequencerError> {
        if !matches!(width, 8 | 16 | 32) {
            return Err(SequencerError::UnsupportedWidth(width));
        }
        let mut builder = ProgramBuilder {
            ops: Vec::new(),
            width,
            error: None,
        };
        let post = builder.dispatch(op);
        if let Some(e) = builder.error {
            return Err(e);
        }
        Ok(Self {
            program: MicroProgram::new(builder.ops),
            post,
            width,
        })
    }

    /// Assembles a compiled operation from already-lowered parts. Used by
    /// the fusion window builder (`crate::window`), which concatenates the
    /// programs of several compiled ops into one.
    pub(crate) fn from_parts(program: MicroProgram, post: PostProcess, width: usize) -> Self {
        Self {
            program,
            post,
            width,
        }
    }

    /// The compiled microop program.
    pub fn program(&self) -> &MicroProgram {
        &self.program
    }

    /// The post-broadcast step.
    pub fn post(&self) -> PostProcess {
        self.post
    }

    /// Element width this operation was compiled for.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Executes [`VectorOp`]s against a CSB by compiling them to microop
/// programs and broadcasting those.
#[derive(Debug)]
pub struct Sequencer<'a> {
    csb: &'a mut Csb,
    /// Element width in bits (SEW): 8, 16 or 32. Narrow elements use
    /// only the low subarrays and finish their bit-serial walks early —
    /// the paper's "element types smaller than 32 bits" configuration
    /// (Section V-A).
    width: usize,
}

impl<'a> Sequencer<'a> {
    /// Wraps a CSB for 32-bit instruction execution.
    pub fn new(csb: &'a mut Csb) -> Self {
        Self::with_width(csb, 32)
    }

    /// Wraps a CSB for `width`-bit elements (SEW = 8, 16 or 32).
    ///
    /// Compute instructions read operand bits `[0, width)` and write the
    /// destination zero-extended to 32 bits, so values behave as
    /// integers modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 8, 16 or 32.
    pub fn with_width(csb: &'a mut Csb, width: usize) -> Self {
        assert!(matches!(width, 8 | 16 | 32), "SEW must be 8, 16 or 32");
        Self { csb, width }
    }

    /// Compiles `op` at this sequencer's element width without executing
    /// it.
    ///
    /// # Panics
    ///
    /// As [`CompiledOp::compile`].
    pub fn compile(&self, op: &VectorOp) -> CompiledOp {
        CompiledOp::compile(op, self.width)
    }

    /// Executes one vector operation, returning its scalar result (if any)
    /// and the microops it emitted.
    ///
    /// This compiles the operation and broadcasts it one microop at a time
    /// — the per-microop baseline path. [`Sequencer::run_program`] replays
    /// a (possibly cached) compiled form with one fan-out for the whole
    /// program; both produce bit-identical CSB state and results.
    ///
    /// # Panics
    ///
    /// Panics if a register index is out of range, or on the destination
    /// aliasing restrictions documented on [`VectorOp`] (`vmul` and the
    /// mask-producing comparisons require `vd` distinct from sources).
    pub fn execute(&mut self, op: &VectorOp) -> ExecOutcome {
        let compiled = CompiledOp::compile(op, self.width);
        self.run_per_op(&compiled)
    }

    /// Runs a compiled operation microop-by-microop (one broadcast
    /// fan-out per microop — the baseline the paper's Table I counts).
    pub fn run_per_op(&mut self, compiled: &CompiledOp) -> ExecOutcome {
        let before = self.csb.stats();
        let mut sums = Vec::with_capacity(compiled.program.reduce_count());
        for op in compiled.program.ops() {
            if let Some(sum) = self.csb.execute(op) {
                sums.push(sum);
            }
        }
        let scalar = compiled.post.apply(self.csb, compiled.width, &sums);
        ExecOutcome {
            scalar,
            stats: self.csb.stats().since(&before),
        }
    }

    /// Runs a compiled operation at program granularity: one broadcast
    /// fan-out for the whole program
    /// ([`Csb::execute_program`](cape_csb::Csb::execute_program)), then
    /// the post-processing step. Bit-identical to [`Sequencer::execute`].
    pub fn run_program(&mut self, compiled: &CompiledOp) -> ExecOutcome {
        let before = self.csb.stats();
        let sums = self.csb.execute_program(&compiled.program);
        let scalar = compiled.post.apply(self.csb, compiled.width, &sums);
        ExecOutcome {
            scalar,
            stats: self.csb.stats().since(&before),
        }
    }
}

/// Accumulates the microop program of one vector operation.
///
/// Hosts the emission helpers shared by every instruction lowering; each
/// pushes microops instead of executing them, so the same code path serves
/// compilation for caching and direct execution.
struct ProgramBuilder {
    ops: Vec<MicroOp>,
    width: usize,
    /// First structural error hit during lowering; checked after
    /// `dispatch` so emission helpers stay infallible at their call sites.
    error: Option<SequencerError>,
}

impl ProgramBuilder {
    fn emit(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Latches a destination-aliasing error and aborts the lowering of the
    /// offending operation. The first error wins, matching the
    /// `MissingAddend` latch in [`ProgramBuilder::bit_serial`].
    fn alias_error(&mut self, mnemonic: &'static str, vd: usize) -> PostProcess {
        self.error
            .get_or_insert(SequencerError::DestAliasesSource { mnemonic, vd });
        PostProcess::None
    }

    fn dispatch(&mut self, op: &VectorOp) -> PostProcess {
        match *op {
            VectorOp::Add { vd, vs1, vs2 } => {
                // Addition commutes, so aliasing vd with either source
                // reduces to the in-place case.
                let (a, b) = if vd == vs2 { (vs2, vs1) } else { (vs1, vs2) };
                self.copy_reg(vd, a);
                self.bit_serial(
                    &BitSerialAlgorithm::adder(),
                    vd,
                    Some(Addend::Reg(b)),
                    0,
                    &[],
                );
                PostProcess::None
            }
            VectorOp::AddScalar { vd, vs1, rs } => {
                self.copy_reg(vd, vs1);
                self.bit_serial(
                    &BitSerialAlgorithm::adder(),
                    vd,
                    Some(Addend::Scalar(rs)),
                    0,
                    &[],
                );
                PostProcess::None
            }
            VectorOp::Sub { vd, vs1, vs2 } => {
                if vd != vs2 || vd == vs1 {
                    self.copy_reg(vd, vs1);
                    self.bit_serial(
                        &BitSerialAlgorithm::subtractor(),
                        vd,
                        Some(Addend::Reg(vs2)),
                        0,
                        &[],
                    );
                } else {
                    // vd aliases the subtrahend: vs1 - vd = vs1 + !vd + 1.
                    self.not_reg(vd);
                    let mut adder = BitSerialAlgorithm::adder();
                    adder.carry_init = true;
                    self.bit_serial(&adder, vd, Some(Addend::Reg(vs1)), 0, &[]);
                }
                PostProcess::None
            }
            VectorOp::SubScalar { vd, vs1, rs } => {
                self.copy_reg(vd, vs1);
                self.bit_serial(
                    &BitSerialAlgorithm::subtractor(),
                    vd,
                    Some(Addend::Scalar(rs)),
                    0,
                    &[],
                );
                PostProcess::None
            }
            VectorOp::Mul { vd, vs1, vs2 } => {
                if vd == vs1 || vd == vs2 {
                    return self.alias_error("vmul", vd);
                }
                self.clear_reg(vd);
                for j in 0..self.width {
                    let gate = Probe::row(j, vs2, true);
                    self.bit_serial(
                        &BitSerialAlgorithm::adder(),
                        vd,
                        Some(Addend::Reg(vs1)),
                        j,
                        std::slice::from_ref(&gate),
                    );
                }
                PostProcess::None
            }
            VectorOp::MulScalar { vd, vs1, rs } => {
                if vd == vs1 {
                    return self.alias_error("vmul", vd);
                }
                self.clear_reg(vd);
                for j in 0..self.width {
                    if rs >> j & 1 == 1 {
                        self.bit_serial(
                            &BitSerialAlgorithm::adder(),
                            vd,
                            Some(Addend::Reg(vs1)),
                            j,
                            &[],
                        );
                    }
                }
                PostProcess::None
            }
            VectorOp::And { vd, vs1, vs2 } => {
                self.logic(vd, vs1, vs2, &[(true, true)], true);
                PostProcess::None
            }
            VectorOp::Or { vd, vs1, vs2 } => {
                self.logic(vd, vs1, vs2, &[(false, false)], false);
                PostProcess::None
            }
            VectorOp::Xor { vd, vs1, vs2 } => {
                self.logic(vd, vs1, vs2, &[(true, false), (false, true)], true);
                PostProcess::None
            }
            VectorOp::Mseq { vd, vs1, vs2 } => {
                if vd == vs1 || vd == vs2 {
                    return self.alias_error("vmseq", vd);
                }
                // Per-subarray bit equality, then an AND fold across the
                // chain (the bit-serial post-processing of Table I).
                self.search_all(|_| vec![(vs1, true), (vs2, true)], TagMode::Set);
                self.search_all(|_| vec![(vs1, false), (vs2, false)], TagMode::Or);
                self.fold_tags_and();
                self.write_mask_from_tags(vd, self.width - 1);
                PostProcess::None
            }
            VectorOp::MseqScalar { vd, vs1, rs } => {
                if vd == vs1 {
                    return self.alias_error("vmseq", vd);
                }
                // CAPE's signature operation: one bit-parallel search
                // against the scalar key (Fig. 4).
                self.search_all(|i| vec![(vs1, rs >> i & 1 == 1)], TagMode::Set);
                self.fold_tags_and();
                self.write_mask_from_tags(vd, self.width - 1);
                PostProcess::None
            }
            VectorOp::Mslt {
                vd,
                vs1,
                vs2,
                signed,
            } => {
                if vd == vs1 || vd == vs2 {
                    return self.alias_error("vmslt", vd);
                }
                self.mslt(vd, vs1, MsltRhs::Reg(vs2), signed);
                PostProcess::None
            }
            VectorOp::MsltScalar {
                vd,
                vs1,
                rs,
                signed,
            } => {
                if vd == vs1 {
                    return self.alias_error("vmslt", vd);
                }
                self.mslt(vd, vs1, MsltRhs::Scalar(rs), signed);
                PostProcess::None
            }
            VectorOp::LogicScalar { op, vd, vs1, rs } => {
                self.logic_scalar(op, vd, vs1, rs);
                PostProcess::None
            }
            VectorOp::Msne { vd, vs1, vs2 } => {
                if vd == vs1 || vd == vs2 {
                    return self.alias_error("vmsne", vd);
                }
                self.search_all(|_| vec![(vs1, true), (vs2, true)], TagMode::Set);
                self.search_all(|_| vec![(vs1, false), (vs2, false)], TagMode::Or);
                self.fold_tags_and();
                self.write_inverted_mask_from_tags(vd, self.width - 1);
                PostProcess::None
            }
            VectorOp::MsneScalar { vd, vs1, rs } => {
                if vd == vs1 {
                    return self.alias_error("vmsne", vd);
                }
                self.search_all(|i| vec![(vs1, rs >> i & 1 == 1)], TagMode::Set);
                self.fold_tags_and();
                self.write_inverted_mask_from_tags(vd, self.width - 1);
                PostProcess::None
            }
            VectorOp::MinMax {
                vd,
                vs1,
                vs2,
                max,
                signed,
            } => {
                // Ordered compare into a scratch metadata row, then a
                // masked select — no architectural mask register is
                // clobbered, as RVV requires.
                self.mslt_into_scratch(vs1, MsltRhs::Reg(vs2), signed);
                let (on_true, on_false) = if max { (vs2, vs1) } else { (vs1, vs2) };
                self.merge_with_mask(vd, on_true, on_false, 0, ROW_SCRATCH0);
                PostProcess::None
            }
            VectorOp::MinMaxScalar {
                vd,
                vs1,
                rs,
                max,
                signed,
            } => {
                if vd == vs1 {
                    return self.alias_error(if max { "vmax" } else { "vmin" }, vd);
                }
                self.mslt_into_scratch(vs1, MsltRhs::Scalar(rs), signed);
                // Materialize the scalar side in vd, then select in place.
                self.broadcast(vd, rs);
                let (on_true, on_false) = if max { (vd, vs1) } else { (vs1, vd) };
                self.merge_with_mask(vd, on_true, on_false, 0, ROW_SCRATCH0);
                PostProcess::None
            }
            VectorOp::RsubScalar { vd, vs1, rs } => {
                // rs - vs1 = rs + !vs1 + 1.
                self.copy_reg(vd, vs1);
                self.not_reg(vd);
                let mut adder = BitSerialAlgorithm::adder();
                adder.carry_init = true;
                self.bit_serial(&adder, vd, Some(Addend::Scalar(rs)), 0, &[]);
                PostProcess::None
            }
            VectorOp::Macc { vd, vs1, vs2 } => {
                if vd == vs1 || vd == vs2 {
                    return self.alias_error("vmacc", vd);
                }
                // Exactly vmul's shift-and-add passes, accumulating into
                // the existing destination instead of a cleared one.
                self.zero_upper(vd);
                for j in 0..self.width {
                    let gate = Probe::row(j, vs2, true);
                    self.bit_serial(
                        &BitSerialAlgorithm::adder(),
                        vd,
                        Some(Addend::Reg(vs1)),
                        j,
                        std::slice::from_ref(&gate),
                    );
                }
                PostProcess::None
            }
            VectorOp::Mv { vd, vs } => {
                self.copy_reg(vd, vs);
                PostProcess::None
            }
            VectorOp::ShiftRightArith { vd, vs, sh } => {
                self.sra(vd, vs, sh);
                PostProcess::None
            }
            VectorOp::Merge { vd, vs1, vs2 } => {
                // Mask register is the architectural v0, bit 0 => subarray 0.
                self.merge_with_mask(vd, vs1, vs2, 0, 0);
                PostProcess::None
            }
            VectorOp::RedSum { vd, vs } => {
                // Fig. 6: echo each bit-plane through the tags (MSB first),
                // popcount per chain, and fold through the global tree. The
                // per-bit sums surface at the program's reduction sync
                // points; PostProcess::RedSum folds them.
                for i in (0..self.width).rev() {
                    self.emit(MicroOp::Search {
                        probes: vec![Probe::row(i, vs, true)],
                        gates: vec![],
                        dest: TagDest::Tags,
                        mode: TagMode::Set,
                    });
                    self.emit(MicroOp::ReduceTags { subarray: i });
                }
                PostProcess::RedSum { vd }
            }
            VectorOp::Cpop { vs } => {
                self.emit(MicroOp::Search {
                    probes: vec![Probe::row(0, vs, true)],
                    gates: vec![],
                    dest: TagDest::Tags,
                    mode: TagMode::Set,
                });
                self.emit(MicroOp::ReduceTags { subarray: 0 });
                PostProcess::Cpop
            }
            VectorOp::First { vs } => {
                self.emit(MicroOp::Search {
                    probes: vec![Probe::row(0, vs, true)],
                    gates: vec![],
                    dest: TagDest::Tags,
                    mode: TagMode::Set,
                });
                // Global priority encode over the chains (modeled
                // functionally in PostProcess::First; the timing model
                // charges the tree latency).
                PostProcess::First { vs }
            }
            VectorOp::Broadcast { vd, rs } => {
                self.broadcast(vd, rs);
                PostProcess::None
            }
            VectorOp::ShiftLeft { vd, vs, sh } => {
                self.shift(vd, vs, sh, true);
                PostProcess::None
            }
            VectorOp::ShiftRight { vd, vs, sh } => {
                self.shift(vd, vs, sh, false);
                PostProcess::None
            }
            VectorOp::Vid { vd } => {
                // Chain-local index generation (see DESIGN.md): modeled
                // functionally; the VCU charges one write per column.
                PostProcess::Vid { vd }
            }
            VectorOp::Increment { vd } => {
                self.zero_upper(vd);
                self.bit_serial(&BitSerialAlgorithm::incrementer(), vd, None, 0, &[]);
                PostProcess::None
            }
        }
    }

    // ----- building blocks ---------------------------------------------

    /// Bulk-clears a row in every subarray (one bit-parallel update).
    fn clear_reg(&mut self, row: usize) {
        self.emit(MicroOp::Update {
            writes: (0..N)
                .map(|i| WriteSpec {
                    subarray: i,
                    row,
                    value: false,
                    cols: ColSel::Window,
                })
                .collect(),
        });
    }

    /// Copies register `vs` into `vd` (3 bit-parallel microops, with
    /// zero-extension past the element width); no-op if they alias.
    fn copy_reg(&mut self, vd: usize, vs: usize) {
        if vd == vs {
            self.zero_upper(vd);
            return;
        }
        self.search_all(|_| vec![(vs, true)], TagMode::Set);
        self.clear_reg(vd);
        self.set_reg_from_own_tags(vd);
    }

    /// In-place bitwise NOT of `vd` (3 bit-parallel microops).
    fn not_reg(&mut self, vd: usize) {
        self.search_all(|_| vec![(vd, false)], TagMode::Set);
        self.clear_reg(vd);
        self.set_reg_from_own_tags(vd);
    }

    /// Zero-extends `vd` past the element width (one bulk update); no-op
    /// at full width.
    fn zero_upper(&mut self, vd: usize) {
        if self.width == N {
            return;
        }
        self.emit(MicroOp::Update {
            writes: (self.width..N)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: vd,
                    value: false,
                    cols: ColSel::Window,
                })
                .collect(),
        });
    }

    /// One bit-parallel search over the active element width, with
    /// per-subarray keys given by `keys(i)`.
    fn search_all(&mut self, keys: impl Fn(usize) -> Vec<(usize, bool)>, mode: TagMode) {
        self.emit(MicroOp::Search {
            probes: (0..self.width).map(|i| Probe::new(i, keys(i))).collect(),
            gates: vec![],
            dest: TagDest::Tags,
            mode,
        });
    }

    /// Sets `row` to 1 in every active-width subarray at the columns
    /// tagged in that same subarray (one bit-parallel update).
    fn set_reg_from_own_tags(&mut self, row: usize) {
        self.emit(MicroOp::Update {
            writes: (0..self.width)
                .map(|i| WriteSpec {
                    subarray: i,
                    row,
                    value: true,
                    cols: ColSel::Tags(i),
                })
                .collect(),
        });
    }

    /// ANDs the tags of the active-width subarrays into subarray
    /// `width-1` over the tag bus, one neighbour hop per cycle (the
    /// "bit-serial post-processing" of the comparisons in Table I).
    fn fold_tags_and(&mut self) {
        for i in 1..self.width {
            self.emit(MicroOp::TagCombine {
                src: i - 1,
                dst: i,
                op: TagMode::And,
            });
        }
    }

    /// Broadcasts a scalar into every active element of `vd` — a single
    /// bulk update: every subarray writes its bit of the scalar to all
    /// active columns.
    fn broadcast(&mut self, vd: usize, rs: u32) {
        let w = self.width;
        self.emit(MicroOp::Update {
            writes: (0..N)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: vd,
                    value: i < w && rs >> i & 1 == 1,
                    cols: ColSel::Window,
                })
                .collect(),
        });
    }

    /// Scalar-specialized bit-parallel logic: the scalar's bit at plane
    /// `i` decides that subarray's behaviour, so no broadcast register is
    /// needed (3-4 microops, like the .vv forms).
    fn logic_scalar(&mut self, op: LogicOp, vd: usize, vs1: usize, rs: u32) {
        let w = self.width;
        let ones: Vec<usize> = (0..w).filter(|&i| rs >> i & 1 == 1).collect();
        let zeros: Vec<usize> = (0..w).filter(|&i| rs >> i & 1 == 0).collect();
        // Latch the source planes the result copies (possibly inverted).
        let (copy_subs, inv_subs): (&[usize], &[usize]) = match op {
            LogicOp::And => (&ones, &[]),    // x=1 -> vs; x=0 -> 0
            LogicOp::Or => (&zeros, &[]),    // x=0 -> vs; x=1 -> 1
            LogicOp::Xor => (&zeros, &ones), // x=0 -> vs; x=1 -> !vs
        };
        // The two groups probe disjoint subarrays, and each subarray's tag
        // register is independent — both searches latch with Set.
        if !copy_subs.is_empty() {
            self.emit(MicroOp::Search {
                probes: copy_subs
                    .iter()
                    .map(|&i| Probe::row(i, vs1, true))
                    .collect(),
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            });
        }
        if !inv_subs.is_empty() {
            self.emit(MicroOp::Search {
                probes: inv_subs
                    .iter()
                    .map(|&i| Probe::row(i, vs1, false))
                    .collect(),
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            });
        }
        // Fill: OR forces 1 where x=1; everything else starts at 0.
        self.emit(MicroOp::Update {
            writes: (0..N)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: vd,
                    value: i < w && op == LogicOp::Or && rs >> i & 1 == 1,
                    cols: ColSel::Window,
                })
                .collect(),
        });
        let tagged: Vec<usize> = copy_subs.iter().chain(inv_subs).copied().collect();
        if !tagged.is_empty() {
            self.emit(MicroOp::Update {
                writes: tagged
                    .iter()
                    .map(|&i| WriteSpec {
                        subarray: i,
                        row: vd,
                        value: true,
                        cols: ColSel::Tags(i),
                    })
                    .collect(),
            });
        }
    }

    /// Writes an *inverted* mask result: bit 0 of `vd` is 1 where the
    /// folded tags are 0.
    fn write_inverted_mask_from_tags(&mut self, vd: usize, tag_sub: usize) {
        self.clear_reg(vd);
        self.emit(MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 0,
                row: vd,
                value: true,
                cols: ColSel::Window,
            }],
        });
        self.emit(MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 0,
                row: vd,
                value: false,
                cols: ColSel::Tags(tag_sub),
            }],
        });
    }

    /// Ordered compare `vs1 < rhs` into the scratch metadata row of
    /// subarray 0 (used by min/max, which must not clobber a register).
    fn mslt_into_scratch(&mut self, vs1: usize, rhs: MsltRhs, signed: bool) {
        self.mslt_raw(0, ROW_SCRATCH0, vs1, rhs, signed);
    }

    /// Masked element-wise select with the mask bit at (`mask_sub`,
    /// `mask_row`): `vd[e] = mask[e] ? vs1[e] : vs2[e]`.
    fn merge_with_mask(
        &mut self,
        vd: usize,
        vs1: usize,
        vs2: usize,
        mask_sub: usize,
        mask_row: usize,
    ) {
        let taken = Probe::row(mask_sub, mask_row, true);
        let not_taken = Probe::row(mask_sub, mask_row, false);
        self.emit(MicroOp::Search {
            probes: (0..self.width).map(|i| Probe::row(i, vs1, true)).collect(),
            gates: vec![taken],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        });
        self.emit(MicroOp::Search {
            probes: (0..self.width).map(|i| Probe::row(i, vs2, true)).collect(),
            gates: vec![not_taken],
            dest: TagDest::Tags,
            mode: TagMode::Or,
        });
        self.clear_reg(vd);
        self.set_reg_from_own_tags(vd);
    }

    /// Writes a mask result: clears `vd` and sets bit 0 (subarray 0) at
    /// the columns tagged in `tag_sub`.
    fn write_mask_from_tags(&mut self, vd: usize, tag_sub: usize) {
        self.clear_reg(vd);
        self.emit(MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 0,
                row: vd,
                value: true,
                cols: ColSel::Tags(tag_sub),
            }],
        });
    }

    /// Two-operand bit-parallel logic: elements matching any of the
    /// per-bit `patterns` get `result_on_match` in `vd`, the rest get its
    /// complement.
    fn logic(
        &mut self,
        vd: usize,
        vs1: usize,
        vs2: usize,
        patterns: &[(bool, bool)],
        result_on_match: bool,
    ) {
        for (k, &(b1, b2)) in patterns.iter().enumerate() {
            let mode = if k == 0 { TagMode::Set } else { TagMode::Or };
            self.search_all(|_| vec![(vs1, b1), (vs2, b2)], mode);
        }
        // Fill the default value (zero past the element width), then
        // overwrite the matches. Searches ran first, so vd may alias a
        // source.
        let w = self.width;
        self.emit(MicroOp::Update {
            writes: (0..N)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: vd,
                    value: i < w && !result_on_match,
                    cols: ColSel::Window,
                })
                .collect(),
        });
        self.emit(MicroOp::Update {
            writes: (0..w)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: vd,
                    value: result_on_match,
                    cols: ColSel::Tags(i),
                })
                .collect(),
        });
    }

    /// Cross-subarray row copy implementing logical shifts: `vd[i] =
    /// vs[i -/+ sh]`, vacated bits zeroed.
    fn shift(&mut self, vd: usize, vs: usize, sh: u32, left: bool) {
        let sh = sh as usize;
        let w = self.width;
        if sh < w {
            // Latch every source bit-plane in its own subarray's tags.
            self.search_all(|_| vec![(vs, true)], TagMode::Set);
        }
        self.clear_reg(vd);
        if sh >= w {
            return;
        }
        let writes: Vec<WriteSpec> = (0..w - sh)
            .map(|k| {
                let (dst, src) = if left { (k + sh, k) } else { (k, k + sh) };
                WriteSpec {
                    subarray: dst,
                    row: vd,
                    value: true,
                    cols: ColSel::Tags(src),
                }
            })
            .collect();
        self.emit(MicroOp::Update { writes });
    }

    /// Arithmetic shift right: logical shift plus sign replication into
    /// the vacated bit planes (the shift's search tags still hold every
    /// source plane, including the sign).
    fn sra(&mut self, vd: usize, vs: usize, sh: u32) {
        let w = self.width;
        if (sh as usize) < w {
            self.shift(vd, vs, sh, false);
            if sh > 0 {
                self.emit(MicroOp::Update {
                    writes: (w - sh as usize..w)
                        .map(|i| WriteSpec {
                            subarray: i,
                            row: vd,
                            value: true,
                            cols: ColSel::Tags(w - 1),
                        })
                        .collect(),
                });
            }
        } else {
            // Fully shifted out: every bit becomes the sign bit.
            self.search_all(|_| vec![(vs, true)], TagMode::Set);
            self.clear_reg(vd);
            self.emit(MicroOp::Update {
                writes: (0..w)
                    .map(|i| WriteSpec {
                        subarray: i,
                        row: vd,
                        value: true,
                        cols: ColSel::Tags(w - 1),
                    })
                    .collect(),
            });
        }
    }

    /// Ordered comparison `vs1 < rhs` into mask register `vd`.
    fn mslt(&mut self, vd: usize, vs1: usize, rhs: MsltRhs, signed: bool) {
        self.clear_reg(vd);
        self.mslt_raw(0, vd, vs1, rhs, signed);
    }

    /// Ordered comparison `vs1 < rhs` into the single bit at
    /// (`dest_sub`, `dest_row`).
    ///
    /// Walks from the MSB with a per-element "undecided" flag (ROW_FLAG of
    /// subarray 1): the first differing bit decides the outcome and clears
    /// the flag. The sign bit inverts the comparison for signed operands.
    ///
    /// # Panics
    ///
    /// Panics if `dest_sub` collides with the flag subarray.
    fn mslt_raw(
        &mut self,
        dest_sub: usize,
        dest_row: usize,
        vs1: usize,
        rhs: MsltRhs,
        signed: bool,
    ) {
        const FLAG_SUB: usize = 1;
        assert_ne!(
            dest_sub, FLAG_SUB,
            "result and flag must live in distinct subarrays"
        );
        // Clear the result bit and arm the undecided flag in one update
        // (distinct subarrays, one row each).
        self.emit(MicroOp::Update {
            writes: vec![
                WriteSpec {
                    subarray: dest_sub,
                    row: dest_row,
                    value: false,
                    cols: ColSel::Window,
                },
                WriteSpec {
                    subarray: FLAG_SUB,
                    row: ROW_FLAG,
                    value: true,
                    cols: ColSel::Window,
                },
            ],
        });
        for i in (0..self.width).rev() {
            let msb = i == self.width - 1;
            let flip = signed && msb;
            // lt: vs1 bit is "smaller" at this position; gt: "larger".
            let (lt_keys, gt_keys): (Option<Vec<_>>, Option<Vec<_>>) = match rhs {
                MsltRhs::Reg(vs2) => {
                    let lt = if flip {
                        vec![(vs1, true), (vs2, false)]
                    } else {
                        vec![(vs1, false), (vs2, true)]
                    };
                    let gt = if flip {
                        vec![(vs1, false), (vs2, true)]
                    } else {
                        vec![(vs1, true), (vs2, false)]
                    };
                    (Some(lt), Some(gt))
                }
                MsltRhs::Scalar(x) => {
                    let xb = x >> i & 1 == 1;
                    // lt requires vs1 bit != xb with vs1 "smaller".
                    let lt = (xb != flip).then(|| vec![(vs1, flip)]);
                    let gt = (xb == flip).then(|| vec![(vs1, !flip)]);
                    (lt, gt)
                }
            };
            let gate = Probe::row(FLAG_SUB, ROW_FLAG, true);
            if let Some(keys) = lt_keys {
                self.emit(MicroOp::Search {
                    probes: vec![Probe::new(i, keys)],
                    gates: vec![gate.clone()],
                    dest: TagDest::Tags,
                    mode: TagMode::Set,
                });
                // Decided less-than: set the result bit and retire the flag.
                self.emit(MicroOp::Update {
                    writes: vec![
                        WriteSpec {
                            subarray: dest_sub,
                            row: dest_row,
                            value: true,
                            cols: ColSel::Tags(i),
                        },
                        WriteSpec {
                            subarray: FLAG_SUB,
                            row: ROW_FLAG,
                            value: false,
                            cols: ColSel::Tags(i),
                        },
                    ],
                });
            }
            if let Some(keys) = gt_keys {
                self.emit(MicroOp::Search {
                    probes: vec![Probe::new(i, keys)],
                    gates: vec![gate],
                    dest: TagDest::Tags,
                    mode: TagMode::Set,
                });
                // Decided greater-than: just retire the flag.
                self.emit(MicroOp::Update {
                    writes: vec![WriteSpec {
                        subarray: FLAG_SUB,
                        row: ROW_FLAG,
                        value: false,
                        cols: ColSel::Tags(i),
                    }],
                });
            }
        }
    }

    /// Emits one bit-serial pass of a truth-table algorithm over the
    /// destination register, least significant bit first.
    ///
    /// `j_off` shifts the destination bit position relative to the addend
    /// bit (the partial-product offset of `vmul`); `gates` are extra
    /// search gates ANDed into every pattern match (the multiplier bit).
    fn bit_serial(
        &mut self,
        alg: &BitSerialAlgorithm,
        d_reg: usize,
        addend: Option<Addend>,
        j_off: usize,
        gates: &[Probe],
    ) {
        // Initialize the carry/borrow rows.
        self.clear_reg(ROW_CARRY);
        if alg.carry_init {
            self.emit(MicroOp::Update {
                writes: vec![WriteSpec {
                    subarray: j_off,
                    row: ROW_CARRY,
                    value: true,
                    cols: ColSel::Window,
                }],
            });
        }
        for i in 0..self.width - j_off {
            let d_sub = i + j_off;
            // The carry group first: its update writes only the next
            // carry, so it cannot perturb the destination-flipping groups
            // that still need to search this bit's pristine state.
            let hit = self.search_group(
                &alg.carry_patterns,
                d_reg,
                d_sub,
                i,
                addend,
                gates,
                TagDest::Tags,
            );
            if hit {
                self.group_update(
                    &GroupUpdate {
                        write_d: None,
                        write_carry: true,
                    },
                    d_reg,
                    d_sub,
                    TagDest::Tags,
                );
            }
            let acc_hit = self.search_group(
                &alg.acc_patterns,
                d_reg,
                d_sub,
                i,
                addend,
                gates,
                TagDest::Acc,
            );
            let tag_hit = self.search_group(
                &alg.tag_patterns,
                d_reg,
                d_sub,
                i,
                addend,
                gates,
                TagDest::Tags,
            );
            if acc_hit {
                self.group_update(&alg.acc_update, d_reg, d_sub, TagDest::Acc);
            }
            if tag_hit {
                self.group_update(&alg.tag_update, d_reg, d_sub, TagDest::Tags);
            }
        }
    }

    /// Emits the searches of one truth-table group at bit position
    /// (`d_sub`, addend bit `a_bit`). Returns whether any pattern survived
    /// scalar specialization (if none did, the group's update must be
    /// skipped because the match register holds stale data).
    ///
    /// The hit flag depends only on the patterns and the scalar's bits —
    /// never on CSB contents — so compilation stays a pure function of
    /// `(VectorOp, width)`.
    #[allow(clippy::too_many_arguments)]
    fn search_group(
        &mut self,
        patterns: &[Pattern],
        d_reg: usize,
        d_sub: usize,
        a_bit: usize,
        addend: Option<Addend>,
        gates: &[Probe],
        dest: TagDest,
    ) -> bool {
        let mut first = true;
        for p in patterns {
            let mut keys: Vec<(usize, bool)> = Vec::with_capacity(3);
            if let Some(v) = p.d {
                keys.push((d_reg, v));
            }
            if let Some(v) = p.c {
                keys.push((ROW_CARRY, v));
            }
            let mut extra_gates = gates.to_vec();
            match (addend, p.a) {
                (_, None) => {}
                (Some(Addend::Reg(a_reg)), Some(v)) => {
                    if a_bit == d_sub {
                        keys.push((a_reg, v));
                    } else {
                        extra_gates.push(Probe::row(a_bit, a_reg, v));
                    }
                }
                (Some(Addend::Scalar(x)), Some(v)) => {
                    if (x >> a_bit & 1 == 1) != v {
                        continue; // pattern cannot match this bit position
                    }
                }
                (None, Some(_)) => {
                    self.error.get_or_insert(SequencerError::MissingAddend);
                    continue; // the pattern is unusable without an addend
                }
            }
            let mode = if first { TagMode::Set } else { TagMode::Or };
            self.emit(MicroOp::Search {
                probes: vec![Probe::new(d_sub, keys)],
                gates: extra_gates,
                dest,
                mode,
            });
            first = false;
        }
        !first
    }

    /// Emits one group's bulk update at bit position `d_sub`, writing the
    /// destination bit and/or propagating a carry into subarray
    /// `d_sub + 1` (dropped past the MSB — wrapping arithmetic).
    fn group_update(&mut self, upd: &GroupUpdate, d_reg: usize, d_sub: usize, src: TagDest) {
        let cols = match src {
            TagDest::Tags => ColSel::Tags(d_sub),
            TagDest::Acc => ColSel::Acc(d_sub),
        };
        let mut writes = Vec::with_capacity(2);
        if let Some(v) = upd.write_d {
            writes.push(WriteSpec {
                subarray: d_sub,
                row: d_reg,
                value: v,
                cols,
            });
        }
        if upd.write_carry && d_sub + 1 < self.width {
            writes.push(WriteSpec {
                subarray: d_sub + 1,
                row: ROW_CARRY,
                value: true,
                cols,
            });
        }
        if !writes.is_empty() {
            self.emit(MicroOp::Update { writes });
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum MsltRhs {
    Reg(usize),
    Scalar(u32),
}

/// All-ones mask of the low `width` bits.
fn width_mask(width: usize) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_csb::CsbGeometry;

    const VL: usize = 48; // 2 chains, partially filled second column

    fn csb_with(regs: &[(usize, &[u32])]) -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(2));
        for (reg, vals) in regs {
            csb.write_vector(*reg, vals);
        }
        csb.set_active_window(0, VL.min(64));
        csb
    }

    fn sample_a() -> Vec<u32> {
        (0..VL as u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7))
            .collect()
    }

    fn sample_b() -> Vec<u32> {
        (0..VL as u32)
            .map(|i| i.wrapping_mul(0x85EB_CA6B) ^ 0xDEAD_BEEF)
            .collect()
    }

    fn run(csb: &mut Csb, op: VectorOp) -> ExecOutcome {
        Sequencer::new(csb).execute(&op)
    }

    #[test]
    fn add_vv_matches_wrapping_add() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        assert_eq!(csb.read_vector(3, VL), want);
        // Sources intact.
        assert_eq!(csb.read_vector(1, VL), a);
        assert_eq!(csb.read_vector(2, VL), b);
    }

    #[test]
    fn add_in_place_aliases() {
        let (a, b) = (sample_a(), sample_b());
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        // vd == vs1
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Add {
                vd: 1,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(csb.read_vector(1, VL), want);
        // vd == vs2
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Add {
                vd: 2,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(csb.read_vector(2, VL), want);
        // vd == vs1 == vs2 (doubling)
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::Add {
                vd: 1,
                vs1: 1,
                vs2: 1,
            },
        );
        let doubled: Vec<u32> = a.iter().map(|x| x.wrapping_add(*x)).collect();
        assert_eq!(csb.read_vector(1, VL), doubled);
    }

    #[test]
    fn add_vx_matches_scalar_add() {
        let a = sample_a();
        for rs in [0u32, 1, 0xFFFF_FFFF, 0x8000_0001] {
            let mut csb = csb_with(&[(1, &a)]);
            run(&mut csb, VectorOp::AddScalar { vd: 4, vs1: 1, rs });
            let want: Vec<u32> = a.iter().map(|x| x.wrapping_add(rs)).collect();
            assert_eq!(csb.read_vector(4, VL), want, "rs={rs:#x}");
        }
    }

    #[test]
    fn sub_vv_matches_wrapping_sub() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Sub {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_sub(*y)).collect();
        assert_eq!(csb.read_vector(3, VL), want);
    }

    #[test]
    fn sub_aliasing_cases() {
        let (a, b) = (sample_a(), sample_b());
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_sub(*y)).collect();
        // vd == vs1 (in place)
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Sub {
                vd: 1,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(csb.read_vector(1, VL), want);
        // vd == vs2 (two's-complement path)
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Sub {
                vd: 2,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(csb.read_vector(2, VL), want);
        // x - x == 0
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::Sub {
                vd: 1,
                vs1: 1,
                vs2: 1,
            },
        );
        assert_eq!(csb.read_vector(1, VL), vec![0; VL]);
    }

    #[test]
    fn sub_vx_matches_scalar_sub() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::SubScalar {
                vd: 3,
                vs1: 1,
                rs: 0x1234_5678,
            },
        );
        let want: Vec<u32> = a.iter().map(|x| x.wrapping_sub(0x1234_5678)).collect();
        assert_eq!(csb.read_vector(3, VL), want);
    }

    #[test]
    fn mul_vv_matches_wrapping_mul() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let want: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_mul(*y)).collect();
        assert_eq!(csb.read_vector(3, VL), want);
    }

    #[test]
    fn mul_vx_matches_scalar_mul() {
        let a = sample_a();
        for rs in [0u32, 1, 3, 0x8000_0000, 0xFFFF_FFFF] {
            let mut csb = csb_with(&[(1, &a)]);
            run(&mut csb, VectorOp::MulScalar { vd: 3, vs1: 1, rs });
            let want: Vec<u32> = a.iter().map(|x| x.wrapping_mul(rs)).collect();
            assert_eq!(csb.read_vector(3, VL), want, "rs={rs:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "must not alias")]
    fn mul_rejects_aliased_destination() {
        let mut csb = csb_with(&[(1, &sample_a())]);
        run(
            &mut csb,
            VectorOp::Mul {
                vd: 1,
                vs1: 1,
                vs2: 2,
            },
        );
    }

    #[test]
    fn try_compile_surfaces_aliasing_as_typed_error() {
        // Every aliasing restriction must latch a typed error so a
        // long-running host can reject the one bad op without aborting.
        let cases: [(VectorOp, &str); 5] = [
            (
                VectorOp::Mul {
                    vd: 1,
                    vs1: 1,
                    vs2: 2,
                },
                "vmul",
            ),
            (
                VectorOp::MseqScalar {
                    vd: 4,
                    vs1: 4,
                    rs: 7,
                },
                "vmseq",
            ),
            (
                VectorOp::Mslt {
                    vd: 2,
                    vs1: 3,
                    vs2: 2,
                    signed: true,
                },
                "vmslt",
            ),
            (
                VectorOp::Macc {
                    vd: 5,
                    vs1: 5,
                    vs2: 6,
                },
                "vmacc",
            ),
            (
                VectorOp::MinMaxScalar {
                    vd: 7,
                    vs1: 7,
                    rs: 1,
                    max: true,
                    signed: false,
                },
                "vmax",
            ),
        ];
        for (op, mnemonic) in cases {
            let err = CompiledOp::try_compile(&op, 32).unwrap_err();
            match err {
                SequencerError::DestAliasesSource { mnemonic: m, .. } => {
                    assert_eq!(m, mnemonic, "{op:?}")
                }
                other => panic!("{op:?} produced {other:?}"),
            }
            assert!(err.to_string().contains("must not alias"), "{op:?}");
        }
    }

    #[test]
    fn try_compile_rejects_unsupported_width() {
        let op = VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        };
        assert_eq!(
            CompiledOp::try_compile(&op, 24),
            Err(SequencerError::UnsupportedWidth(24))
        );
        assert_eq!(
            SequencerError::UnsupportedWidth(24).to_string(),
            "SEW must be 8, 16 or 32"
        );
    }

    #[test]
    fn try_compile_matches_compile_on_valid_ops() {
        let op = VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        };
        assert_eq!(
            CompiledOp::try_compile(&op, 32).unwrap(),
            CompiledOp::compile(&op, 32)
        );
    }

    #[test]
    fn missing_addend_surfaces_as_error_not_panic() {
        // Drive the lowering helper directly with an addend-consuming
        // truth table but no addend — the shape the engine must survive.
        let mut builder = ProgramBuilder {
            ops: Vec::new(),
            width: 32,
            error: None,
        };
        builder.bit_serial(&BitSerialAlgorithm::adder(), 3, None, 0, &[]);
        assert_eq!(builder.error, Some(SequencerError::MissingAddend));
        assert_eq!(
            SequencerError::MissingAddend.to_string(),
            "truth table references an addend but none was supplied"
        );
    }

    #[test]
    fn logic_ops_match_bitwise_semantics() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        run(
            &mut csb,
            VectorOp::Or {
                vd: 4,
                vs1: 1,
                vs2: 2,
            },
        );
        run(
            &mut csb,
            VectorOp::Xor {
                vd: 5,
                vs1: 1,
                vs2: 2,
            },
        );
        let and: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        let or: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
        let xor: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(csb.read_vector(3, VL), and);
        assert_eq!(csb.read_vector(4, VL), or);
        assert_eq!(csb.read_vector(5, VL), xor);
    }

    #[test]
    fn logic_ops_allow_aliasing() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Xor {
                vd: 1,
                vs1: 1,
                vs2: 2,
            },
        );
        let xor: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(csb.read_vector(1, VL), xor);
    }

    #[test]
    fn logic_ops_are_cheap_and_bit_parallel() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        let out = run(
            &mut csb,
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        // Table I: vand executes in 3 cycles (1 search + 2 updates).
        assert_eq!(out.stats.total(), 3);
        assert_eq!(out.stats.searches_bp, 1);
        let out = run(
            &mut csb,
            VectorOp::Xor {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        // Table I: vxor executes in 4 cycles.
        assert_eq!(out.stats.total(), 4);
    }

    #[test]
    fn add_microop_count_tracks_paper_model() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        let out = run(
            &mut csb,
            VectorOp::Add {
                vd: 1,
                vs1: 1,
                vs2: 2,
            },
        );
        // Paper models vadd as 8n+2 cycles; the emulated in-place sequence
        // is 8 microops per bit (the MSB drops its carry ops) plus carry
        // initialization.
        let total = out.stats.total();
        assert!(
            (8 * 32 - 10..=8 * 32 + 4).contains(&(total as i64)),
            "got {total}"
        );
    }

    #[test]
    fn mseq_vv_and_vx_build_equality_masks() {
        let mut a = sample_a();
        let mut b = a.clone();
        b[7] ^= 0x10;
        b[21] = 0;
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Mseq {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let mask = csb.read_vector(3, VL);
        for e in 0..VL {
            assert_eq!(mask[e] & 1 == 1, a[e] == b[e], "element {e}");
        }
        // vx form: search for a known key placed at a few positions.
        a[5] = 0xCAFE;
        a[13] = 0xCAFE;
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::MseqScalar {
                vd: 3,
                vs1: 1,
                rs: 0xCAFE,
            },
        );
        let mask = csb.read_vector(3, VL);
        for e in 0..VL {
            assert_eq!(mask[e] & 1 == 1, a[e] == 0xCAFE, "element {e}");
        }
    }

    #[test]
    fn mslt_signed_and_unsigned() {
        let a = sample_a();
        let b = sample_b();
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Mslt {
                vd: 3,
                vs1: 1,
                vs2: 2,
                signed: false,
            },
        );
        run(
            &mut csb,
            VectorOp::Mslt {
                vd: 4,
                vs1: 1,
                vs2: 2,
                signed: true,
            },
        );
        let mu = csb.read_vector(3, VL);
        let ms = csb.read_vector(4, VL);
        for e in 0..VL {
            assert_eq!(mu[e] & 1 == 1, a[e] < b[e], "unsigned element {e}");
            assert_eq!(
                ms[e] & 1 == 1,
                (a[e] as i32) < (b[e] as i32),
                "signed element {e}"
            );
        }
    }

    #[test]
    fn mslt_vx_forms() {
        let a = sample_a();
        for rs in [0u32, 0x8000_0000, 0x7FFF_FFFF, 12345] {
            let mut csb = csb_with(&[(1, &a)]);
            run(
                &mut csb,
                VectorOp::MsltScalar {
                    vd: 3,
                    vs1: 1,
                    rs,
                    signed: false,
                },
            );
            run(
                &mut csb,
                VectorOp::MsltScalar {
                    vd: 4,
                    vs1: 1,
                    rs,
                    signed: true,
                },
            );
            let mu = csb.read_vector(3, VL);
            let ms = csb.read_vector(4, VL);
            for e in 0..VL {
                assert_eq!(mu[e] & 1 == 1, a[e] < rs, "unsigned e={e} rs={rs:#x}");
                assert_eq!(
                    ms[e] & 1 == 1,
                    (a[e] as i32) < (rs as i32),
                    "signed e={e} rs={rs:#x}"
                );
            }
        }
    }

    #[test]
    fn mslt_equal_elements_are_not_less() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a), (2, &a)]);
        run(
            &mut csb,
            VectorOp::Mslt {
                vd: 3,
                vs1: 1,
                vs2: 2,
                signed: true,
            },
        );
        assert!(csb.read_vector(3, VL).iter().all(|&m| m & 1 == 0));
    }

    #[test]
    fn merge_selects_by_mask() {
        let (a, b) = (sample_a(), sample_b());
        let mask: Vec<u32> = (0..VL as u32).map(|i| u32::from(i % 3 == 0)).collect();
        let mut csb = csb_with(&[(0, &mask), (1, &a), (2, &b)]);
        let out = run(
            &mut csb,
            VectorOp::Merge {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        // Table I: vmerge completes in 4 cycles.
        assert_eq!(out.stats.total(), 4);
        let got = csb.read_vector(3, VL);
        for e in 0..VL {
            let want = if mask[e] & 1 == 1 { a[e] } else { b[e] };
            assert_eq!(got[e], want, "element {e}");
        }
    }

    #[test]
    fn redsum_matches_wrapping_sum_and_writes_element_zero() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a)]);
        let out = run(&mut csb, VectorOp::RedSum { vd: 5, vs: 1 });
        let want: u32 = a.iter().fold(0u32, |s, &x| s.wrapping_add(x));
        assert_eq!(out.scalar, Some(i64::from(want)));
        assert_eq!(csb.read_element(5, 0), want);
        // n searches + n reduces.
        assert_eq!(out.stats.reduces, 32);
        assert_eq!(out.stats.searches(), 32);
    }

    #[test]
    fn redsum_respects_active_window() {
        let a = vec![5u32; 64];
        let mut csb = Csb::new(CsbGeometry::new(2));
        csb.write_vector(1, &a);
        csb.set_active_window(0, 10);
        let out = run(&mut csb, VectorOp::RedSum { vd: 5, vs: 1 });
        assert_eq!(out.scalar, Some(50));
    }

    #[test]
    fn cpop_and_first_query_masks() {
        let mask: Vec<u32> = (0..VL as u32)
            .map(|i| u32::from(i == 9 || i == 30))
            .collect();
        let mut csb = csb_with(&[(2, &mask)]);
        assert_eq!(run(&mut csb, VectorOp::Cpop { vs: 2 }).scalar, Some(2));
        assert_eq!(run(&mut csb, VectorOp::First { vs: 2 }).scalar, Some(9));
        let zero = vec![0u32; VL];
        let mut csb = csb_with(&[(2, &zero)]);
        assert_eq!(run(&mut csb, VectorOp::First { vs: 2 }).scalar, Some(-1));
    }

    #[test]
    fn broadcast_is_one_microop() {
        let mut csb = csb_with(&[]);
        let out = run(
            &mut csb,
            VectorOp::Broadcast {
                vd: 7,
                rs: 0x1357_9BDF,
            },
        );
        assert_eq!(out.stats.total(), 1);
        assert_eq!(csb.read_vector(7, VL), vec![0x1357_9BDF; VL]);
    }

    #[test]
    fn shifts_match_logical_semantics() {
        let a = sample_a();
        for sh in [0u32, 1, 7, 31, 32] {
            let mut csb = csb_with(&[(1, &a)]);
            run(&mut csb, VectorOp::ShiftLeft { vd: 3, vs: 1, sh });
            run(&mut csb, VectorOp::ShiftRight { vd: 4, vs: 1, sh });
            let wl: Vec<u32> = a
                .iter()
                .map(|&x| if sh < 32 { x << sh } else { 0 })
                .collect();
            let wr: Vec<u32> = a
                .iter()
                .map(|&x| if sh < 32 { x >> sh } else { 0 })
                .collect();
            assert_eq!(csb.read_vector(3, VL), wl, "sll sh={sh}");
            assert_eq!(csb.read_vector(4, VL), wr, "srl sh={sh}");
        }
    }

    #[test]
    fn vid_writes_element_indices() {
        let mut csb = csb_with(&[]);
        run(&mut csb, VectorOp::Vid { vd: 6 });
        let got = csb.read_vector(6, VL);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn increment_matches_figure_one() {
        let a = vec![0u32, 1, 2, 3, u32::MAX, 0x7FFF_FFFF];
        let mut csb = csb_with(&[(1, &a)]);
        csb.set_active_window(0, a.len());
        run(&mut csb, VectorOp::Increment { vd: 1 });
        let want: Vec<u32> = a.iter().map(|x| x.wrapping_add(1)).collect();
        assert_eq!(csb.read_vector(1, a.len()), want);
    }

    #[test]
    fn operations_respect_vstart() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b), (3, &[0xABCD; VL])]);
        csb.set_active_window(4, 20);
        run(
            &mut csb,
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let got = csb.read_vector(3, VL);
        for e in 0..VL {
            if (4..20).contains(&e) {
                assert_eq!(got[e], a[e].wrapping_add(b[e]), "active element {e}");
            } else {
                assert_eq!(got[e], 0xABCD, "inactive element {e} must be untouched");
            }
        }
    }

    #[test]
    fn logic_scalar_forms_match_bitwise_semantics() {
        let a = sample_a();
        for rs in [0u32, u32::MAX, 0xF0F0_A5A5, 1] {
            let mut csb = csb_with(&[(1, &a)]);
            run(
                &mut csb,
                VectorOp::LogicScalar {
                    op: crate::vop::LogicOp::And,
                    vd: 3,
                    vs1: 1,
                    rs,
                },
            );
            run(
                &mut csb,
                VectorOp::LogicScalar {
                    op: crate::vop::LogicOp::Or,
                    vd: 4,
                    vs1: 1,
                    rs,
                },
            );
            run(
                &mut csb,
                VectorOp::LogicScalar {
                    op: crate::vop::LogicOp::Xor,
                    vd: 5,
                    vs1: 1,
                    rs,
                },
            );
            let (and, or, xor) = (
                csb.read_vector(3, VL),
                csb.read_vector(4, VL),
                csb.read_vector(5, VL),
            );
            for e in 0..VL {
                assert_eq!(and[e], a[e] & rs, "and rs={rs:#x} e={e}");
                assert_eq!(or[e], a[e] | rs, "or rs={rs:#x} e={e}");
                assert_eq!(xor[e], a[e] ^ rs, "xor rs={rs:#x} e={e}");
            }
        }
    }

    #[test]
    fn logic_scalar_stays_bit_parallel_cheap() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a)]);
        let out = run(
            &mut csb,
            VectorOp::LogicScalar {
                op: crate::vop::LogicOp::Xor,
                vd: 3,
                vs1: 1,
                rs: 0x1234_5678,
            },
        );
        assert!(out.stats.total() <= 4, "{}", out.stats.total());
    }

    #[test]
    fn msne_is_the_complement_of_mseq() {
        let a = sample_a();
        let mut b = a.clone();
        b[3] ^= 1;
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::Msne {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        run(
            &mut csb,
            VectorOp::MsneScalar {
                vd: 4,
                vs1: 1,
                rs: a[7],
            },
        );
        for e in 0..VL {
            assert_eq!(csb.read_element(3, e) & 1 == 1, a[e] != b[e], "vv e={e}");
            assert_eq!(csb.read_element(4, e) & 1 == 1, a[e] != a[7], "vx e={e}");
        }
    }

    #[test]
    fn min_max_all_variants() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::MinMax {
                vd: 3,
                vs1: 1,
                vs2: 2,
                max: false,
                signed: false,
            },
        );
        run(
            &mut csb,
            VectorOp::MinMax {
                vd: 4,
                vs1: 1,
                vs2: 2,
                max: true,
                signed: false,
            },
        );
        run(
            &mut csb,
            VectorOp::MinMax {
                vd: 5,
                vs1: 1,
                vs2: 2,
                max: false,
                signed: true,
            },
        );
        run(
            &mut csb,
            VectorOp::MinMax {
                vd: 6,
                vs1: 1,
                vs2: 2,
                max: true,
                signed: true,
            },
        );
        for e in 0..VL {
            assert_eq!(csb.read_element(3, e), a[e].min(b[e]), "minu e={e}");
            assert_eq!(csb.read_element(4, e), a[e].max(b[e]), "maxu e={e}");
            assert_eq!(
                csb.read_element(5, e) as i32,
                (a[e] as i32).min(b[e] as i32),
                "min e={e}"
            );
            assert_eq!(
                csb.read_element(6, e) as i32,
                (a[e] as i32).max(b[e] as i32),
                "max e={e}"
            );
        }
    }

    #[test]
    fn min_max_scalar_variants() {
        let a = sample_a();
        for rs in [0u32, 0x8000_0000, 12345] {
            let mut csb = csb_with(&[(1, &a)]);
            run(
                &mut csb,
                VectorOp::MinMaxScalar {
                    vd: 3,
                    vs1: 1,
                    rs,
                    max: false,
                    signed: false,
                },
            );
            run(
                &mut csb,
                VectorOp::MinMaxScalar {
                    vd: 4,
                    vs1: 1,
                    rs,
                    max: true,
                    signed: true,
                },
            );
            for (e, &av) in a.iter().enumerate().take(VL) {
                assert_eq!(csb.read_element(3, e), av.min(rs), "minu rs={rs:#x}");
                assert_eq!(
                    csb.read_element(4, e) as i32,
                    (av as i32).max(rs as i32),
                    "max rs={rs:#x}"
                );
            }
        }
    }

    #[test]
    fn min_max_tolerates_destination_aliasing() {
        let (a, b) = (sample_a(), sample_b());
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run(
            &mut csb,
            VectorOp::MinMax {
                vd: 1,
                vs1: 1,
                vs2: 2,
                max: false,
                signed: false,
            },
        );
        let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
        assert_eq!(csb.read_vector(1, VL), want);
    }

    #[test]
    fn rsub_reverses_subtraction() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::RsubScalar {
                vd: 3,
                vs1: 1,
                rs: 1000,
            },
        );
        let want: Vec<u32> = a.iter().map(|&x| 1000u32.wrapping_sub(x)).collect();
        assert_eq!(csb.read_vector(3, VL), want);
        // In place.
        let mut csb = csb_with(&[(1, &a)]);
        run(
            &mut csb,
            VectorOp::RsubScalar {
                vd: 1,
                vs1: 1,
                rs: 7,
            },
        );
        let want: Vec<u32> = a.iter().map(|&x| 7u32.wrapping_sub(x)).collect();
        assert_eq!(csb.read_vector(1, VL), want);
    }

    #[test]
    fn macc_accumulates_products() {
        let (a, b) = (sample_a(), sample_b());
        let acc: Vec<u32> = (0..VL as u32).map(|i| i * 11).collect();
        let mut csb = csb_with(&[(1, &a), (2, &b), (3, &acc)]);
        run(
            &mut csb,
            VectorOp::Macc {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        let want: Vec<u32> = (0..VL)
            .map(|e| acc[e].wrapping_add(a[e].wrapping_mul(b[e])))
            .collect();
        assert_eq!(csb.read_vector(3, VL), want);
    }

    #[test]
    fn mv_copies_registers() {
        let a = sample_a();
        let mut csb = csb_with(&[(1, &a)]);
        let out = run(&mut csb, VectorOp::Mv { vd: 9, vs: 1 });
        assert_eq!(csb.read_vector(9, VL), a);
        assert!(out.stats.total() <= 3);
    }

    #[test]
    fn sra_matches_arithmetic_shift() {
        let a = sample_a();
        for sh in [0u32, 1, 7, 31, 32] {
            let mut csb = csb_with(&[(1, &a)]);
            run(&mut csb, VectorOp::ShiftRightArith { vd: 3, vs: 1, sh });
            let want: Vec<u32> = a
                .iter()
                .map(|&x| {
                    let sh = sh.min(31);
                    ((x as i32) >> sh) as u32
                })
                .collect();
            assert_eq!(csb.read_vector(3, VL), want, "sra sh={sh}");
        }
    }

    // ----- narrow element widths (SEW = 8/16, Section V-A) -------------

    fn run_w(csb: &mut Csb, width: usize, op: VectorOp) -> ExecOutcome {
        Sequencer::with_width(csb, width).execute(&op)
    }

    #[test]
    fn narrow_add_wraps_at_the_element_width() {
        let a: Vec<u32> = (0..VL as u32).map(|i| (i * 37) & 0xFF).collect();
        let b: Vec<u32> = (0..VL as u32).map(|i| (i * 91) & 0xFF).collect();
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run_w(
            &mut csb,
            8,
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        for e in 0..VL {
            assert_eq!(csb.read_element(3, e), (a[e] + b[e]) & 0xFF, "e={e}");
        }
    }

    #[test]
    fn narrow_add_is_faster_than_wide() {
        let a: Vec<u32> = vec![0x55; VL];
        let mut csb = csb_with(&[(1, &a), (2, &a)]);
        let w8 = run_w(
            &mut csb,
            8,
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        )
        .stats
        .total();
        let w32 = run_w(
            &mut csb,
            32,
            VectorOp::Add {
                vd: 4,
                vs1: 1,
                vs2: 2,
            },
        )
        .stats
        .total();
        assert!(w8 * 3 < w32, "8-bit {w8} vs 32-bit {w32}");
    }

    #[test]
    fn narrow_mul_and_redsum() {
        let a: Vec<u32> = (0..VL as u32).map(|i| i & 0xFF).collect();
        let b: Vec<u32> = (0..VL as u32).map(|i| (255 - i) & 0xFF).collect();
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        run_w(
            &mut csb,
            8,
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        for e in 0..VL {
            assert_eq!(csb.read_element(3, e), (a[e] * b[e]) & 0xFF, "mul e={e}");
        }
        let out = run_w(&mut csb, 16, VectorOp::RedSum { vd: 4, vs: 1 });
        let want = a.iter().sum::<u32>() & 0xFFFF;
        assert_eq!(out.scalar, Some(i64::from(want)));
    }

    #[test]
    fn narrow_comparisons_use_the_narrow_sign_bit() {
        let a: Vec<u32> = vec![0x80, 0x7F, 0x01, 0xFF];
        let b: Vec<u32> = vec![0x01, 0x80, 0x02, 0x00];
        let mut csb = csb_with(&[(1, &a), (2, &b)]);
        csb.set_active_window(0, 4);
        run_w(
            &mut csb,
            8,
            VectorOp::Mslt {
                vd: 3,
                vs1: 1,
                vs2: 2,
                signed: true,
            },
        );
        run_w(
            &mut csb,
            8,
            VectorOp::Mslt {
                vd: 4,
                vs1: 1,
                vs2: 2,
                signed: false,
            },
        );
        for e in 0..4 {
            let (x, y) = (a[e] as u8 as i8, b[e] as u8 as i8);
            assert_eq!(csb.read_element(3, e) & 1 == 1, x < y, "signed e={e}");
            assert_eq!(
                csb.read_element(4, e) & 1 == 1,
                (a[e] as u8) < (b[e] as u8),
                "unsigned e={e}"
            );
        }
    }

    #[test]
    fn narrow_results_are_zero_extended() {
        // Stale wide bits in vd must be cleared by narrow writes.
        let wide: Vec<u32> = vec![0xFFFF_FFFF; VL];
        let small: Vec<u32> = vec![3; VL];
        let mut csb = csb_with(&[(1, &small), (2, &small), (3, &wide)]);
        run_w(
            &mut csb,
            8,
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        );
        assert_eq!(csb.read_vector(3, VL), vec![6u32; VL]);
    }

    #[test]
    fn narrow_broadcast_and_shift() {
        let mut csb = csb_with(&[]);
        run_w(
            &mut csb,
            16,
            VectorOp::Broadcast {
                vd: 1,
                rs: 0xABCD_1234,
            },
        );
        assert_eq!(csb.read_element(1, 0), 0x1234);
        run_w(
            &mut csb,
            16,
            VectorOp::ShiftLeft {
                vd: 2,
                vs: 1,
                sh: 4,
            },
        );
        assert_eq!(csb.read_element(2, 0), 0x2340);
    }
}

//! The vector operation set accepted by the VCU.

use serde::{Deserialize, Serialize};

/// A decoded vector operation, in terms of CSB vector register indices
/// (`0..32`) and already-read scalar operands.
///
/// This is the semantic layer *below* the RISC-V encoding: the control
/// processor reads any scalar register operands at issue time and hands
/// the VCU a `VectorOp` (Section III). `vd`/`vs1`/`vs2` are row indices
/// into every subarray; the mask register of `Merge` is the architectural
/// `v0` as required by RVV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOp {
    /// `vadd.vv vd, vs1, vs2` — element-wise wrapping addition.
    Add {
        /// Destination register.
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vadd.vx vd, vs1, rs` — add a scalar to every element.
    AddScalar {
        /// Destination register.
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar operand.
        rs: u32,
    },
    /// `vsub.vv vd, vs1, vs2` — element-wise wrapping subtraction
    /// (`vd = vs1 - vs2`).
    Sub {
        /// Destination register.
        vd: usize,
        /// Minuend.
        vs1: usize,
        /// Subtrahend.
        vs2: usize,
    },
    /// `vsub.vx vd, vs1, rs` — subtract a scalar from every element.
    SubScalar {
        /// Destination register.
        vd: usize,
        /// Minuend vector.
        vs1: usize,
        /// Scalar subtrahend.
        rs: u32,
    },
    /// `vmul.vv vd, vs1, vs2` — element-wise wrapping multiplication
    /// (low 32 bits).
    Mul {
        /// Destination register (must not alias a source).
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vmul.vx vd, vs1, rs` — multiply every element by a scalar.
    MulScalar {
        /// Destination register (must not alias the source).
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar multiplier.
        rs: u32,
    },
    /// `vand.vv vd, vs1, vs2` — element-wise AND (bit-parallel).
    And {
        /// Destination register.
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vor.vv vd, vs1, vs2` — element-wise OR (bit-parallel).
    Or {
        /// Destination register.
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vxor.vv vd, vs1, vs2` — element-wise XOR (bit-parallel).
    Xor {
        /// Destination register.
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vmseq.vv vd, vs1, vs2` — per-element equality into a mask
    /// (bit 0 of each `vd` element).
    Mseq {
        /// Mask destination register (must not alias a source).
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vmseq.vx vd, vs1, rs` — per-element equality against a scalar.
    /// This is CAPE's signature bit-parallel search (Fig. 4).
    MseqScalar {
        /// Mask destination register (must not alias the source).
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar key.
        rs: u32,
    },
    /// `vmslt[u].vv vd, vs1, vs2` — per-element less-than into a mask.
    Mslt {
        /// Mask destination register (must not alias a source).
        vd: usize,
        /// Left operand.
        vs1: usize,
        /// Right operand.
        vs2: usize,
        /// Signed (`vmslt`) vs unsigned (`vmsltu`) comparison.
        signed: bool,
    },
    /// `vmslt[u].vx vd, vs1, rs` — per-element less-than against a scalar.
    MsltScalar {
        /// Mask destination register (must not alias the source).
        vd: usize,
        /// Vector operand.
        vs1: usize,
        /// Scalar right operand.
        rs: u32,
        /// Signed vs unsigned comparison.
        signed: bool,
    },
    /// `vand.vx` / `vor.vx` / `vxor.vx` — scalar-specialized logic: the
    /// scalar's bits select per-subarray behaviour directly, keeping the
    /// operation bit-parallel.
    LogicScalar {
        /// Which logic operation.
        op: LogicOp,
        /// Destination register.
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar operand.
        rs: u32,
    },
    /// `vmsne.vv vd, vs1, vs2` — per-element inequality into a mask.
    Msne {
        /// Mask destination register (must not alias a source).
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vmsne.vx vd, vs1, rs` — per-element inequality against a scalar.
    MsneScalar {
        /// Mask destination register (must not alias the source).
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar key.
        rs: u32,
    },
    /// `vmin[u].vv` / `vmax[u].vv` — element-wise minimum/maximum
    /// (an ordered compare into a metadata row, then a masked select).
    MinMax {
        /// Destination register.
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
        /// Maximum instead of minimum.
        max: bool,
        /// Signed comparison.
        signed: bool,
    },
    /// `vmin[u].vx` / `vmax[u].vx` — element-wise min/max against a
    /// scalar.
    MinMaxScalar {
        /// Destination register.
        vd: usize,
        /// Vector source.
        vs1: usize,
        /// Scalar operand.
        rs: u32,
        /// Maximum instead of minimum.
        max: bool,
        /// Signed comparison.
        signed: bool,
    },
    /// `vrsub.vx vd, vs1, rs` — reversed subtraction `vd = rs - vs1`.
    RsubScalar {
        /// Destination register.
        vd: usize,
        /// Vector subtrahend.
        vs1: usize,
        /// Scalar minuend.
        rs: u32,
    },
    /// `vmacc.vv vd, vs1, vs2` — multiply-accumulate `vd += vs1 * vs2`.
    Macc {
        /// Accumulator register (must not alias a source).
        vd: usize,
        /// First source.
        vs1: usize,
        /// Second source.
        vs2: usize,
    },
    /// `vmv.v.v vd, vs` — register copy.
    Mv {
        /// Destination register.
        vd: usize,
        /// Source register.
        vs: usize,
    },
    /// `vsra.vi vd, vs, sh` — arithmetic shift right by an immediate.
    ShiftRightArith {
        /// Destination register.
        vd: usize,
        /// Source register.
        vs: usize,
        /// Shift amount (`0..32`).
        sh: u32,
    },
    /// `vmerge.vvm vd, vs2, vs1, v0` — element-wise select:
    /// `vd[i] = v0.mask[i] ? vs1[i] : vs2[i]`.
    Merge {
        /// Destination register.
        vd: usize,
        /// Value taken where the mask is 1.
        vs1: usize,
        /// Value taken where the mask is 0.
        vs2: usize,
    },
    /// `vredsum.vs vd, vs` — sum of all active elements; the scalar result
    /// is also written to element 0 of `vd` (Section IV-E, Fig. 6).
    RedSum {
        /// Destination register (element 0 receives the sum).
        vd: usize,
        /// Source vector.
        vs: usize,
    },
    /// `vcpop.m rd, vs` — population count of a mask register.
    Cpop {
        /// Mask source register.
        vs: usize,
    },
    /// `vfirst.m rd, vs` — index of the first set mask bit, or `None`.
    First {
        /// Mask source register.
        vs: usize,
    },
    /// `vmv.v.x vd, rs` — broadcast a scalar into every active element.
    Broadcast {
        /// Destination register.
        vd: usize,
        /// Scalar value.
        rs: u32,
    },
    /// `vsll.vi vd, vs, sh` — logical shift left by an immediate. In the
    /// bit-sliced layout a shift is a cross-subarray row copy, so it is
    /// bit-parallel and cheap.
    ShiftLeft {
        /// Destination register.
        vd: usize,
        /// Source register.
        vs: usize,
        /// Shift amount (`0..32`).
        sh: u32,
    },
    /// `vsrl.vi vd, vs, sh` — logical shift right by an immediate.
    ShiftRight {
        /// Destination register.
        vd: usize,
        /// Source register.
        vs: usize,
        /// Shift amount (`0..32`).
        sh: u32,
    },
    /// `vid.v vd` — write each element's index (RVV `vid.v`; used by
    /// index-search workloads).
    Vid {
        /// Destination register.
        vd: usize,
    },
    /// The didactic associative increment of Fig. 1: `vd[i] += 1`.
    Increment {
        /// Register incremented in place.
        vd: usize,
    },
}

/// The three bit-parallel logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LogicOp {
    And,
    Or,
    Xor,
}

/// Instruction family, used to index the Table I metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOpKind {
    /// `vadd.vv` / `vadd.vx`.
    Add,
    /// `vsub.vv` / `vsub.vx`.
    Sub,
    /// `vmul.vv` / `vmul.vx`.
    Mul,
    /// `vand.vv`.
    And,
    /// `vor.vv`.
    Or,
    /// `vxor.vv`.
    Xor,
    /// `vmseq.vv`.
    MseqVv,
    /// `vmseq.vx`.
    MseqVx,
    /// `vmslt[u]`.
    Mslt,
    /// `vmsne`.
    Msne,
    /// `vmin`/`vmax` (all signedness/scalar forms).
    MinMax,
    /// `vmacc.vv`.
    Macc,
    /// `vmv.v.v`.
    Mv,
    /// `vmerge.vvm`.
    Merge,
    /// `vredsum.vs`.
    RedSum,
    /// `vcpop.m`.
    Cpop,
    /// `vfirst.m`.
    First,
    /// `vmv.v.x`.
    Broadcast,
    /// `vsll.vi` / `vsrl.vi`.
    Shift,
    /// `vid.v`.
    Vid,
    /// The Fig. 1 increment.
    Increment,
}

impl VectorOp {
    /// The instruction family of this operation.
    pub fn kind(&self) -> VectorOpKind {
        match self {
            VectorOp::Add { .. } | VectorOp::AddScalar { .. } => VectorOpKind::Add,
            VectorOp::Sub { .. } | VectorOp::SubScalar { .. } => VectorOpKind::Sub,
            VectorOp::Mul { .. } | VectorOp::MulScalar { .. } => VectorOpKind::Mul,
            VectorOp::And { .. } => VectorOpKind::And,
            VectorOp::Or { .. } => VectorOpKind::Or,
            VectorOp::Xor { .. } => VectorOpKind::Xor,
            VectorOp::LogicScalar {
                op: LogicOp::And, ..
            } => VectorOpKind::And,
            VectorOp::LogicScalar {
                op: LogicOp::Or, ..
            } => VectorOpKind::Or,
            VectorOp::LogicScalar {
                op: LogicOp::Xor, ..
            } => VectorOpKind::Xor,
            VectorOp::Msne { .. } => VectorOpKind::Msne,
            VectorOp::MsneScalar { .. } => VectorOpKind::Msne,
            VectorOp::MinMax { .. } | VectorOp::MinMaxScalar { .. } => VectorOpKind::MinMax,
            VectorOp::RsubScalar { .. } => VectorOpKind::Sub,
            VectorOp::Macc { .. } => VectorOpKind::Macc,
            VectorOp::Mv { .. } => VectorOpKind::Mv,
            VectorOp::ShiftRightArith { .. } => VectorOpKind::Shift,
            VectorOp::Mseq { .. } => VectorOpKind::MseqVv,
            VectorOp::MseqScalar { .. } => VectorOpKind::MseqVx,
            VectorOp::Mslt { .. } | VectorOp::MsltScalar { .. } => VectorOpKind::Mslt,
            VectorOp::Merge { .. } => VectorOpKind::Merge,
            VectorOp::RedSum { .. } => VectorOpKind::RedSum,
            VectorOp::Cpop { .. } => VectorOpKind::Cpop,
            VectorOp::First { .. } => VectorOpKind::First,
            VectorOp::Broadcast { .. } => VectorOpKind::Broadcast,
            VectorOp::ShiftLeft { .. } | VectorOp::ShiftRight { .. } => VectorOpKind::Shift,
            VectorOp::Vid { .. } => VectorOpKind::Vid,
            VectorOp::Increment { .. } => VectorOpKind::Increment,
        }
    }

    /// True if the operation produces a scalar result for the control
    /// processor (`vredsum`, `vcpop`, `vfirst`).
    pub fn produces_scalar(&self) -> bool {
        matches!(
            self,
            VectorOp::RedSum { .. } | VectorOp::Cpop { .. } | VectorOp::First { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_group_vv_and_vx_forms() {
        assert_eq!(
            VectorOp::Add {
                vd: 0,
                vs1: 1,
                vs2: 2
            }
            .kind(),
            VectorOp::AddScalar {
                vd: 0,
                vs1: 1,
                rs: 7
            }
            .kind()
        );
        assert_eq!(
            VectorOp::Mslt {
                vd: 0,
                vs1: 1,
                vs2: 2,
                signed: true
            }
            .kind(),
            VectorOp::MsltScalar {
                vd: 0,
                vs1: 1,
                rs: 7,
                signed: false
            }
            .kind()
        );
        assert_ne!(
            VectorOp::Mseq {
                vd: 0,
                vs1: 1,
                vs2: 2
            }
            .kind(),
            VectorOp::MseqScalar {
                vd: 0,
                vs1: 1,
                rs: 0
            }
            .kind()
        );
    }

    #[test]
    fn scalar_producers() {
        assert!(VectorOp::RedSum { vd: 0, vs: 1 }.produces_scalar());
        assert!(VectorOp::Cpop { vs: 1 }.produces_scalar());
        assert!(VectorOp::First { vs: 1 }.produces_scalar());
        assert!(!VectorOp::Add {
            vd: 0,
            vs1: 1,
            vs2: 2
        }
        .produces_scalar());
    }
}

//! Fusion windows: several compiled vector operations concatenated into
//! one super-program so the whole window costs a single CSB broadcast and
//! a single join.
//!
//! The CP/VCU boundary buffers back-to-back vector instructions whose
//! [`PostProcess`] is [`PostProcess::None`] (nothing crosses back to the
//! scalar side between them) until a fusion barrier — a scalar read of a
//! vector result, a VMU load/store, a mask/`vl` change, or a slice
//! preemption point. [`fuse_window`] then concatenates the buffered ops'
//! lowered programs via
//! [`MicroProgram::windowed`](cape_csb::MicroProgram::windowed), which
//! re-runs step fusion across the op seams and performs cross-op
//! plan-level peepholes (dead-store elimination of write-then-rewrite row
//! round-trips, adjacent `TagCombine` merging).
//!
//! Fused windows are cacheable exactly like single compiled ops: the
//! program depends only on the `(VectorOp, SEW)` sequence, never on CSB
//! data, so [`window_fingerprint`] over that sequence is a sound cache
//! key.

use cape_csb::MicroProgram;

use crate::sequencer::{CompiledOp, PostProcess};
use crate::vop::VectorOp;

/// FNV-1a, the paper-repo-wide fingerprint of choice for small key
/// streams: no tables, one multiply per byte, and stable across runs
/// (unlike `std`'s randomized SipHash).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Fingerprint of a fusion window: FNV-1a over the `(VectorOp, SEW)`
/// sequence, in issue order.
///
/// Two windows with the same fingerprint lower to the same fused program
/// (compilation is a pure function of op and width), so the fingerprint
/// keys the VCU's fused-program cache. Operation *operands* — register
/// numbers and scalar immediates — are part of the hash, exactly as they
/// are for the single-op cache key.
pub fn window_fingerprint(ops: &[(VectorOp, u32)]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = Fnv1a(Fnv1a::OFFSET_BASIS);
    ops.len().hash(&mut h);
    for (op, sew) in ops {
        op.hash(&mut h);
        sew.hash(&mut h);
    }
    h.finish()
}

/// Concatenates compiled operations into one fused window program.
///
/// The result replays every part in issue order with one broadcast and
/// one join, after cross-seam step fusion and plan-level peephole passes
/// ([`MicroProgram::windowed`](cape_csb::MicroProgram::windowed)). CSB
/// state afterwards is bit-identical to running the parts back to back.
///
/// # Panics
///
/// Panics if `parts` is empty, if any part's post-process step is not
/// [`PostProcess::None`] (such ops are fusion barriers — their results
/// cross back to the scalar side and must execute unfused), or if the
/// parts disagree on element width (a SEW change is a window barrier).
pub fn fuse_window(parts: &[&CompiledOp]) -> CompiledOp {
    let first = parts.first().expect("fusion window must be non-empty");
    let width = first.width();
    for p in parts {
        assert_eq!(
            p.post(),
            PostProcess::None,
            "ops with scalar post-processing are fusion barriers"
        );
        assert_eq!(p.width(), width, "SEW changes are fusion barriers");
    }
    let programs: Vec<&MicroProgram> = parts.iter().map(|p| p.program()).collect();
    CompiledOp::from_parts(MicroProgram::windowed(&programs), PostProcess::None, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequencer::Sequencer;
    use cape_csb::{Csb, CsbGeometry};

    fn ops() -> Vec<VectorOp> {
        vec![
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::Xor {
                vd: 4,
                vs1: 3,
                vs2: 1,
            },
            VectorOp::Sub {
                vd: 5,
                vs1: 4,
                vs2: 2,
            },
            VectorOp::AddScalar {
                vd: 6,
                vs1: 5,
                rs: 7,
            },
        ]
    }

    fn seeded() -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(2));
        csb.write_vector(1, &[10, 20, 30, 0xdead, 5]);
        csb.write_vector(2, &[1, 2, 3, 4, 5]);
        csb.set_active_window(1, 5);
        csb
    }

    #[test]
    fn fused_window_matches_back_to_back_execution() {
        let parts: Vec<CompiledOp> = ops().iter().map(|op| CompiledOp::compile(op, 32)).collect();

        let mut baseline = seeded();
        {
            let mut seq = Sequencer::new(&mut baseline);
            for p in &parts {
                seq.run_program(p);
            }
        }

        let mut fused_csb = seeded();
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>());
        {
            let mut seq = Sequencer::new(&mut fused_csb);
            let outcome = seq.run_program(&fused);
            assert_eq!(outcome.scalar, None);
        }

        assert_eq!(baseline.save_registers(), fused_csb.save_registers());
    }

    #[test]
    fn dead_intermediate_shrinks_the_fused_plan() {
        // v3 is written by the add, never read, then fully overwritten by
        // the broadcast (full-window writes) — the add's stores are dead.
        let seq = [
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::Broadcast { vd: 3, rs: 0xab },
        ];
        let parts: Vec<CompiledOp> = seq.iter().map(|op| CompiledOp::compile(op, 32)).collect();
        let total: usize = parts.iter().map(|p| p.program().plan_len()).sum();
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>());
        assert!(
            fused.program().plan_len() < total,
            "cross-op dead-store elimination should shrink the fused plan ({} vs {total})",
            fused.program().plan_len()
        );
        // The *op* list stays the unoptimized concatenation so recorded
        // stats (cycles, energy, golden replay) match per-op execution.
        assert_eq!(
            fused.program().len(),
            parts.iter().map(|p| p.program().len()).sum::<usize>()
        );

        let mut baseline = seeded();
        {
            let mut s = Sequencer::new(&mut baseline);
            for p in &parts {
                s.run_program(p);
            }
        }
        let mut fused_csb = seeded();
        Sequencer::new(&mut fused_csb).run_program(&fused);
        assert_eq!(baseline.save_registers(), fused_csb.save_registers());
    }

    #[test]
    fn fingerprint_distinguishes_sequences() {
        let a: Vec<(VectorOp, u32)> = ops().into_iter().map(|op| (op, 32)).collect();
        let mut b = a.clone();
        b.swap(0, 1);
        let mut c = a.clone();
        c[0].1 = 16;
        let truncated = a[..3].to_vec();

        let fa = window_fingerprint(&a);
        assert_eq!(fa, window_fingerprint(&a), "fingerprint must be stable");
        assert_ne!(fa, window_fingerprint(&b), "order matters");
        assert_ne!(fa, window_fingerprint(&c), "SEW matters");
        assert_ne!(fa, window_fingerprint(&truncated), "length matters");
    }

    #[test]
    #[should_panic(expected = "fusion barriers")]
    fn reduction_ops_refuse_to_fuse() {
        let add = CompiledOp::compile(
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            32,
        );
        let red = CompiledOp::compile(&VectorOp::RedSum { vd: 4, vs: 3 }, 32);
        fuse_window(&[&add, &red]);
    }
}

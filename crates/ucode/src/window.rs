//! Fusion windows: several compiled vector operations concatenated into
//! one super-program so the whole window costs a single CSB broadcast and
//! a single join.
//!
//! The CP/VCU boundary buffers back-to-back vector instructions whose
//! [`PostProcess`] is [`PostProcess::None`] (nothing crosses back to the
//! scalar side between them) until a fusion barrier — a scalar read of a
//! vector result, a VMU load/store, an *effective* `vl`/`vstart` change,
//! or a slice preemption point. A `vsetvli`/`vsetstart` that provably
//! leaves the active window unchanged is a no-op marker, not a barrier,
//! and SEW transitions fuse freely: width only parameterizes each part's
//! own lowering and its (absent) post-processing, so a mixed-SEW window
//! is an ordinary concatenation of plans compiled at their own widths.
//!
//! [`fuse_window`] compiles the buffered ops' lowered programs — in
//! issue order ([`MicroProgram::windowed`](cape_csb::MicroProgram::windowed)),
//! or through the v2 window compiler
//! ([`MicroProgram::windowed_scheduled`](cape_csb::MicroProgram::windowed_scheduled)),
//! which schedules the parts over their RAW/WAR/WAW dependence graph and
//! then re-runs step fusion across the op seams plus the cross-op
//! plan-level peepholes (liveness-cascading dead-store elimination,
//! adjacent `TagCombine` merging).
//!
//! Fused windows are cacheable exactly like single compiled ops: the
//! program depends only on the `(VectorOp, SEW)` sequence, never on CSB
//! data, so [`window_fingerprint`] over that sequence is a sound cache
//! key — SEW-aware, since each op hashes with its own width. The cache
//! additionally stores the full key sequence and verifies it on hit, so
//! a 64-bit collision can never serve the wrong super-program.

use cape_csb::MicroProgram;

use crate::sequencer::{CompiledOp, PostProcess};
use crate::vop::VectorOp;

/// FNV-1a, the paper-repo-wide fingerprint of choice for small key
/// streams: no tables, one multiply per byte, and stable across runs
/// (unlike `std`'s randomized SipHash).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Fingerprint of a fusion window: FNV-1a over the `(VectorOp, SEW)`
/// sequence, in issue order.
///
/// Two windows with the same fingerprint lower to the same fused program
/// (compilation is a pure function of op and width), so the fingerprint
/// keys the VCU's fused-program cache. Operation *operands* — register
/// numbers and scalar immediates — are part of the hash, exactly as they
/// are for the single-op cache key.
pub fn window_fingerprint(ops: &[(VectorOp, u32)]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = Fnv1a(Fnv1a::OFFSET_BASIS);
    ops.len().hash(&mut h);
    for (op, sew) in ops {
        op.hash(&mut h);
        sew.hash(&mut h);
    }
    h.finish()
}

/// Compiles several buffered operations into one fused window program.
///
/// The result replays every part with one broadcast and one join, after
/// cross-seam step fusion and the plan-level peephole passes. With
/// `reorder` false the parts are concatenated in issue order (the PR 9
/// pipeline, [`MicroProgram::windowed`](cape_csb::MicroProgram::windowed));
/// with `reorder` true the window compiler builds the RAW/WAR/WAW
/// dependence graph over subarray rows, tags and accumulators and
/// list-schedules independent parts before re-running the (upgraded)
/// peepholes
/// ([`MicroProgram::windowed_scheduled`](cape_csb::MicroProgram::windowed_scheduled)).
/// Either way, CSB state afterwards is bit-identical to running the
/// parts back to back.
///
/// Parts may disagree on element width: every fusible op has
/// [`PostProcess::None`], and SEW only parameterizes post-processing and
/// each part's already-lowered microops, so a mixed-SEW window is just a
/// concatenation of plans that were each compiled at their own width.
/// (The fused op carries the first part's width; nothing reads it.)
///
/// # Panics
///
/// Panics if `parts` is empty or if any part's post-process step is not
/// [`PostProcess::None`] (such ops are fusion barriers — their results
/// cross back to the scalar side and must execute unfused).
pub fn fuse_window(parts: &[&CompiledOp], reorder: bool) -> CompiledOp {
    let first = parts.first().expect("fusion window must be non-empty");
    let width = first.width();
    for p in parts {
        assert_eq!(
            p.post(),
            PostProcess::None,
            "ops with scalar post-processing are fusion barriers"
        );
    }
    let programs: Vec<&MicroProgram> = parts.iter().map(|p| p.program()).collect();
    let program = if reorder {
        MicroProgram::windowed_scheduled(&programs)
    } else {
        MicroProgram::windowed(&programs)
    };
    CompiledOp::from_parts(program, PostProcess::None, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequencer::Sequencer;
    use cape_csb::{Csb, CsbGeometry};

    fn ops() -> Vec<VectorOp> {
        vec![
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::Xor {
                vd: 4,
                vs1: 3,
                vs2: 1,
            },
            VectorOp::Sub {
                vd: 5,
                vs1: 4,
                vs2: 2,
            },
            VectorOp::AddScalar {
                vd: 6,
                vs1: 5,
                rs: 7,
            },
        ]
    }

    fn seeded() -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(2));
        csb.write_vector(1, &[10, 20, 30, 0xdead, 5]);
        csb.write_vector(2, &[1, 2, 3, 4, 5]);
        csb.set_active_window(1, 5);
        csb
    }

    #[test]
    fn fused_window_matches_back_to_back_execution() {
        let parts: Vec<CompiledOp> = ops().iter().map(|op| CompiledOp::compile(op, 32)).collect();

        let mut baseline = seeded();
        {
            let mut seq = Sequencer::new(&mut baseline);
            for p in &parts {
                seq.run_program(p);
            }
        }

        for reorder in [false, true] {
            let mut fused_csb = seeded();
            let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), reorder);
            {
                let mut seq = Sequencer::new(&mut fused_csb);
                let outcome = seq.run_program(&fused);
                assert_eq!(outcome.scalar, None);
            }
            assert_eq!(
                baseline.save_registers(),
                fused_csb.save_registers(),
                "reorder={reorder}"
            );
        }
    }

    #[test]
    fn mixed_sew_window_matches_back_to_back_execution() {
        // The same dependence chain compiled at alternating widths: a
        // genuinely mixed-SEW window, fused without a barrier.
        let widths = [8usize, 16, 8, 32];
        let parts: Vec<CompiledOp> = ops()
            .iter()
            .zip(widths)
            .map(|(op, w)| CompiledOp::compile(op, w))
            .collect();

        let mut baseline = seeded();
        {
            let mut seq = Sequencer::new(&mut baseline);
            for p in &parts {
                seq.run_program(p);
            }
        }

        for reorder in [false, true] {
            let mut fused_csb = seeded();
            let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), reorder);
            Sequencer::new(&mut fused_csb).run_program(&fused);
            assert_eq!(
                baseline.save_registers(),
                fused_csb.save_registers(),
                "reorder={reorder}"
            );
        }
    }

    #[test]
    fn dead_intermediate_shrinks_the_fused_plan() {
        // v3 is written by the add, never read, then fully overwritten by
        // the broadcast (full-window writes) — the add's stores are dead.
        let seq = [
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            VectorOp::Broadcast { vd: 3, rs: 0xab },
        ];
        let parts: Vec<CompiledOp> = seq.iter().map(|op| CompiledOp::compile(op, 32)).collect();
        let total: usize = parts.iter().map(|p| p.program().plan_len()).sum();
        let fused = fuse_window(&parts.iter().collect::<Vec<_>>(), false);
        assert!(
            fused.program().plan_len() < total,
            "cross-op dead-store elimination should shrink the fused plan ({} vs {total})",
            fused.program().plan_len()
        );
        assert!(fused.program().dead_stores() > 0, "the win is measurable");
        let scheduled = fuse_window(&parts.iter().collect::<Vec<_>>(), true);
        assert!(
            scheduled.program().dead_stores() >= fused.program().dead_stores(),
            "the v2 pipeline retires at least as much on real lowerings"
        );
        // The *op* list stays the unoptimized concatenation so recorded
        // stats (cycles, energy, golden replay) match per-op execution.
        assert_eq!(
            fused.program().len(),
            parts.iter().map(|p| p.program().len()).sum::<usize>()
        );

        let mut baseline = seeded();
        {
            let mut s = Sequencer::new(&mut baseline);
            for p in &parts {
                s.run_program(p);
            }
        }
        let mut fused_csb = seeded();
        Sequencer::new(&mut fused_csb).run_program(&fused);
        assert_eq!(baseline.save_registers(), fused_csb.save_registers());
    }

    #[test]
    fn fingerprint_distinguishes_sequences() {
        let a: Vec<(VectorOp, u32)> = ops().into_iter().map(|op| (op, 32)).collect();
        let mut b = a.clone();
        b.swap(0, 1);
        let mut c = a.clone();
        c[0].1 = 16;
        let truncated = a[..3].to_vec();

        let fa = window_fingerprint(&a);
        assert_eq!(fa, window_fingerprint(&a), "fingerprint must be stable");
        assert_ne!(fa, window_fingerprint(&b), "order matters");
        assert_ne!(fa, window_fingerprint(&c), "SEW matters");
        assert_ne!(fa, window_fingerprint(&truncated), "length matters");
    }

    #[test]
    #[should_panic(expected = "fusion barriers")]
    fn reduction_ops_refuse_to_fuse() {
        let add = CompiledOp::compile(
            &VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            32,
        );
        let red = CompiledOp::compile(&VectorOp::RedSum { vd: 4, vs: 3 }, 32);
        fuse_window(&[&add, &red], false);
    }
}

//! The global reduction tree used by `vredsum` (Sections IV-E, VI-C).
//!
//! Each chain has a local population counter over its tag bits; a pipelined
//! global adder tree sums the per-chain counts, shifts the accumulator left
//! by one, and adds — once per bit, from MSB to LSB (Fig. 6). The paper
//! synthesizes a 5-stage pipeline for 1,024 chains at a 217 ps critical
//! path; we scale the stage count with the chain count.

use serde::{Deserialize, Serialize};

/// Structural model of the pipelined global reduction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionTree {
    num_chains: usize,
    stages: u32,
}

impl ReductionTree {
    /// Builds the tree model for a CSB with `num_chains` chains.
    ///
    /// The stage count is calibrated so that 1,024 chains yield the paper's
    /// 5 pipeline stages, growing by one stage per 4x chains (each stage
    /// covers two adder levels of the binary tree).
    ///
    /// # Panics
    ///
    /// Panics if `num_chains` is zero.
    pub fn new(num_chains: usize) -> Self {
        assert!(num_chains > 0, "reduction tree needs at least one chain");
        let levels = usize::BITS - (num_chains - 1).leading_zeros(); // ceil(log2)
        let stages = levels.div_ceil(2).max(1);
        Self { num_chains, stages }
    }

    /// Number of pipeline stages (latency in cycles for one popcount wave
    /// to traverse the tree).
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Number of chains feeding the tree.
    pub fn num_chains(&self) -> usize {
        self.num_chains
    }

    /// Latency, in cycles, of a full `n`-bit reduction sum: the per-bit
    /// searches pipeline through the tree, so total latency is `n` issue
    /// cycles plus the tree drain.
    pub fn redsum_cycles(&self, n_bits: u32) -> u64 {
        u64::from(n_bits) + u64::from(self.stages)
    }

    /// Functionally reduces per-chain popcounts into a scalar: one step of
    /// the Fig. 6 algorithm (`acc = (acc << 1) + sum(counts)`).
    pub fn step(&self, acc: u64, per_chain_counts: &[u32]) -> u64 {
        assert_eq!(
            per_chain_counts.len(),
            self.num_chains,
            "popcount vector length must equal chain count"
        );
        (acc << 1) + per_chain_counts.iter().map(|&c| u64::from(c)).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_has_five_stages() {
        assert_eq!(ReductionTree::new(1024).stages(), 5);
    }

    #[test]
    fn cape131k_tree_is_one_stage_deeper() {
        assert_eq!(ReductionTree::new(4096).stages(), 6);
    }

    #[test]
    fn tiny_trees_have_at_least_one_stage() {
        assert_eq!(ReductionTree::new(1).stages(), 1);
        assert_eq!(ReductionTree::new(2).stages(), 1);
        assert_eq!(ReductionTree::new(4).stages(), 1);
        assert_eq!(ReductionTree::new(8).stages(), 2);
    }

    #[test]
    fn redsum_cycles_is_bits_plus_drain() {
        let t = ReductionTree::new(1024);
        assert_eq!(t.redsum_cycles(32), 37);
    }

    #[test]
    fn step_shifts_and_accumulates() {
        let t = ReductionTree::new(4);
        // MSB-first reduction of the 2-bit vector [1, 2, 3, 0]:
        // bit 1 set in elements {2, 3} -> counts sum 2; bit 0 in {1, 3} -> 2.
        let acc = t.step(0, &[0, 1, 1, 0]);
        let acc = t.step(acc, &[1, 0, 1, 0]);
        assert_eq!(acc, 2 * 2 + 2); // = 6 = 1 + 2 + 3 + 0
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn step_validates_count_vector_length() {
        ReductionTree::new(4).step(0, &[1, 2]);
    }
}

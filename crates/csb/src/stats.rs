//! Microoperation accounting, consumed by the timing/energy layer.

use serde::{Deserialize, Serialize};

/// Classification of a microop for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOpKind {
    /// A content search (including cross-subarray searches).
    Search,
    /// A bulk update without inter-subarray tag propagation.
    Update,
    /// A bulk update that propagates tags into the next subarray.
    UpdateWithPropagation,
    /// A single-row read.
    Read,
    /// A single-row write.
    Write,
    /// A tag population count fed to the reduction tree.
    Reduce,
    /// A tag-bus transfer between neighbouring subarrays.
    TagCombine,
}

/// Counters for every microop kind, split into bit-serial (1–2 active
/// subarrays) and bit-parallel (3+ active subarrays) flavours, mirroring
/// the BS/BP energy split of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOpStats {
    /// Bit-serial searches.
    pub searches_bs: u64,
    /// Bit-parallel searches.
    pub searches_bp: u64,
    /// Bit-serial updates without propagation.
    pub updates_bs: u64,
    /// Bit-parallel updates without propagation.
    pub updates_bp: u64,
    /// Updates with inter-subarray propagation (always bit-serial).
    pub updates_prop: u64,
    /// Single-row reads.
    pub reads: u64,
    /// Single-row writes.
    pub writes: u64,
    /// Reduction popcounts.
    pub reduces: u64,
    /// Tag-bus transfers between subarrays.
    pub tag_combines: u64,
}

impl MicroOpStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one microop of `kind`, with `bit_parallel` flavour.
    pub fn record(&mut self, kind: MicroOpKind, bit_parallel: bool) {
        match (kind, bit_parallel) {
            (MicroOpKind::Search, false) => self.searches_bs += 1,
            (MicroOpKind::Search, true) => self.searches_bp += 1,
            (MicroOpKind::Update, false) => self.updates_bs += 1,
            (MicroOpKind::Update, true) => self.updates_bp += 1,
            (MicroOpKind::UpdateWithPropagation, _) => self.updates_prop += 1,
            (MicroOpKind::Read, _) => self.reads += 1,
            (MicroOpKind::Write, _) => self.writes += 1,
            (MicroOpKind::Reduce, _) => self.reduces += 1,
            (MicroOpKind::TagCombine, _) => self.tag_combines += 1,
        }
    }

    /// Total searches (both flavours).
    pub fn searches(&self) -> u64 {
        self.searches_bs + self.searches_bp
    }

    /// Total updates (all flavours).
    pub fn updates(&self) -> u64 {
        self.updates_bs + self.updates_bp + self.updates_prop
    }

    /// Total microop count: the emulator's cycle-count proxy, since each
    /// microop takes one CSB cycle (Table II delays all fit in one cycle).
    pub fn total(&self) -> u64 {
        self.searches()
            + self.updates()
            + self.reads
            + self.writes
            + self.reduces
            + self.tag_combines
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &MicroOpStats) {
        self.searches_bs += other.searches_bs;
        self.searches_bp += other.searches_bp;
        self.updates_bs += other.updates_bs;
        self.updates_bp += other.updates_bp;
        self.updates_prop += other.updates_prop;
        self.reads += other.reads;
        self.writes += other.writes;
        self.reduces += other.reduces;
        self.tag_combines += other.tag_combines;
    }

    /// Difference since an earlier snapshot (`self - earlier`), useful for
    /// per-instruction accounting.
    pub fn since(&self, earlier: &MicroOpStats) -> MicroOpStats {
        MicroOpStats {
            searches_bs: self.searches_bs - earlier.searches_bs,
            searches_bp: self.searches_bp - earlier.searches_bp,
            updates_bs: self.updates_bs - earlier.updates_bs,
            updates_bp: self.updates_bp - earlier.updates_bp,
            updates_prop: self.updates_prop - earlier.updates_prop,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            reduces: self.reduces - earlier.reduces,
            tag_combines: self.tag_combines - earlier.tag_combines,
        }
    }
}

impl std::fmt::Display for MicroOpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "search(bs/bp)={}/{} update(bs/bp/prop)={}/{}/{} read={} write={} reduce={} tagc={} total={}",
            self.searches_bs,
            self.searches_bp,
            self.updates_bs,
            self.updates_bp,
            self.updates_prop,
            self.reads,
            self.writes,
            self.reduces,
            self.tag_combines,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = MicroOpStats::new();
        s.record(MicroOpKind::Search, false);
        s.record(MicroOpKind::Search, true);
        s.record(MicroOpKind::Update, false);
        s.record(MicroOpKind::UpdateWithPropagation, false);
        s.record(MicroOpKind::Read, false);
        s.record(MicroOpKind::Write, false);
        s.record(MicroOpKind::Reduce, false);
        assert_eq!(s.searches(), 2);
        assert_eq!(s.updates(), 2);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = MicroOpStats::new();
        a.record(MicroOpKind::Search, false);
        let snapshot = a;
        a.record(MicroOpKind::Update, true);
        a.record(MicroOpKind::Reduce, false);
        let delta = a.since(&snapshot);
        assert_eq!(delta.updates_bp, 1);
        assert_eq!(delta.reduces, 1);
        assert_eq!(delta.searches_bs, 0);
        let mut rebuilt = snapshot;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!MicroOpStats::new().to_string().is_empty());
    }
}

//! Deterministic fault injection and parity/golden-model detection.
//!
//! CAPE computes inside SRAM sense amplifiers, so the realistic failure
//! modes of a deployed engine are device faults: stuck-at bits in CSB
//! subarray rows, transient single-shot flips, and whole-block death.
//! This module injects those faults *deterministically* (seeded xorshift,
//! no wall clock) at the block layer and detects them with two of the
//! three tiers described in DESIGN.md §14–§15:
//!
//! 1. **Incremental per-row parity** — every row-slice of every armed
//!    block carries a parity word the *write path itself* maintains
//!    (the parity fold is fused into the block kernels; see
//!    DESIGN.md §15). Injectors bypass that path, creating a per-row
//!    fold/parity mismatch that legitimate writes provably preserve, and
//!    update a one-word per-block *syndrome* at the strike site — the
//!    O(1 cache line) in-array check a real substrate evaluates on the
//!    row it disturbs. Detection is therefore an O(touched blocks)
//!    dirty-event drain plus a one-word syndrome read, not a rescan of
//!    every block, and a nonzero syndrome localizes to the exact struck
//!    `(subarray, row)` coordinates.
//! 2. **Golden-model spot checks** — every `spot_check_interval`
//!    programs, one sampled chain is materialized as a scalar
//!    [`Chain`](crate::Chain) before the broadcast and replayed through
//!    the retained reference `Chain::execute` afterwards; a mismatch
//!    flags the chain's block. This tier catches *mid-broadcast*
//!    transients that strike after the pre-run parity scan.
//!
//! Explicit [`scrub`](crate::Csb::scrub) passes additionally run a
//! march-test leg that finds *latent* persistent defects (a stuck-at
//! forcing the value the cells already hold) which parity cannot see
//! until real data disturbs them — this is what makes the accounting
//! invariant (`FaultStats::fully_accounted`) hold at any scrub boundary.
//!
//! (The third tier, the slice-fuel watchdog, lives in `cape-cp`.)
//!
//! Detected blocks are latched as *pending* and stay pending until the
//! CSB quarantines them and remaps their chains onto spare blocks
//! ([`crate::Csb::quarantine_and_remap`]). Corruption can never be
//! silently re-absorbed without any verify-before-mutate plumbing: a
//! legitimate write moves a row's data fold and its parity word by the
//! same XOR delta, so the mismatch survives arbitrary overwrites until
//! the block is remapped (the spare rebuilds parity from the restored
//! data). If spares run out, the block stays flagged forever and the
//! machine reports itself degraded instead of computing wrong answers.
//!
//! The whole layer is `Option`-wrapped inside [`Csb`](crate::Csb):
//! disabled, the broadcast hot path pays exactly one `is_some()` branch
//! per *program* (not per microop) and the shards run the parity-free
//! kernel instantiation, so the PR 4 kernels keep full speed.

use crate::chain::Chain;
use crate::microop::MicroOp;
use crate::pool::Shard;

/// What kind of device fault a `FaultRecord` models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A cluster of cells in one subarray row wedged at 0 or 1; re-asserted
    /// on every broadcast tick until the block is quarantined.
    StuckAt {
        /// Lane within the block.
        lane: u8,
        /// Subarray of the wedged row.
        subarray: u8,
        /// Row within the subarray.
        row: u8,
        /// Column bits that are wedged.
        mask: u32,
        /// The wedged value (false = stuck-at-0, true = stuck-at-1).
        value: bool,
    },
    /// A single-shot bit flip (cosmic-ray style): applied once, either
    /// before the broadcast (caught by the pre-run parity scan) or after
    /// it (a mid-broadcast strike, caught by the golden-model spot check
    /// or the next parity scan).
    Transient {
        /// Lane within the block.
        lane: u8,
        /// Subarray of the struck row.
        subarray: u8,
        /// Row within the subarray.
        row: u8,
        /// Column bits flipped.
        mask: u32,
        /// True when the strike lands after the broadcast ran.
        late: bool,
    },
    /// Whole-block death: every row, tag and accumulator slice scrambles
    /// to seeded garbage on every tick until quarantined.
    DeadBlock,
}

/// Which detection tier latched a block as pending.
#[derive(Debug, Clone, Copy)]
enum DetectTier {
    Parity,
    Golden,
    Scrub,
}

/// One injected fault: where it lives and whether detection has
/// attributed it yet.
#[derive(Debug, Clone, Copy)]
struct FaultRecord {
    shard: u32,
    /// Physical block the fault lives in (device faults follow the
    /// silicon, not the logical chain mapping).
    phys: u32,
    kind: FaultKind,
    /// Set once a parity or golden detection flagged this block.
    detected: bool,
    /// Set once the block is quarantined; the defect stops asserting
    /// because nothing maps onto it any more.
    dormant: bool,
}

/// Configuration for deterministic fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the xorshift64 stream that drives every random choice.
    pub seed: u64,
    /// Spare blocks provisioned per shard at enable time — the remap
    /// budget before the machine degrades.
    pub spare_blocks_per_shard: usize,
    /// Per-tick probability (parts per million) of registering a new
    /// stuck-at fault.
    pub stuck_ppm: u32,
    /// Per-tick probability (ppm) of a transient single-shot flip.
    pub transient_ppm: u32,
    /// Per-tick probability (ppm) of whole-block death.
    pub dead_ppm: u32,
    /// Hard cap on total injected faults (bounds storm runtimes).
    pub max_faults: u32,
    /// Replay one sampled chain through the scalar golden model every
    /// this many programs (0 disables the tier).
    pub spot_check_interval: u64,
}

impl FaultConfig {
    /// A storm-friendly default: all three fault classes armed at a rate
    /// that exercises detection and remap without drowning the machine.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            spare_blocks_per_shard: 2,
            stuck_ppm: 2_000,
            transient_ppm: 4_000,
            dead_ppm: 500,
            max_faults: 32,
            spot_check_interval: 16,
        }
    }

    /// Injection disarmed but detection machinery (per-row parity,
    /// scrub, spares) live — for tests that inject by hand.
    pub fn quiescent(spares: usize) -> Self {
        Self {
            seed: 1,
            spare_blocks_per_shard: spares,
            stuck_ppm: 0,
            transient_ppm: 0,
            dead_ppm: 0,
            max_faults: 0,
            spot_check_interval: 0,
        }
    }
}

/// Running totals of everything the fault layer injected and caught.
///
/// Not `Copy`: `spare_remaps` carries per-spare wear counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stuck-at faults registered.
    pub injected_stuck: u64,
    /// Transient flips injected.
    pub injected_transient: u64,
    /// Dead-block faults registered.
    pub injected_dead: u64,
    /// Block-level parity mismatches latched.
    pub detected_parity: u64,
    /// Golden-model replay mismatches latched.
    pub detected_golden: u64,
    /// Latent persistent defects found by scrub's march-test pass (a
    /// stuck-at forcing the value the cell already held is invisible to
    /// parity until the data changes; a deliberate scrub writes test
    /// patterns and finds it anyway).
    pub detected_scrub: u64,
    /// Injected faults attributed to a detection event (the accounting
    /// check: eventually equals the injected total).
    pub faults_attributed: u64,
    /// Explicit scrub passes run.
    pub scrubs: u64,
    /// Physical blocks quarantined.
    pub blocks_quarantined: u64,
    /// Logical blocks successfully remapped onto spares.
    pub blocks_remapped: u64,
    /// Remaps absorbed by each spare slot, flattened shard-major
    /// (`shard * spare_blocks_per_shard + slot`) — the wear-leveling
    /// observability for the round-robin spare allocator.
    pub spare_remaps: Vec<u64>,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected_stuck + self.injected_transient + self.injected_dead
    }

    /// True when every injected fault has been attributed to a detection.
    pub fn fully_accounted(&self) -> bool {
        self.faults_attributed == self.injected_total()
    }

    /// Sums another counter set into this one.
    pub fn accumulate(&mut self, other: &FaultStats) {
        self.injected_stuck += other.injected_stuck;
        self.injected_transient += other.injected_transient;
        self.injected_dead += other.injected_dead;
        self.detected_parity += other.detected_parity;
        self.detected_golden += other.detected_golden;
        self.detected_scrub += other.detected_scrub;
        self.faults_attributed += other.faults_attributed;
        self.scrubs += other.scrubs;
        self.blocks_quarantined += other.blocks_quarantined;
        self.blocks_remapped += other.blocks_remapped;
        if self.spare_remaps.len() < other.spare_remaps.len() {
            self.spare_remaps.resize(other.spare_remaps.len(), 0);
        }
        for (a, b) in self.spare_remaps.iter_mut().zip(&other.spare_remaps) {
            *a += b;
        }
    }

    /// The counter deltas since an earlier capture of the same stream.
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            injected_stuck: self.injected_stuck - earlier.injected_stuck,
            injected_transient: self.injected_transient - earlier.injected_transient,
            injected_dead: self.injected_dead - earlier.injected_dead,
            detected_parity: self.detected_parity - earlier.detected_parity,
            detected_golden: self.detected_golden - earlier.detected_golden,
            detected_scrub: self.detected_scrub - earlier.detected_scrub,
            faults_attributed: self.faults_attributed - earlier.faults_attributed,
            scrubs: self.scrubs - earlier.scrubs,
            blocks_quarantined: self.blocks_quarantined - earlier.blocks_quarantined,
            blocks_remapped: self.blocks_remapped - earlier.blocks_remapped,
            spare_remaps: self
                .spare_remaps
                .iter()
                .enumerate()
                .map(|(i, &v)| v - earlier.spare_remaps.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }
}

/// One strike localized by the per-row parity: which `(subarray, row)`
/// of which logical block mismatched when the block was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StruckRow {
    /// Shard of the flagged block.
    pub shard: u32,
    /// Logical block index within the shard.
    pub block: u32,
    /// Subarray of the mismatching row.
    pub subarray: u8,
    /// Row within the subarray.
    pub row: u8,
}

/// What one scrub pass saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a scrub report carries pending-fault state the caller must act on"]
pub struct ScrubReport {
    /// Logical blocks scanned.
    pub scanned: usize,
    /// Blocks newly flagged by this pass.
    pub newly_flagged: usize,
    /// Total blocks pending quarantine after the pass.
    pub pending: usize,
}

/// What one quarantine-and-remap pass achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "ignoring a remap outcome hides spare exhaustion"]
pub struct RemapOutcome {
    /// Logical blocks remapped onto spares.
    pub remapped: usize,
    /// Blocks that could not be remapped because the owning shard is out
    /// of spares; they stay pending and the machine is degraded.
    pub failed: usize,
}

impl RemapOutcome {
    /// True when every flagged block found a spare.
    pub fn fully_recovered(&self) -> bool {
        self.failed == 0
    }
}

/// A captured pre-broadcast golden sample: one chain materialized as the
/// scalar reference model, to be replayed after the broadcast.
#[derive(Debug, Clone)]
struct GoldenSample {
    shard: usize,
    local: usize,
    chain: Chain,
    window: u32,
}

/// The seeded injector plus detection latches and counters. Lives as
/// `Option<Box<FaultLayer>>` inside the CSB. The parity state itself
/// lives *in the shards* (per-row words and per-block syndromes travel
/// with shard ownership transfer to worker threads); this layer only
/// keeps the flag latches and the accounting ledger.
#[derive(Debug, Clone)]
pub(crate) struct FaultLayer {
    config: FaultConfig,
    rng: u64,
    programs: u64,
    /// Blocks latched by a detection, pending quarantine. A flagged
    /// block's corruption persists (parity mismatch travels with the
    /// data) until it is successfully remapped.
    flagged: Vec<Vec<bool>>,
    pending: Vec<(usize, usize)>,
    faults: Vec<FaultRecord>,
    /// Transient strikes scheduled to land after the current broadcast.
    late_strikes: Vec<FaultRecord>,
    sample: Option<GoldenSample>,
    /// Row-granular localization of every flagged strike, in detection
    /// order (bounded by `max_faults` × rows-per-strike).
    struck: Vec<StruckRow>,
    stats: FaultStats,
}

impl FaultLayer {
    /// Builds the layer over the current (assumed fault-free) shard
    /// state, arming incremental parity on every shard — the one full
    /// parity-rebuild pass, paid once at enable time.
    pub fn new(config: FaultConfig, shards: &mut [Shard]) -> Self {
        let flagged = shards
            .iter_mut()
            .map(|s| {
                s.enable_parity();
                vec![false; s.nblocks_logical()]
            })
            .collect();
        Self {
            config,
            rng: config.seed | 1,
            programs: 0,
            flagged,
            pending: Vec::new(),
            faults: Vec::new(),
            late_strikes: Vec::new(),
            sample: None,
            struck: Vec::new(),
            stats: FaultStats {
                spare_remaps: vec![0; shards.len() * config.spare_blocks_per_shard],
                ..FaultStats::default()
            },
        }
    }

    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    pub fn pending_blocks(&self) -> usize {
        self.pending.len()
    }

    /// Row-granular strike localizations recorded at flag time.
    pub fn struck_rows(&self) -> &[StruckRow] {
        &self.struck
    }

    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn roll_ppm(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next() % 1_000_000 < u64::from(ppm)
    }

    /// A random (shard, logical block) target weighted by block count.
    fn pick_block(&mut self, shards: &[Shard]) -> Option<(usize, usize)> {
        let total: usize = shards.iter().map(|s| s.nblocks_logical()).sum();
        if total == 0 {
            return None;
        }
        let mut k = (self.next() % total as u64) as usize;
        for (s, shard) in shards.iter().enumerate() {
            let n = shard.nblocks_logical();
            if k < n {
                return Some((s, k));
            }
            k -= n;
        }
        None
    }

    /// Pre-broadcast hook: maybe register new faults, re-assert the
    /// persistent ones, drain the parity dirty set, and capture a golden
    /// sample for the post-broadcast replay. In the steady fault-free
    /// state the drain is empty, so this is O(registered faults) — not
    /// O(blocks).
    pub fn pre_broadcast(&mut self, shards: &mut [Shard]) {
        self.maybe_inject(shards);
        self.assert_persistent(shards);
        self.scan(shards);
        self.maybe_capture_sample(shards);
    }

    /// Post-broadcast hook: land late transient strikes, then replay the
    /// golden sample last so it can see a just-landed strike immediately
    /// (the strike's dirty event feeds the next scan regardless). No
    /// baseline refresh exists any more — the kernels maintained parity
    /// in place during the broadcast.
    pub fn post_broadcast(&mut self, shards: &mut [Shard], ops: &[MicroOp]) {
        self.programs += 1;
        self.land_late_strikes(shards);
        self.golden_replay(shards, ops);
    }

    /// Explicit scrub pass: re-assert persistent faults (the silicon
    /// doesn't wait for a broadcast), drain the parity dirty set, then
    /// march-test. Never injects new faults.
    ///
    /// The march-test leg models a scrub that writes and reads back test
    /// patterns: it finds *latent* persistent defects — a stuck-at
    /// forcing the value the cells already hold, or a dead block whose
    /// scramble happens to collide — that a pure parity compare cannot
    /// see until real data disturbs them. Transients are events, not
    /// defects: they either manifested (parity/golden catches them) or
    /// never happened, so the march pass skips them.
    pub fn scrub(&mut self, shards: &mut [Shard]) -> ScrubReport {
        self.stats.scrubs += 1;
        self.assert_persistent(shards);
        let before = self.pending.len();
        let scanned = self.scan(shards);
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            if f.dormant || f.detected || matches!(f.kind, FaultKind::Transient { .. }) {
                continue;
            }
            let s = f.shard as usize;
            let Some(lb) = shards[s].logical_of(f.phys as usize) else {
                continue;
            };
            if self.flagged[s][lb] {
                // Block already latched by an earlier tier; the march
                // test confirms this defect too.
                self.faults[i].detected = true;
                self.stats.faults_attributed += 1;
            } else {
                // Latent defect: no parity trace, so localize from the
                // march test's own knowledge of the wedged row.
                let rows = match f.kind {
                    FaultKind::StuckAt { subarray, row, .. } => vec![(subarray, row)],
                    _ => shards[s].struck_rows_phys(f.phys as usize),
                };
                self.flag(s, lb, f.phys as usize, DetectTier::Scrub, &rows);
            }
        }
        ScrubReport {
            scanned,
            newly_flagged: self.pending.len() - before,
            pending: self.pending.len(),
        }
    }

    /// Quarantines every pending block and remaps its chains onto a
    /// spare. Blocks whose shard is out of spares stay pending (degraded
    /// machine — their corruption must never be re-absorbed).
    pub fn quarantine_and_remap(&mut self, shards: &mut [Shard]) -> RemapOutcome {
        let mut outcome = RemapOutcome::default();
        let pending = std::mem::take(&mut self.pending);
        for (s, lb) in pending {
            let old_phys = shards[s].physical_of(lb);
            match shards[s].remap_logical(lb) {
                Some(new_phys) => {
                    // The defect stays with the quarantined silicon; the
                    // spare rebuilt its parity from the inherited copy
                    // inside `remap_logical`, so no baseline bookkeeping
                    // remains here — only the wear ledger.
                    for f in &mut self.faults {
                        if f.shard as usize == s && f.phys as usize == old_phys {
                            f.dormant = true;
                        }
                    }
                    self.flagged[s][lb] = false;
                    let slot = new_phys - shards[s].nblocks_logical();
                    // Field-service spares live past the original rack;
                    // the flat per-slot wear ledger only covers the
                    // as-built `spare_blocks_per_shard` slots per shard.
                    if slot < self.config.spare_blocks_per_shard {
                        let flat = s * self.config.spare_blocks_per_shard + slot;
                        if let Some(n) = self.stats.spare_remaps.get_mut(flat) {
                            *n += 1;
                        }
                    }
                    self.stats.blocks_quarantined += 1;
                    self.stats.blocks_remapped += 1;
                    outcome.remapped += 1;
                }
                None => {
                    self.pending.push((s, lb));
                    outcome.failed += 1;
                }
            }
        }
        outcome
    }

    /// Test hook: injects one specific fault record directly.
    pub fn inject_now(&mut self, shards: &mut [Shard], shard: usize, lb: usize, kind: FaultKind) {
        let phys = shards[shard].physical_of(lb);
        match kind {
            FaultKind::StuckAt { .. } => self.stats.injected_stuck += 1,
            // A late strike only counts as injected once it actually
            // lands (`land_late_strikes`) — one scheduled after the last
            // broadcast of a run never happens, and an event that never
            // happened must not show up in the accounting ledger.
            FaultKind::Transient { late, .. } if !late => self.stats.injected_transient += 1,
            FaultKind::Transient { .. } => {}
            FaultKind::DeadBlock => self.stats.injected_dead += 1,
        }
        let rec = FaultRecord {
            shard: shard as u32,
            phys: phys as u32,
            kind,
            detected: false,
            dormant: false,
        };
        match kind {
            FaultKind::Transient {
                lane,
                subarray,
                row,
                mask,
                late,
            } if !late => {
                shards[shard].flip_bits_logical(
                    lb,
                    lane as usize,
                    subarray as usize,
                    row as usize,
                    mask,
                );
                self.faults.push(rec);
            }
            FaultKind::Transient { .. } => self.late_strikes.push(rec),
            _ => self.faults.push(rec),
        }
    }

    /// Registered faults so far (live + dormant + scheduled).
    pub fn registered_faults(&self) -> usize {
        self.faults.len() + self.late_strikes.len()
    }

    fn maybe_inject(&mut self, shards: &mut [Shard]) {
        if self.registered_faults() >= self.config.max_faults as usize {
            return;
        }
        let classes = [
            (self.config.stuck_ppm, 0u8),
            (self.config.transient_ppm, 1u8),
            (self.config.dead_ppm, 2u8),
        ];
        for (ppm, class) in classes {
            if self.registered_faults() >= self.config.max_faults as usize {
                break;
            }
            if !self.roll_ppm(ppm) {
                continue;
            }
            let Some((s, lb)) = self.pick_block(shards) else {
                continue;
            };
            if self.flagged[s][lb] {
                continue; // already dying; aim the storm at live silicon
            }
            let lane = (self.next() % crate::block::BLOCK_LANES as u64) as u8;
            let subarray = (self.next() % crate::geometry::SUBARRAYS_PER_CHAIN as u64) as u8;
            let row = (self.next() % crate::subarray::TOTAL_ROWS as u64) as u8;
            let mask = (self.next() as u32) | 1;
            let kind = match class {
                0 => FaultKind::StuckAt {
                    lane,
                    subarray,
                    row,
                    mask,
                    value: self.next() & 1 == 1,
                },
                1 => FaultKind::Transient {
                    lane,
                    subarray,
                    row,
                    mask,
                    late: self.next() & 1 == 1,
                },
                _ => FaultKind::DeadBlock,
            };
            self.inject_now(shards, s, lb, kind);
        }
    }

    /// Re-asserts every live persistent fault (stuck-at force, dead-block
    /// scramble). Transients were applied at registration or wait in
    /// `late_strikes`.
    fn assert_persistent(&mut self, shards: &mut [Shard]) {
        // Split borrows: the scramble seed comes from the shared stream.
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            if f.dormant {
                continue;
            }
            let s = f.shard as usize;
            match f.kind {
                FaultKind::StuckAt {
                    lane,
                    subarray,
                    row,
                    mask,
                    value,
                } => {
                    if let Some(lb) = shards[s].logical_of(f.phys as usize) {
                        shards[s].force_bits_logical(
                            lb,
                            lane as usize,
                            subarray as usize,
                            row as usize,
                            mask,
                            value,
                        );
                    }
                }
                FaultKind::DeadBlock => {
                    let seed = self.next() as u32 | 1;
                    if let Some(lb) = shards[s].logical_of(f.phys as usize) {
                        shards[s].scramble_logical(lb, seed);
                    }
                }
                FaultKind::Transient { .. } => {}
            }
        }
    }

    /// Drains every shard's parity dirty set and checks the one-word
    /// syndrome of each touched block — O(blocks injectors disturbed
    /// since the last drain), empty in the fault-free steady state.
    /// A nonzero syndrome latches the block pending and localizes the
    /// strike to its mismatching rows. Returns the number of blocks
    /// examined.
    fn scan(&mut self, shards: &mut [Shard]) -> usize {
        let mut examined = 0;
        for (s, shard) in shards.iter_mut().enumerate() {
            for phys in shard.drain_parity_events() {
                examined += 1;
                let phys = phys as usize;
                if shard.syndrome_phys(phys) == 0 {
                    continue; // strike cancelled itself; nothing to see
                }
                // Quarantined/spare silicon carries no live data.
                let Some(lb) = shard.logical_of(phys) else {
                    continue;
                };
                if self.flagged[s][lb] {
                    continue; // already condemned; strike covered
                }
                let rows = shard.struck_rows_phys(phys);
                self.flag(s, lb, phys, DetectTier::Parity, &rows);
            }
        }
        examined
    }

    fn flag(&mut self, s: usize, lb: usize, phys: usize, tier: DetectTier, rows: &[(u8, u8)]) {
        self.flagged[s][lb] = true;
        self.pending.push((s, lb));
        for &(subarray, row) in rows {
            self.struck.push(StruckRow {
                shard: s as u32,
                block: lb as u32,
                subarray,
                row,
            });
        }
        match tier {
            DetectTier::Parity => self.stats.detected_parity += 1,
            DetectTier::Golden => self.stats.detected_golden += 1,
            DetectTier::Scrub => self.stats.detected_scrub += 1,
        }
        for f in &mut self.faults {
            if f.shard as usize == s && f.phys as usize == phys && !f.detected {
                f.detected = true;
                self.stats.faults_attributed += 1;
            }
        }
    }

    fn land_late_strikes(&mut self, shards: &mut [Shard]) {
        let strikes = std::mem::take(&mut self.late_strikes);
        for rec in strikes {
            let s = rec.shard as usize;
            if let FaultKind::Transient {
                lane,
                subarray,
                row,
                mask,
                ..
            } = rec.kind
            {
                if let Some(lb) = shards[s].logical_of(rec.phys as usize) {
                    shards[s].flip_bits_logical(
                        lb,
                        lane as usize,
                        subarray as usize,
                        row as usize,
                        mask,
                    );
                    // The strike happened: it enters the ledger now (see
                    // `inject_now` — scheduled-but-never-landed strikes
                    // are not injections). A strike aimed at silicon
                    // quarantined in the meantime hits nothing
                    // observable and is dropped.
                    self.stats.injected_transient += 1;
                    let mut rec = rec;
                    if self.flagged[s][lb] {
                        // The block is already latched as pending —
                        // its contents are condemned and will never be
                        // re-absorbed, so the existing detection covers
                        // this strike too. Without this, a strike on a
                        // flagged block (which scans skip) would stay
                        // unattributed forever.
                        rec.detected = true;
                        self.stats.faults_attributed += 1;
                    }
                    self.faults.push(rec);
                }
            }
        }
    }

    fn maybe_capture_sample(&mut self, shards: &[Shard]) {
        let interval = self.config.spot_check_interval;
        if interval == 0 || !self.programs.is_multiple_of(interval) {
            self.sample = None;
            return;
        }
        let total: usize = shards.iter().map(Shard::len).sum();
        if total == 0 {
            self.sample = None;
            return;
        }
        let mut k = (self.next() % total as u64) as usize;
        for (s, shard) in shards.iter().enumerate() {
            if k < shard.len() {
                self.sample = Some(GoldenSample {
                    shard: s,
                    local: k,
                    chain: shard.chain(k),
                    window: shard.window(k),
                });
                return;
            }
            k -= shard.len();
        }
    }

    /// Replays the captured sample through the scalar golden model and
    /// flags the chain's block on mismatch.
    fn golden_replay(&mut self, shards: &[Shard], ops: &[MicroOp]) {
        let Some(mut sample) = self.sample.take() else {
            return;
        };
        if sample.window != 0 {
            for op in ops {
                sample.chain.execute(op, sample.window);
            }
        }
        let shard = &shards[sample.shard];
        if shard.chain(sample.local) != sample.chain {
            let lb = sample.local / crate::block::BLOCK_LANES;
            if !self.flagged[sample.shard][lb] {
                let phys = shard.physical_of(lb);
                let rows = shard.struck_rows_phys(phys);
                self.flag(sample.shard, lb, phys, DetectTier::Golden, &rows);
            }
        }
    }
}

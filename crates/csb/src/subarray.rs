//! The 6T BCAM subarray: CAPE's basic storage/compute element.

use crate::geometry::SUBARRAY_COLS;

/// Number of data rows per subarray — one per RISC-V vector register
/// (`v0`..`v31`).
pub const DATA_ROWS: usize = 32;

/// Metadata row holding the running carry/borrow during bit-serial
/// arithmetic (initialized per instruction, Section II).
pub const ROW_CARRY: usize = 32;

/// Metadata row holding per-element flags (e.g. the "still undecided" flag
/// used by ordered comparisons such as `vmslt`).
pub const ROW_FLAG: usize = 33;

/// First general-purpose scratch metadata row.
pub const ROW_SCRATCH0: usize = 34;

/// Second general-purpose scratch metadata row.
pub const ROW_SCRATCH1: usize = 35;

/// Total rows per subarray: 32 data rows + 4 metadata rows, matching the
/// 32x36 array simulated in Section VI-A of the paper.
pub const TOTAL_ROWS: usize = 36;

/// A 32-column x 36-row array of push-rule 6T SRAM bitcells with split
/// wordlines (Jeloka et al.), able to read, write, **search** and
/// bulk-**update**.
///
/// Rows are stored as 32-bit words; bit `c` of a row word is the cell at
/// column `c`. A column is one vector lane.
///
/// The four microoperations map to hardware as follows (Fig. 3):
///
/// * *read/write* — conventional SRAM row access.
/// * *search* — wordlines reused as searchlines: per searched row, `WLR/WLL`
///   encode the key bit; AND-ing `BL` and `BLB` per column yields a
///   per-column match line. Searching several rows at once ANDs their
///   matches (all-row match). At most 4 rows participate per search.
/// * *update* — both wordlines asserted for the written row; the columns to
///   write are selected externally (by tag bits), so no address decoder or
///   priority encoder is involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subarray {
    rows: [u32; TOTAL_ROWS],
}

impl Default for Subarray {
    fn default() -> Self {
        Self::new()
    }
}

impl Subarray {
    /// Creates a zero-initialized subarray.
    pub fn new() -> Self {
        Self {
            rows: [0; TOTAL_ROWS],
        }
    }

    /// Returns the 32 column bits of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= TOTAL_ROWS`.
    pub fn row(&self, r: usize) -> u32 {
        self.rows[r]
    }

    /// Writes `data` into row `r` at the columns selected by `mask`
    /// (other columns keep their value).
    ///
    /// # Panics
    ///
    /// Panics if `r >= TOTAL_ROWS`.
    pub fn write_row(&mut self, r: usize, data: u32, mask: u32) {
        self.rows[r] = (self.rows[r] & !mask) | (data & mask);
    }

    /// Sets every selected column of row `r` to `value` — the hardware
    /// *update* primitive (column selection comes from tag bits).
    pub fn update_row(&mut self, r: usize, value: bool, cols: u32) {
        if value {
            self.rows[r] |= cols;
        } else {
            self.rows[r] &= !cols;
        }
    }

    /// Reads the bit at row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= TOTAL_ROWS` or `c >= 32`.
    pub fn bit(&self, r: usize, c: usize) -> bool {
        assert!(c < SUBARRAY_COLS, "column {c} out of range");
        (self.rows[r] >> c) & 1 == 1
    }

    /// Sets the bit at row `r`, column `c` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= TOTAL_ROWS` or `c >= 32`.
    pub fn set_bit(&mut self, r: usize, c: usize, value: bool) {
        assert!(c < SUBARRAY_COLS, "column {c} out of range");
        if value {
            self.rows[r] |= 1 << c;
        } else {
            self.rows[r] &= !(1 << c);
        }
    }

    /// Content search: returns the per-column match mask for `keys`, a set
    /// of `(row, expected_bit)` pairs. A column matches iff *every* listed
    /// row holds the expected bit in that column. Rows not listed are
    /// "don't care" (both wordlines grounded).
    ///
    /// An empty key set matches every column, mirroring a search with all
    /// rows masked out.
    ///
    /// # Panics
    ///
    /// Panics if more than 4 rows are searched (the hardware drives at most
    /// four searchline pairs, Table I discussion) or if a row is repeated
    /// with conflicting polarity.
    pub fn search(&self, keys: &[(usize, bool)]) -> u32 {
        assert!(
            keys.len() <= 4,
            "hardware searches at most 4 rows, got {}",
            keys.len()
        );
        let mut m = u32::MAX;
        for &(row, want) in keys {
            let r = self.rows[row];
            m &= if want { r } else { !r };
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_subarray_is_zero() {
        let s = Subarray::new();
        for r in 0..TOTAL_ROWS {
            assert_eq!(s.row(r), 0);
        }
    }

    #[test]
    fn write_row_respects_mask() {
        let mut s = Subarray::new();
        s.write_row(3, 0xFFFF_FFFF, 0x0000_00FF);
        assert_eq!(s.row(3), 0x0000_00FF);
        s.write_row(3, 0x0, 0x0000_000F);
        assert_eq!(s.row(3), 0x0000_00F0);
    }

    #[test]
    fn bit_accessors_roundtrip() {
        let mut s = Subarray::new();
        s.set_bit(5, 31, true);
        assert!(s.bit(5, 31));
        assert!(!s.bit(5, 30));
        s.set_bit(5, 31, false);
        assert!(!s.bit(5, 31));
    }

    #[test]
    fn search_single_row_for_one() {
        let mut s = Subarray::new();
        s.write_row(2, 0b1010, u32::MAX);
        assert_eq!(s.search(&[(2, true)]), 0b1010);
        assert_eq!(s.search(&[(2, false)]), !0b1010);
    }

    #[test]
    fn search_multi_row_ands_matches() {
        // Figure 3 of the paper: search "1 x 0" across three rows.
        let mut s = Subarray::new();
        s.write_row(0, 0b110, u32::MAX); // row 0 bits per column
        s.write_row(1, 0b011, u32::MAX);
        s.write_row(2, 0b001, u32::MAX);
        // Want row0 == 1 and row2 == 0 (row1 don't care).
        let m = s.search(&[(0, true), (2, false)]);
        // col0: row0=0 -> no. col1: row0=1, row2=0 -> yes. col2: row0=1,row2=0 -> yes.
        assert_eq!(m, 0b110);
    }

    #[test]
    fn empty_search_matches_all_columns() {
        let s = Subarray::new();
        assert_eq!(s.search(&[]), u32::MAX);
    }

    #[test]
    fn update_row_sets_and_clears_selected_columns() {
        let mut s = Subarray::new();
        s.update_row(7, true, 0b1100);
        assert_eq!(s.row(7), 0b1100);
        s.update_row(7, false, 0b0100);
        assert_eq!(s.row(7), 0b1000);
    }

    #[test]
    #[should_panic(expected = "at most 4 rows")]
    fn search_rejects_more_than_four_rows() {
        let s = Subarray::new();
        s.search(&[(0, true), (1, true), (2, true), (3, true), (4, true)]);
    }

    #[test]
    fn metadata_row_constants_are_distinct_and_in_range() {
        let rows = [ROW_CARRY, ROW_FLAG, ROW_SCRATCH0, ROW_SCRATCH1];
        for (i, &a) in rows.iter().enumerate() {
            assert!((DATA_ROWS..TOTAL_ROWS).contains(&a));
            for &b in &rows[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

//! Dependence-aware scheduling of fusion-window parts.
//!
//! A fusion window buffers several instructions' lowered plans. PR 9
//! concatenated them in issue order; the window compiler v2 treats the
//! window as a compilation unit instead: it summarizes each part's
//! architectural footprint — the subarray row cells it reads and writes,
//! the tag and accumulator registers it touches — builds the RAW/WAR/WAW
//! dependence graph over those resources, and list-schedules independent
//! parts so that writers of the same rows cluster together. Clustering
//! feeds the adjacency-sensitive peepholes (seam step fusion, adjacent
//! `TagCombine` dedup) and lets the liveness passes retire strictly more
//! dead work, while the dependence edges guarantee the scheduled plan is
//! observationally identical to issue order.
//!
//! Only the host broadcast plan is reordered. The microop *list* — and
//! with it recorded stats, modeled cycles/energy, and the golden fault
//! replay — stays in issue order, so scheduling is invisible to
//! everything but host wall-clock.

use crate::geometry::SUBARRAYS_PER_CHAIN;
use crate::microop::{TagDest, TagMode};
use crate::program::{PlanOp, PlanProbe, PlanWrite};
use crate::subarray::TOTAL_ROWS;

// One u64 of row bits per subarray is enough for every row.
const _: () = assert!(TOTAL_ROWS <= 64);

/// The architectural footprint of one window part's broadcast plan:
/// which subarray row cells, tag registers and accumulator registers it
/// reads and writes. Read-modify-write accesses (`And`/`Or` tag stores,
/// tag/acc-selected row writes) appear in both sets.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanAccess {
    rows_read: [u64; SUBARRAYS_PER_CHAIN],
    rows_written: [u64; SUBARRAYS_PER_CHAIN],
    tags_read: u32,
    tags_written: u32,
    acc_read: u32,
    acc_written: u32,
    /// Part produces cross-chain results (`ReduceTags`/`Read` sync
    /// points). Sync parts are chained pairwise so reduction sums keep
    /// their issue order.
    sync: bool,
}

impl PlanAccess {
    /// Summarizes a lowered plan.
    pub(crate) fn of(plan: &[PlanOp]) -> Self {
        let mut a = Self::default();
        for op in plan {
            match op {
                PlanOp::SearchOne { probe, dest, mode } => {
                    a.read_probe(probe);
                    a.store(*dest, *mode, probe.subarray);
                }
                PlanOp::Step {
                    probe,
                    dest,
                    mode,
                    nwrites,
                    writes,
                } => {
                    a.read_probe(probe);
                    a.store(*dest, *mode, probe.subarray);
                    for w in &writes[..*nwrites as usize] {
                        a.write(w);
                    }
                }
                PlanOp::Search {
                    probes,
                    gates,
                    dest,
                    mode,
                } => {
                    for p in probes.iter() {
                        a.read_probe(p);
                        a.store(*dest, *mode, p.subarray);
                    }
                    for g in gates.iter() {
                        a.read_probe(g);
                    }
                }
                PlanOp::UpdateOne { write } => a.write(write),
                PlanOp::UpdateTwo { writes } => {
                    for w in writes {
                        a.write(w);
                    }
                }
                PlanOp::Update { writes } => {
                    for w in writes.iter() {
                        a.write(w);
                    }
                }
                PlanOp::Read { subarray, row } => {
                    a.rows_read[*subarray as usize] |= 1 << row;
                    a.sync = true;
                }
                PlanOp::Write { subarray, row, .. } => {
                    a.rows_written[*subarray as usize] |= 1 << row;
                }
                PlanOp::ReduceTags { subarray } => {
                    a.tags_read |= 1 << subarray;
                    a.sync = true;
                }
                PlanOp::TagCombine { src, dst, op } => {
                    a.tags_read |= 1 << src;
                    a.tags_written |= 1 << dst;
                    if *op != TagMode::Set {
                        a.tags_read |= 1 << dst;
                    }
                }
            }
        }
        a
    }

    fn read_probe(&mut self, p: &PlanProbe) {
        for k in 0..p.nkeys as usize {
            self.rows_read[p.subarray as usize] |= 1 << p.rows[k];
        }
    }

    fn store(&mut self, dest: TagDest, mode: TagMode, sub: u8) {
        let bit = 1u32 << sub;
        let (written, read) = match dest {
            TagDest::Tags => (&mut self.tags_written, &mut self.tags_read),
            TagDest::Acc => (&mut self.acc_written, &mut self.acc_read),
        };
        *written |= bit;
        if mode != TagMode::Set {
            *read |= bit;
        }
    }

    fn write(&mut self, w: &PlanWrite) {
        self.rows_written[w.subarray as usize] |= 1 << w.row;
        match w.sel {
            1 => self.tags_read |= 1 << w.src,
            2 => self.acc_read |= 1 << w.src,
            _ => {}
        }
    }

    /// True when the two parts must keep their issue order: any RAW, WAR
    /// or WAW hazard on a row cell, tag register or accumulator — or two
    /// sync parts, whose cross-chain results must surface in issue order.
    fn conflicts(&self, other: &Self) -> bool {
        if self.sync && other.sync {
            return true;
        }
        for s in 0..SUBARRAYS_PER_CHAIN {
            if self.rows_written[s] & (other.rows_written[s] | other.rows_read[s]) != 0
                || self.rows_read[s] & other.rows_written[s] != 0
            {
                return true;
            }
        }
        self.tags_written & (other.tags_written | other.tags_read) != 0
            || self.tags_read & other.tags_written != 0
            || self.acc_written & (other.acc_written | other.acc_read) != 0
            || self.acc_read & other.acc_written != 0
    }

    /// Scheduling affinity: how many row cells / tag / acc registers both
    /// parts write. Clustering co-writers maximizes what the liveness
    /// passes can retire.
    fn write_affinity(&self, other: &Self) -> u32 {
        let mut n = 0u32;
        for s in 0..SUBARRAYS_PER_CHAIN {
            n += (self.rows_written[s] & other.rows_written[s]).count_ones();
        }
        n + (self.tags_written & other.tags_written).count_ones()
            + (self.acc_written & other.acc_written).count_ones()
    }
}

/// Dependence-preserving part order for a fusion window.
///
/// Builds the hazard graph over `access` (edge `i -> j` for `i < j` when
/// the parts conflict) and greedily list-schedules it: among ready parts,
/// pick the one with the highest write affinity to the previously
/// scheduled part, breaking ties toward the lowest original index. The
/// result is a permutation of `0..access.len()`, fully deterministic, and
/// the identity whenever every adjacent pair conflicts.
pub(crate) fn schedule(access: &[PlanAccess]) -> Vec<usize> {
    let n = access.len();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for i in 0..j {
            if access[i].conflicts(&access[j]) {
                succs[i].push(j);
                indeg[j] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut last: Option<usize> = None;
    while !ready.is_empty() {
        let pos = match last {
            None => ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &j)| j)
                .map(|(p, _)| p)
                .expect("ready is non-empty"),
            Some(l) => ready
                .iter()
                .enumerate()
                .max_by_key(|&(_, &j)| (access[l].write_affinity(&access[j]), std::cmp::Reverse(j)))
                .map(|(p, _)| p)
                .expect("ready is non-empty"),
        };
        let j = ready.swap_remove(pos);
        order.push(j);
        last = Some(j);
        for &s in &succs[j] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "hazard graph is acyclic by construction");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{MicroOp, Probe, WriteSpec};
    use crate::program::MicroProgram;

    fn upd(sub: usize, row: usize) -> MicroProgram {
        MicroProgram::new(vec![MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: sub,
                row,
                value: true,
                cols: crate::microop::ColSel::Window,
            }],
        }])
    }

    fn probe(sub: usize, row: usize) -> MicroProgram {
        MicroProgram::new(vec![MicroOp::Search {
            probes: vec![Probe::row(sub, row, true)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        }])
    }

    fn reduce(sub: usize) -> MicroProgram {
        MicroProgram::new(vec![MicroOp::ReduceTags { subarray: sub }])
    }

    fn accesses(parts: &[&MicroProgram]) -> Vec<PlanAccess> {
        parts.iter().map(|p| PlanAccess::of(p.plan())).collect()
    }

    #[test]
    fn hazard_chains_keep_issue_order() {
        // write (3,1) -> probe (3,1) -> rewrite (3,1): RAW then WAR.
        let parts = [upd(3, 1), probe(3, 1), upd(3, 1)];
        let refs: Vec<&MicroProgram> = parts.iter().collect();
        assert_eq!(schedule(&accesses(&refs)), vec![0, 1, 2]);
    }

    #[test]
    fn independent_co_writers_cluster() {
        // Writers of (3,1) sit at indices 0 and 2; the part between them
        // touches a disjoint cell, so scheduling pulls the co-writers
        // together.
        let parts = [upd(3, 1), upd(9, 2), upd(3, 1)];
        let refs: Vec<&MicroProgram> = parts.iter().collect();
        assert_eq!(schedule(&accesses(&refs)), vec![0, 2, 1]);
    }

    #[test]
    fn sync_parts_never_swap() {
        // Two reductions of unrelated subarrays still hold issue order:
        // their sums surface positionally.
        let parts = [reduce(4), upd(9, 2), reduce(7)];
        let refs: Vec<&MicroProgram> = parts.iter().collect();
        let order = schedule(&accesses(&refs));
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(2), "reduce order preserved in {order:?}");
    }

    #[test]
    fn tag_rmw_orders_against_tag_writers() {
        // Set into tags[5], then an And-combine reading+writing tags[5]:
        // RAW forces issue order even though no rows overlap.
        let a = MicroProgram::new(vec![MicroOp::Search {
            probes: vec![Probe::row(5, 0, true)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        }]);
        let b = MicroProgram::new(vec![MicroOp::TagCombine {
            src: 9,
            dst: 5,
            op: TagMode::And,
        }]);
        let refs: Vec<&MicroProgram> = vec![&a, &b];
        let acc = accesses(&refs);
        assert!(acc[0].conflicts(&acc[1]));
    }
}

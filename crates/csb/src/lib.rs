//! Bit-accurate functional model of CAPE's Compute-Storage Block (CSB).
//!
//! The CSB is the associative-computing engine of CAPE (Caminal et al.,
//! HPCA 2021). It is built from *subarrays* of push-rule 6T SRAM bitcells
//! with split wordlines, which behave as binary CAMs: in addition to the
//! conventional single-row [`read`](Subarray::row) and
//! [`write`](Subarray::write_row), a subarray can
//! [`search`](Subarray::search) a key against **all columns in parallel**
//! and bulk-update (see [`MicroOp::Update`]) every matching column.
//!
//! The hierarchy modeled here follows the paper exactly:
//!
//! * [`Subarray`] — 32 columns x 36 rows (32 data rows, one per RISC-V
//!   vector register, plus 4 metadata rows for carry/flags/scratch).
//! * [`Chain`] — 32 subarrays plus per-subarray *tag bits* and the
//!   inter-subarray tag-propagation bus. A 32-bit operand is *bit-sliced*:
//!   bit `i` of every element lives in subarray `i`; a column is a vector
//!   lane; the row index is the vector register name.
//! * [`Csb`] — thousands of chains (1,024 for CAPE32k, 4,096 for
//!   CAPE131k) plus the global reduction tree used by `vredsum`.
//!
//! This crate is purely *functional*: it executes [`MicroOp`]s and counts
//! them in [`MicroOpStats`]. Timing and energy are layered on top by
//! `cape-core` using the paper's Table I/II models.
//!
//! # Example
//!
//! ```
//! use cape_csb::{Csb, CsbGeometry};
//!
//! // A small CSB: 4 chains x 32 lanes = 128 vector lanes.
//! let mut csb = Csb::new(CsbGeometry::new(4));
//! csb.set_active_window(0, csb.max_vl());
//!
//! // Deposit a value into lane 5 of vector register v3 and read it back.
//! csb.write_element(3, 5, 0xDEAD_BEEF);
//! assert_eq!(csb.read_element(3, 5), 0xDEAD_BEEF);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmat;
mod block;
mod chain;
mod csb;
mod fault;
mod geometry;
mod microop;
mod pool;
mod program;
mod reduction;
mod schedule;
mod stats;
mod subarray;

pub use bitmat::transpose32;
pub use block::BLOCK_LANES;
pub use chain::{Chain, ChainState};
pub use csb::{Csb, CsbSnapshot};
pub use fault::{FaultConfig, FaultKind, FaultStats, RemapOutcome, ScrubReport, StruckRow};
pub use geometry::{CsbGeometry, ElementLocation, SUBARRAYS_PER_CHAIN, SUBARRAY_COLS};
pub use microop::{ColSel, MicroOp, Probe, TagDest, TagMode, WriteSpec};
pub use program::{MicroProgram, SyncKind, SyncPoint};
pub use reduction::ReductionTree;
pub use stats::{MicroOpKind, MicroOpStats};
pub use subarray::{
    Subarray, DATA_ROWS, ROW_CARRY, ROW_FLAG, ROW_SCRATCH0, ROW_SCRATCH1, TOTAL_ROWS,
};

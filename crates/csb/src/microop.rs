//! The four CSB microoperations (plus reduction), as broadcast commands.
//!
//! A [`MicroOp`] is the unit of work the Vector Control Unit distributes to
//! every chain over the 143-bit chain command bus (Fig. 7). All chains
//! execute the same microop in lockstep; per-chain behaviour differs only
//! through the active-window column mask and each chain's own stored data.
//!
//! Each subarray has **two** per-column match registers: the *tag bits*
//! and the *tag-bit accumulator* (both appear in the subarray periphery
//! list of Section VI-A, and the TTM carries an "accumulator enable" bit,
//! Section V-D). Having two registers lets an associative algorithm latch
//! two disjoint truth-table match groups before performing any update,
//! which avoids re-matching elements that an earlier update of the same
//! bit position already transformed.

use serde::{Deserialize, Serialize};

use crate::stats::MicroOpKind;

/// Which match register of a subarray a search latches into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagDest {
    /// The primary tag bits (also the input of the reduction popcount).
    Tags,
    /// The tag-bit accumulator.
    Acc,
}

/// How a search result combines with the destination register's current
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagMode {
    /// Replace with the new match mask.
    Set,
    /// AND the new match mask in (used e.g. by `vmseq` to combine per-bit
    /// equality across subarrays).
    And,
    /// OR the new match mask in (used to merge several truth-table search
    /// patterns before a single update).
    Or,
}

/// Which columns an update writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColSel {
    /// Every column inside the active window (an unconditional bulk write,
    /// e.g. clearing the carry row at the start of an instruction).
    Window,
    /// Columns whose *tag* bit is set in the given subarray. Selecting the
    /// tags of subarray `i` while writing subarray `i+1` is the
    /// inter-subarray propagation link of Fig. 5 (carry/borrow write).
    Tags(usize),
    /// Columns whose *accumulator* bit is set in the given subarray.
    Acc(usize),
}

impl ColSel {
    /// The subarray whose match register drives the column selection, if
    /// any.
    pub fn source_subarray(&self) -> Option<usize> {
        match self {
            ColSel::Window => None,
            ColSel::Tags(s) | ColSel::Acc(s) => Some(*s),
        }
    }
}

/// One subarray's contribution to a search: which rows to drive and with
/// which key bits. Rows not listed are "don't care".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Probe {
    /// Subarray index within the chain (`0..32`).
    pub subarray: usize,
    /// `(row, expected_bit)` pairs; at most 4 per subarray.
    pub keys: Vec<(usize, bool)>,
}

impl Probe {
    /// Convenience constructor.
    pub fn new(subarray: usize, keys: Vec<(usize, bool)>) -> Self {
        Self { subarray, keys }
    }

    /// A probe for a single row.
    pub fn row(subarray: usize, row: usize, want: bool) -> Self {
        Self::new(subarray, vec![(row, want)])
    }
}

/// One subarray-row write performed by an update microop.
///
/// The hardware writes at most one row per subarray per update, but may
/// write rows in *two* subarrays simultaneously (e.g. the destination bit
/// in subarray `i` and the carry in subarray `i+1`, Table I discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteSpec {
    /// Subarray index within the chain.
    pub subarray: usize,
    /// Row to write.
    pub row: usize,
    /// Bit value driven on the bitlines.
    pub value: bool,
    /// Column selection source.
    pub cols: ColSel,
}

/// A broadcast CSB command.
///
/// `Search`/`Update` pairs are the workhorses of associative computing;
/// `Read`/`Write` support element transfers and the memory-only modes;
/// `ReduceTags` feeds per-chain population counts into the global
/// reduction tree (Section IV-E); `TagCombine` moves match information
/// between neighbouring subarrays over the tag bus (used by the bit-serial
/// post-processing of `vmseq`, Table I discussion).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// Per-subarray searches, optionally gated by extra probes whose
    /// combined (ANDed) match is broadcast on the tag bus and ANDed into
    /// every probe's match (e.g. the multiplier bit `vs2[j]` during
    /// `vmul`, or the mask register during `vmerge`). Every probed
    /// subarray latches its own (gated) match into the selected register.
    Search {
        /// Per-subarray probes.
        probes: Vec<Probe>,
        /// Gate probes; their matches are ANDed into every probe's match.
        gates: Vec<Probe>,
        /// Destination match register.
        dest: TagDest,
        /// Accumulation mode.
        mode: TagMode,
    },
    /// Bulk update: write constant bits into at most one row per subarray,
    /// at columns chosen by each write's [`ColSel`].
    Update {
        /// Per-subarray row writes (at most one row per subarray).
        writes: Vec<WriteSpec>,
    },
    /// Single-row read of one subarray (returns the row's column bits).
    Read {
        /// Subarray index.
        subarray: usize,
        /// Row index.
        row: usize,
    },
    /// Single-row write with explicit per-column data.
    Write {
        /// Subarray index.
        subarray: usize,
        /// Row index.
        row: usize,
        /// Data bits, one per column.
        data: u32,
        /// Column write mask.
        mask: u32,
    },
    /// Population count of one subarray's tag bits (within the active
    /// window), to be summed by the global reduction tree.
    ReduceTags {
        /// Subarray whose tags are counted.
        subarray: usize,
    },
    /// Combine the tags of `src` into the tags of `dst` over the tag bus:
    /// `tags[dst] = tags[dst] <op> tags[src]`.
    TagCombine {
        /// Source subarray.
        src: usize,
        /// Destination subarray.
        dst: usize,
        /// Combination operator (`And` or `Or`; `Set` copies).
        op: TagMode,
    },
}

impl MicroOp {
    /// Number of distinct subarrays this op activates, used by the energy
    /// model to distinguish bit-serial (1–2 subarrays) from bit-parallel
    /// (many subarrays) flavours (Table II).
    pub fn active_subarrays(&self) -> usize {
        match self {
            MicroOp::Search { probes, gates, .. } => probes.len() + gates.len(),
            MicroOp::Update { writes } => writes.len(),
            MicroOp::Read { .. } | MicroOp::Write { .. } | MicroOp::ReduceTags { .. } => 1,
            MicroOp::TagCombine { .. } => 2,
        }
    }

    /// True when the op touches many subarrays — the paper's bit-parallel
    /// flavour. Bit-serial truth-table steps touch at most two subarrays
    /// plus up to two gate probes (`vmul`'s multiplier bit), so the
    /// threshold sits above four.
    pub fn is_bit_parallel(&self) -> bool {
        self.active_subarrays() > 4
    }

    /// The statistics bucket this op is charged to, plus its
    /// bit-parallel flavour — the one classification shared by the CSB's
    /// live ledger ([`Csb::execute`](crate::Csb::execute) recording) and
    /// the static mirror
    /// ([`MicroProgram::stats`](crate::MicroProgram::stats)). Keeping a
    /// single source of truth is what lets a fusion window charge an
    /// instruction's modeled time and energy at issue while deferring its
    /// broadcast: the deferred ledger is equal by construction.
    pub fn classify(&self) -> (MicroOpKind, bool) {
        let kind = match self {
            MicroOp::Search { .. } => MicroOpKind::Search,
            MicroOp::Update { .. } if self.propagates() => MicroOpKind::UpdateWithPropagation,
            MicroOp::Update { .. } => MicroOpKind::Update,
            MicroOp::Read { .. } => MicroOpKind::Read,
            MicroOp::Write { .. } => MicroOpKind::Write,
            MicroOp::ReduceTags { .. } => MicroOpKind::Reduce,
            MicroOp::TagCombine { .. } => MicroOpKind::TagCombine,
        };
        (kind, self.is_bit_parallel())
    }

    /// True for updates whose column selection crosses subarrays (carry or
    /// borrow propagation over the Fig. 5 link).
    pub fn propagates(&self) -> bool {
        match self {
            MicroOp::Update { writes } => writes
                .iter()
                .any(|w| w.cols.source_subarray().is_some_and(|s| s != w.subarray)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_subarray_counts() {
        let s = MicroOp::Search {
            probes: vec![Probe::row(0, 0, true), Probe::row(1, 1, false)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        };
        assert_eq!(s.active_subarrays(), 2);
        assert!(!s.is_bit_parallel());

        let gated = MicroOp::Search {
            probes: vec![Probe::row(4, 0, true)],
            gates: vec![Probe::row(2, 1, true)],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        };
        assert_eq!(gated.active_subarrays(), 2);

        let u = MicroOp::Update {
            writes: (0..32)
                .map(|i| WriteSpec {
                    subarray: i,
                    row: 0,
                    value: false,
                    cols: ColSel::Window,
                })
                .collect(),
        };
        assert_eq!(u.active_subarrays(), 32);
        assert!(u.is_bit_parallel());
    }

    #[test]
    fn propagation_detection() {
        let same = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 3,
                row: 0,
                value: true,
                cols: ColSel::Tags(3),
            }],
        };
        assert!(!same.propagates());
        let prop = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 4,
                row: 0,
                value: true,
                cols: ColSel::Tags(3),
            }],
        };
        assert!(prop.propagates());
        let window = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 4,
                row: 0,
                value: true,
                cols: ColSel::Window,
            }],
        };
        assert!(!window.propagates());
    }

    #[test]
    fn reads_and_writes_are_single_subarray() {
        assert_eq!(
            MicroOp::Read {
                subarray: 3,
                row: 1
            }
            .active_subarrays(),
            1
        );
        assert_eq!(
            MicroOp::Write {
                subarray: 3,
                row: 1,
                data: 0,
                mask: 0
            }
            .active_subarrays(),
            1
        );
        assert_eq!(MicroOp::ReduceTags { subarray: 0 }.active_subarrays(), 1);
        assert_eq!(
            MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::And
            }
            .active_subarrays(),
            2
        );
    }

    #[test]
    fn col_sel_source_subarray() {
        assert_eq!(ColSel::Window.source_subarray(), None);
        assert_eq!(ColSel::Tags(5).source_subarray(), Some(5));
        assert_eq!(ColSel::Acc(7).source_subarray(), Some(7));
    }
}

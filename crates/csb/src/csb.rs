//! The full Compute-Storage Block: chains + reduction tree + accounting.

use std::slice;
use std::sync::Arc;

use crate::block::BLOCK_LANES;
use crate::chain::{Chain, ChainState};
use crate::fault::{
    FaultConfig, FaultKind, FaultLayer, FaultStats, RemapOutcome, ScrubReport, StruckRow,
};
use crate::geometry::{CsbGeometry, ElementLocation, SUBARRAY_COLS};
use crate::microop::MicroOp;
use crate::pool::{Shard, WorkerPool};
use crate::program::{lower, MicroProgram};
use crate::reduction::ReductionTree;
use crate::stats::MicroOpStats;

/// A captured register-file image of a whole CSB: one [`ChainState`] per
/// chain, taken at a microprogram sync point.
///
/// The states are reference-counted, so cloning a snapshot (e.g. to keep
/// one resident image per tenant in a scheduler) is cheap, and restoring
/// does not copy the image into worker closures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsbSnapshot {
    chains: Arc<Vec<ChainState>>,
}

impl CsbSnapshot {
    /// The all-zero snapshot for `geometry` — what a freshly constructed
    /// CSB holds. Restoring it is a full register-file wipe, so a job
    /// started from it observes exactly the state of a fresh machine.
    pub fn zeroed(geometry: CsbGeometry) -> Self {
        Self {
            chains: Arc::new(vec![ChainState::zeroed(); geometry.num_chains()]),
        }
    }

    /// Number of per-chain states in the snapshot.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }
}

/// Minimum number of *active* chains before a broadcast fans out over the
/// worker pool; below this, channel transfers cost more than the work.
const POOL_MIN_ACTIVE: usize = 512;

/// The Compute-Storage Block: an array of chains executing broadcast
/// [`MicroOp`]s in lockstep, plus the global reduction tree.
///
/// The CSB also owns the *active window* (`vstart..vl`) that implements
/// RISC-V vector-length-agnostic semantics: columns mapped to elements
/// outside the window are masked out of every search and update, and tail
/// elements keep their values as the RVV specification requires
/// (Section V-F).
///
/// Chains are partitioned once, at construction, into contiguous *shards*
/// — one per worker thread — and packed inside each shard into
/// structure-of-arrays blocks of [`BLOCK_LANES`] chains (see the `block`
/// module), so every microop runs as a vectorized sweep over a block. A
/// broadcast of a whole [`MicroProgram`] ([`Csb::execute_program`]) moves
/// each shard to a persistent worker, runs every microop chain-locally,
/// and joins exactly once to harvest per-shard reduction sums; single
/// microops ([`Csb::execute`]) take the same path with a one-op program.
#[derive(Debug, Clone)]
pub struct Csb {
    geometry: CsbGeometry,
    shards: Vec<Shard>,
    /// Chains per shard (the last shard may be shorter). Always a
    /// multiple of [`BLOCK_LANES`] so a chain index maps to a
    /// (shard, block, lane) triple without crossing shard boundaries.
    shard_size: usize,
    /// Chains whose window mask is non-zero (fully-masked chains are
    /// power-gated and skipped, Section V-F).
    active_count: usize,
    tree: ReductionTree,
    vstart: usize,
    vl: usize,
    stats: MicroOpStats,
    /// Worker threads for the broadcast fan-out (queried once; it is a
    /// syscall).
    threads: usize,
    pool: WorkerPool,
    /// Seeded fault injection + parity/golden detection. `None` (the
    /// default) costs one branch per broadcast — the PR 4 kernels run at
    /// full speed with injection disabled.
    fault: Option<Box<FaultLayer>>,
}

impl Csb {
    /// Creates a zero-initialized CSB with the given geometry. The active
    /// window starts fully open (`vstart = 0`, `vl = MAX_VL`).
    pub fn new(geometry: CsbGeometry) -> Self {
        let n = geometry.num_chains();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(16);
        let shard_size = n
            .div_ceil(threads.min(n).max(1))
            .next_multiple_of(BLOCK_LANES);
        let shards = (0..n.div_ceil(shard_size))
            .map(|s| Shard::new(shard_size.min(n - s * shard_size)))
            .collect();
        let mut csb = Self {
            geometry,
            shards,
            shard_size,
            active_count: n,
            tree: ReductionTree::new(n),
            vstart: 0,
            vl: geometry.max_vl(),
            stats: MicroOpStats::new(),
            threads,
            pool: WorkerPool::new(),
            fault: None,
        };
        csb.recompute_windows();
        csb
    }

    /// The CSB geometry.
    pub fn geometry(&self) -> CsbGeometry {
        self.geometry
    }

    /// Maximum hardware vector length.
    pub fn max_vl(&self) -> usize {
        self.geometry.max_vl()
    }

    /// Current vector length.
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Current vector start index.
    pub fn vstart(&self) -> usize {
        self.vstart
    }

    /// The global reduction tree model.
    pub fn reduction_tree(&self) -> ReductionTree {
        self.tree
    }

    /// Reconfigures the active window. Chain controllers locally compute
    /// their column masks from the chain ID, `vstart` and `vl`
    /// (Section V-F); fully-masked chains would power-gate their
    /// peripherals.
    ///
    /// # Panics
    ///
    /// Panics if `vl > MAX_VL` or `vstart > vl`.
    pub fn set_active_window(&mut self, vstart: usize, vl: usize) {
        assert!(
            vl <= self.max_vl(),
            "vl {vl} exceeds MAX_VL {}",
            self.max_vl()
        );
        assert!(vstart <= vl, "vstart {vstart} exceeds vl {vl}");
        self.vstart = vstart;
        self.vl = vl;
        self.recompute_windows();
    }

    fn recompute_windows(&mut self) {
        self.active_count = 0;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            for j in 0..shard.len() {
                let w = self
                    .geometry
                    .window_mask(s * self.shard_size + j, self.vstart, self.vl);
                shard.set_window(j, w);
                if w != 0 {
                    self.active_count += 1;
                }
            }
        }
    }

    /// Number of chains whose window is fully masked (candidates for
    /// power gating).
    pub fn idle_chains(&self) -> usize {
        self.geometry.num_chains() - self.active_count
    }

    /// True when broadcasts fan out over the worker pool: enough *active*
    /// chains to amortize the channel transfers, regardless of how many
    /// tail chains the window masks off.
    fn use_pool(&self) -> bool {
        self.threads > 1 && self.active_count >= POOL_MIN_ACTIVE
    }

    /// Executes one broadcast microop on every active chain and records it
    /// in the statistics. Returns the summed reduction popcount for
    /// [`MicroOp::ReduceTags`], `None` otherwise (per-chain read data is
    /// accessible through [`Csb::chain_row`]).
    ///
    /// This is the per-microop path; whole instructions go through
    /// [`Csb::execute_program`], which pays the pool fan-out once per
    /// program instead of once per microop.
    pub fn execute(&mut self, op: &MicroOp) -> Option<u64> {
        self.record(op);
        if let Some(f) = self.fault.as_deref_mut() {
            f.pre_broadcast(&mut self.shards);
        }
        let plan_op = lower(op);
        if self.use_pool() {
            let ops = Arc::new(vec![plan_op]);
            self.pool.run(&mut self.shards, &ops);
        } else {
            for shard in &mut self.shards {
                shard.run(slice::from_ref(&plan_op));
            }
        }
        let sum = matches!(op, MicroOp::ReduceTags { .. }).then(|| {
            self.shards
                .iter()
                .map(|s| s.sums.first().copied().unwrap_or(0))
                .sum()
        });
        if let Some(f) = self.fault.as_deref_mut() {
            f.post_broadcast(&mut self.shards, slice::from_ref(op));
        }
        sum
    }

    /// Executes a whole compiled [`MicroProgram`] as one broadcast unit:
    /// every shard runs every microop locally (skipping its power-gated
    /// chains), and the single join harvests one summed popcount per
    /// [`MicroOp::ReduceTags`] sync point, returned in program order.
    ///
    /// Functionally identical to calling [`Csb::execute`] per microop and
    /// collecting the `Some` results — but the thread fan-out/fan-in and
    /// the reduction-tree sum happen once per program.
    pub fn execute_program(&mut self, program: &MicroProgram) -> Vec<u64> {
        for op in program.ops() {
            self.record(op);
        }
        if program.is_empty() {
            return Vec::new();
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.pre_broadcast(&mut self.shards);
        }
        if self.use_pool() {
            let ops = program.plan_arc();
            self.pool.run(&mut self.shards, &ops);
        } else {
            for shard in &mut self.shards {
                shard.run(program.plan());
            }
        }
        let mut sums = vec![0u64; program.reduce_count()];
        for shard in &self.shards {
            for (k, &s) in shard.sums.iter().enumerate() {
                sums[k] += s;
            }
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.post_broadcast(&mut self.shards, program.ops());
        }
        sums
    }

    fn record(&mut self, op: &MicroOp) {
        let (kind, bp) = op.classify();
        self.stats.record(kind, bp);
    }

    /// Accumulated microop statistics.
    pub fn stats(&self) -> MicroOpStats {
        self.stats
    }

    /// Resets the microop statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MicroOpStats::new();
    }

    /// Splits a global chain index into its owning shard and local index.
    #[inline]
    fn shard_of(&self, i: usize) -> (usize, usize) {
        (i / self.shard_size, i % self.shard_size)
    }

    /// Materializes chain `i` as a scalar [`Chain`] — the reference-model
    /// view of one lane of the block-SoA storage. This copies the chain
    /// state out of its block; use the targeted accessors
    /// ([`Csb::chain_tags`], [`Csb::chain_row`], …) in loops.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chain(&self, i: usize) -> Chain {
        let (s, j) = self.shard_of(i);
        self.shards[s].chain(j)
    }

    /// Tag bits of subarray `sub` of chain `i` (cheap single-word read).
    pub fn chain_tags(&self, i: usize, sub: usize) -> u32 {
        let (s, j) = self.shard_of(i);
        self.shards[s].tags(j, sub)
    }

    /// Accumulator bits of subarray `sub` of chain `i`.
    pub fn chain_acc(&self, i: usize, sub: usize) -> u32 {
        let (s, j) = self.shard_of(i);
        self.shards[s].acc(j, sub)
    }

    /// Row `row` of subarray `sub` of chain `i` (cheap single-word read).
    pub fn chain_row(&self, i: usize, sub: usize, row: usize) -> u32 {
        let (s, j) = self.shard_of(i);
        self.shards[s].row(j, sub, row)
    }

    /// Overwrites the tag bits of subarray `sub` of chain `i`
    /// (bring-up/test hook; real programs set tags through searches).
    pub fn set_chain_tags(&mut self, i: usize, sub: usize, v: u32) {
        let (s, j) = self.shard_of(i);
        self.shards[s].set_tags(j, sub, v);
    }

    /// Overwrites the accumulator bits of subarray `sub` of chain `i`
    /// (bring-up/test hook).
    pub fn set_chain_acc(&mut self, i: usize, sub: usize, v: u32) {
        let (s, j) = self.shard_of(i);
        self.shards[s].set_acc(j, sub, v);
    }

    /// Masked write into row `row` of subarray `sub` of chain `i`
    /// (bring-up/test hook; broadcast programs write rows through
    /// [`MicroOp::Write`]/[`MicroOp::Update`]).
    pub fn write_chain_row(&mut self, i: usize, sub: usize, row: usize, data: u32, mask: u32) {
        let (s, j) = self.shard_of(i);
        self.shards[s].write_row(j, sub, row, data, mask);
    }

    /// Location of vector element `elem`.
    pub fn locate(&self, elem: usize) -> ElementLocation {
        self.geometry.locate(elem)
    }

    /// Deposits `value` into element `elem` of vector register `reg`
    /// (functional data-transfer path; the VMU accounts for its timing).
    pub fn write_element(&mut self, reg: usize, elem: usize, value: u32) {
        let loc = self.geometry.locate(elem);
        let (s, j) = self.shard_of(loc.chain);
        self.shards[s].write_element(j, reg, loc.col, value);
    }

    /// Reads element `elem` of vector register `reg`.
    pub fn read_element(&self, reg: usize, elem: usize) -> u32 {
        let loc = self.geometry.locate(elem);
        let (s, j) = self.shard_of(loc.chain);
        self.shards[s].read_element(j, reg, loc.col)
    }

    /// Reads the first `len` elements of register `reg` into a vector —
    /// convenient for tests and result extraction.
    pub fn read_vector(&self, reg: usize, len: usize) -> Vec<u32> {
        self.read_vector_at(reg, 0, len)
    }

    /// Reads `len` elements of register `reg` starting at element `start`,
    /// as one bulk transfer: each chain holding in-range elements is read
    /// with a single 32-row block transpose and the values are scattered
    /// into element order.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > MAX_VL`.
    pub fn read_vector_at(&self, reg: usize, start: usize, len: usize) -> Vec<u32> {
        let end = start + len;
        assert!(
            end <= self.max_vl(),
            "element range {start}..{end} exceeds MAX_VL"
        );
        let n = self.geometry.num_chains();
        let mut out = vec![0u32; len];
        for c in 0..n {
            let (k_lo, k_hi) = Self::col_range(c, start, end, n);
            if k_lo >= k_hi {
                continue;
            }
            let (s, j) = self.shard_of(c);
            let vals = self.shards[s].read_column_block(j, reg);
            for (k, &v) in vals.iter().enumerate().take(k_hi).skip(k_lo) {
                out[k * n + c - start] = v;
            }
        }
        out
    }

    /// Writes `values` into register `reg`, starting at element 0.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > MAX_VL`.
    pub fn write_vector(&mut self, reg: usize, values: &[u32]) {
        self.write_vector_at(reg, 0, values);
    }

    /// Writes `values` into register `reg` starting at element `start`, as
    /// one bulk transfer: values are gathered per chain, bit-sliced with a
    /// single 32×32 transpose and written as masked row words, leaving
    /// elements outside the range untouched.
    ///
    /// # Panics
    ///
    /// Panics if `start + values.len() > MAX_VL`.
    pub fn write_vector_at(&mut self, reg: usize, start: usize, values: &[u32]) {
        let end = start + values.len();
        assert!(
            end <= self.max_vl(),
            "element range {start}..{end} exceeds MAX_VL"
        );
        let n = self.geometry.num_chains();
        for c in 0..n {
            let (k_lo, k_hi) = Self::col_range(c, start, end, n);
            if k_lo >= k_hi {
                continue;
            }
            let mut vals = [0u32; SUBARRAY_COLS];
            for (k, v) in vals.iter_mut().enumerate().take(k_hi).skip(k_lo) {
                *v = values[k * n + c - start];
            }
            let col_mask = Self::col_mask(k_lo, k_hi);
            let (s, j) = self.shard_of(c);
            self.shards[s].write_column_block(j, reg, &vals, col_mask);
        }
    }

    /// Columns `k_lo..k_hi` of chain `c` hold the elements of `start..end`
    /// that live in `c` (element `e` sits at chain `e % n`, column
    /// `e / n`).
    fn col_range(c: usize, start: usize, end: usize, n: usize) -> (usize, usize) {
        let k_lo = if start > c {
            (start - c).div_ceil(n)
        } else {
            0
        };
        let k_hi = if end > c { (end - c).div_ceil(n) } else { 0 };
        (k_lo, k_hi)
    }

    /// Bit mask with bits `k_lo..k_hi` set (`k_hi <= 32`).
    fn col_mask(k_lo: usize, k_hi: usize) -> u32 {
        let below = |k: usize| if k >= 32 { u32::MAX } else { (1u32 << k) - 1 };
        below(k_hi) & !below(k_lo)
    }

    /// Per-chain window mask for chain `i`.
    pub fn window(&self, i: usize) -> u32 {
        let (s, j) = self.shard_of(i);
        self.shards[s].window(j)
    }

    /// True when context save/restore fans out over the worker pool. The
    /// active window is irrelevant here — a context switch moves *every*
    /// chain's registers, including those of power-gated chains.
    fn use_pool_for_context(&self) -> bool {
        self.threads > 1 && self.geometry.num_chains() >= POOL_MIN_ACTIVE
    }

    /// Captures the full register-file image of every chain — vector
    /// registers through the bulk transposed path, plus metadata rows and
    /// match registers (see [`ChainState`]), unpacked lane by lane from
    /// the SoA blocks. Large CSBs fan the capture out over the broadcast
    /// worker pool, one task per shard.
    pub fn save_registers(&mut self) -> CsbSnapshot {
        let n = self.geometry.num_chains();
        let mut chains: Vec<ChainState> = Vec::with_capacity(n);
        if self.use_pool_for_context() {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<ChainState>)>();
            self.pool.apply(&mut self.shards, |s| {
                let tx = tx.clone();
                Box::new(move |shard: &mut Shard| {
                    let _ = tx.send((s, shard.save_states()));
                })
            });
            drop(tx);
            let mut per_shard: Vec<Vec<ChainState>> = vec![Vec::new(); self.shards.len()];
            for (s, states) in rx.iter() {
                per_shard[s] = states;
            }
            for states in per_shard {
                chains.extend(states);
            }
        } else {
            for shard in &self.shards {
                chains.extend(shard.save_states());
            }
        }
        CsbSnapshot {
            chains: Arc::new(chains),
        }
    }

    /// Restores every chain to a previously captured image — the inverse
    /// of [`Csb::save_registers`], packing each [`ChainState`] back into
    /// its block lane. Restoring [`CsbSnapshot::zeroed`] wipes the
    /// register file back to fresh-machine state.
    ///
    /// With the fault layer armed this costs *no* parity rescan: the
    /// unpack writes through the parity-maintaining paths, so per-row
    /// parity tracks the restored image exactly, and any strike that
    /// landed before the restore keeps its fold/parity mismatch through
    /// the overwrite (a write moves data and parity by the same delta).
    /// Multi-tenant slice switches therefore pay only the register copy.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken on a CSB of a different geometry.
    pub fn restore_registers(&mut self, snapshot: &CsbSnapshot) {
        let n = self.geometry.num_chains();
        assert_eq!(
            snapshot.num_chains(),
            n,
            "snapshot geometry does not match this CSB"
        );
        if self.use_pool_for_context() {
            let shard_size = self.shard_size;
            let states = Arc::clone(&snapshot.chains);
            self.pool.apply(&mut self.shards, |s| {
                let states = Arc::clone(&states);
                Box::new(move |shard: &mut Shard| {
                    let base = s * shard_size;
                    shard.load_states(&states[base..base + shard.len()]);
                })
            });
        } else {
            for (s, shard) in self.shards.iter_mut().enumerate() {
                let base = s * self.shard_size;
                shard.load_states(&snapshot.chains[base..base + shard.len()]);
            }
        }
    }

    // ---- fault injection, detection and recovery ----------------------

    /// Arms deterministic fault injection: provisions
    /// `config.spare_blocks_per_shard` spare blocks per shard and arms
    /// incremental per-row parity over the current (assumed clean) state
    /// — the one full parity-rebuild pass, paid here and never on the
    /// broadcast path. See the `fault` module docs for the detection
    /// tiers and recovery invariants.
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        for shard in &mut self.shards {
            shard.add_spares(config.spare_blocks_per_shard);
        }
        self.fault = Some(Box::new(FaultLayer::new(config, &mut self.shards)));
    }

    /// True when the fault layer is armed.
    pub fn fault_injection_enabled(&self) -> bool {
        self.fault.is_some()
    }

    /// Fault-layer counters (all zero while injection is disabled).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .as_deref()
            .map(FaultLayer::stats)
            .unwrap_or_default()
    }

    /// Blocks flagged by detection and not yet successfully remapped. A
    /// scheduler must not checkpoint or trust results while this is
    /// non-zero.
    pub fn pending_faults(&self) -> usize {
        self.fault.as_deref().map_or(0, FaultLayer::pending_blocks)
    }

    /// Runs one scrub pass: re-asserts persistent faults (the silicon
    /// does not wait for a broadcast) and parity-scans every unflagged
    /// block. Returns `None` while injection is disabled.
    pub fn scrub(&mut self) -> Option<ScrubReport> {
        let f = self.fault.as_deref_mut()?;
        Some(f.scrub(&mut self.shards))
    }

    /// Quarantines every flagged block and remaps its chains onto spare
    /// blocks. Register *contents* of a remapped block are a best-effort
    /// copy and may still be corrupt — restore a known-good
    /// [`CsbSnapshot`] afterwards to resume bit-exact execution.
    pub fn quarantine_and_remap(&mut self) -> RemapOutcome {
        match self.fault.as_deref_mut() {
            Some(f) => f.quarantine_and_remap(&mut self.shards),
            None => RemapOutcome::default(),
        }
    }

    /// Field service: provisions `per_shard` fresh spare blocks on every
    /// shard (modeling a hardware swap of the exhausted spare rack) and
    /// immediately retries quarantine-and-remap on every still-pending
    /// block. A machine that was degraded to "unremappable faults
    /// pending" comes back with `pending_faults() == 0` and a
    /// replenished inventory — the precondition a fleet's probation
    /// ladder checks before re-admitting it. No-op while the fault layer
    /// is disarmed.
    ///
    /// Like [`Csb::quarantine_and_remap`], remapped blocks inherit a
    /// best-effort (possibly corrupt) data copy: restore a known-good
    /// [`CsbSnapshot`] before trusting results again.
    pub fn service_spares(&mut self, per_shard: usize) -> RemapOutcome {
        if self.fault.is_none() {
            return RemapOutcome::default();
        }
        for shard in &mut self.shards {
            shard.add_spares(per_shard);
        }
        self.quarantine_and_remap()
    }

    /// Test hook: plants one specific fault on the block holding chain
    /// `i`. Injection must be enabled.
    ///
    /// # Panics
    ///
    /// Panics if the fault layer is not armed.
    pub fn inject_fault(&mut self, i: usize, kind: FaultKind) {
        let (s, j) = (i / self.shard_size, i % self.shard_size);
        let lb = j / BLOCK_LANES;
        let f = self
            .fault
            .as_deref_mut()
            .expect("enable_fault_injection first");
        f.inject_now(&mut self.shards, s, lb, kind);
    }

    /// Unused spare blocks remaining across all shards.
    pub fn spare_blocks_free(&self) -> usize {
        self.shards.iter().map(Shard::spares_free).sum()
    }

    /// Physical blocks quarantined so far across all shards.
    pub fn quarantined_blocks(&self) -> usize {
        self.shards.iter().map(Shard::quarantined_count).sum()
    }

    /// Row-granular localizations of every strike flagged so far: the
    /// exact `(shard, logical block, subarray, row)` coordinates whose
    /// parity mismatched at detection time. Empty while injection is
    /// disabled or nothing has been flagged.
    pub fn struck_rows(&self) -> Vec<StruckRow> {
        self.fault
            .as_deref()
            .map(|f| f.struck_rows().to_vec())
            .unwrap_or_default()
    }

    /// Test hook: true when every live (logical) block's incrementally
    /// maintained per-row parity equals a from-scratch recompute and all
    /// syndromes are zero. Vacuously true while the fault layer is off
    /// (the clean kernels do not maintain parity). Quarantined blocks
    /// keep their stale mismatch by design and are not consulted.
    pub fn parity_consistent(&self) -> bool {
        self.fault.is_none() || self.shards.iter().all(Shard::parity_consistent_logical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{ColSel, Probe, TagDest, TagMode, WriteSpec};

    fn small() -> Csb {
        Csb::new(CsbGeometry::new(4))
    }

    fn search1(subarray: usize, row: usize, want: bool) -> MicroOp {
        MicroOp::Search {
            probes: vec![Probe::row(subarray, row, want)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        }
    }

    #[test]
    fn vector_roundtrip_across_chains() {
        let mut csb = small();
        let data: Vec<u32> = (0..128).map(|i| i * 0x0101).collect();
        csb.write_vector(6, &data);
        assert_eq!(csb.read_vector(6, 128), data);
    }

    #[test]
    fn bulk_write_matches_per_element_path_at_offsets() {
        let mut bulk = small();
        let mut serial = small();
        let data: Vec<u32> = (0..50u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0xA5A5)
            .collect();
        bulk.write_vector_at(7, 13, &data);
        for (e, &v) in data.iter().enumerate() {
            serial.write_element(7, 13 + e, v);
        }
        for e in 0..128 {
            assert_eq!(
                bulk.read_element(7, e),
                serial.read_element(7, e),
                "element {e}"
            );
        }
        assert_eq!(bulk.read_vector_at(7, 13, 50), data);
    }

    #[test]
    fn offset_write_preserves_neighbouring_elements() {
        let mut csb = small();
        csb.write_vector(9, &[0x5151_5151; 128]);
        csb.write_vector_at(9, 40, &[7; 20]);
        let out = csb.read_vector(9, 128);
        assert!(out[..40].iter().all(|&v| v == 0x5151_5151));
        assert!(out[40..60].iter().all(|&v| v == 7));
        assert!(out[60..].iter().all(|&v| v == 0x5151_5151));
    }

    #[test]
    fn broadcast_search_reaches_every_chain() {
        let mut csb = small();
        // Element e of v1 = e; search bit 0 == 1 finds the odd elements.
        let data: Vec<u32> = (0..16).map(|i| i as u32).collect();
        csb.write_vector(1, &data);
        csb.set_active_window(0, 16);
        csb.execute(&search1(0, 1, true));
        let total = csb.execute(&MicroOp::ReduceTags { subarray: 0 }).unwrap();
        assert_eq!(total, 8); // 8 odd values in 0..16
    }

    #[test]
    fn active_window_masks_tail_elements() {
        let mut csb = small();
        let data: Vec<u32> = vec![1; 16];
        csb.write_vector(2, &data);
        csb.set_active_window(0, 5);
        csb.execute(&search1(0, 2, true));
        let total = csb.execute(&MicroOp::ReduceTags { subarray: 0 }).unwrap();
        assert_eq!(total, 5);
    }

    #[test]
    fn tail_elements_unchanged_by_update() {
        let mut csb = small();
        csb.write_vector(3, &[7u32; 8]);
        csb.set_active_window(0, 4);
        // Bulk-clear bit 0 of v3 inside the window.
        csb.execute(&MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 0,
                row: 3,
                value: false,
                cols: ColSel::Window,
            }],
        });
        let out = csb.read_vector(3, 8);
        assert_eq!(&out[..4], &[6, 6, 6, 6]);
        assert_eq!(&out[4..], &[7, 7, 7, 7]); // tail untouched
    }

    #[test]
    fn idle_chains_counts_fully_masked_chains() {
        let mut csb = small();
        // vl = 2 with 4 chains: chains 2 and 3 hold no active element.
        csb.set_active_window(0, 2);
        assert_eq!(csb.idle_chains(), 2);
        csb.set_active_window(0, csb.max_vl());
        assert_eq!(csb.idle_chains(), 0);
    }

    #[test]
    fn window_rewrites_take_effect_between_broadcasts() {
        // Regression test for active-list staleness: masking chains to
        // zero *between* ops must be honored by the very next broadcast.
        let mut csb = small();
        csb.write_vector(1, &[1u32; 128]);
        csb.set_active_window(0, 128);
        csb.execute(&search1(0, 0, true));
        let before: Vec<Chain> = (0..4).map(|c| csb.chain(c)).collect();

        // Shrink the window so chains 2 and 3 are fully gated, then run
        // an op that would visibly mutate them (unconditional row set).
        csb.set_active_window(0, 2);
        csb.execute(&MicroOp::Write {
            subarray: 0,
            row: 9,
            data: u32::MAX,
            mask: u32::MAX,
        });
        for (c, want) in before.iter().enumerate().skip(2) {
            assert_eq!(&csb.chain(c), want, "gated chain {c} must not change");
        }
        assert_ne!(csb.chain_row(0, 0, 9), 0, "active chain must be written");
    }

    #[test]
    fn stats_classify_ops() {
        let mut csb = small();
        csb.execute(&search1(0, 0, true));
        csb.execute(&MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 1,
                row: 0,
                value: true,
                cols: ColSel::Tags(0),
            }],
        });
        csb.execute(&MicroOp::ReduceTags { subarray: 0 });
        let s = csb.stats();
        assert_eq!(s.searches_bs, 1);
        assert_eq!(s.updates_prop, 1);
        assert_eq!(s.reduces, 1);
        assert_eq!(s.total(), 3);
        csb.reset_stats();
        assert_eq!(csb.stats().total(), 0);
    }

    #[test]
    fn execute_program_matches_per_op_path() {
        let ops = vec![
            search1(0, 1, true),
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::Update {
                writes: vec![WriteSpec {
                    subarray: 1,
                    row: 5,
                    value: true,
                    cols: ColSel::Tags(0),
                }],
            },
            MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 1 },
        ];
        let data: Vec<u32> = (0..128).map(|i| i as u32).collect();

        let mut by_program = small();
        let mut per_op = small();
        for csb in [&mut by_program, &mut per_op] {
            csb.write_vector(1, &data);
            csb.set_active_window(3, 77);
        }

        let program_sums = by_program.execute_program(&MicroProgram::new(ops.clone()));
        let per_op_sums: Vec<u64> = ops.iter().filter_map(|op| per_op.execute(op)).collect();

        assert_eq!(program_sums, per_op_sums);
        for c in 0..4 {
            assert_eq!(by_program.chain(c), per_op.chain(c), "chain {c}");
        }
        assert_eq!(by_program.stats(), per_op.stats());
    }

    #[test]
    fn empty_program_is_a_no_op() {
        let mut csb = small();
        assert_eq!(
            csb.execute_program(&MicroProgram::new(vec![])),
            Vec::<u64>::new()
        );
        assert_eq!(csb.stats().total(), 0);
    }

    #[test]
    fn large_partially_masked_csb_matches_functional_expectation() {
        // 1,024 chains with vl = 600: chains 600..1024 are fully masked,
        // leaving 600 active chains — above the pool threshold, so on
        // multi-core hosts this exercises the pooled partial-window path
        // (and the serial path elsewhere; results must be identical).
        let mut csb = Csb::new(CsbGeometry::new(1024));
        let data: Vec<u32> = (0..600).map(|e| e as u32).collect();
        csb.write_vector(1, &data);
        csb.set_active_window(0, 600);
        assert!(csb.idle_chains() > 0);

        let sums = csb.execute_program(&MicroProgram::new(vec![
            search1(0, 1, true),
            MicroOp::ReduceTags { subarray: 0 },
        ]));
        assert_eq!(sums, vec![300]); // odd values in 0..600

        // Per-microop path on the same machine state agrees.
        csb.execute(&search1(1, 1, true));
        let evens_with_bit1 = csb.execute(&MicroOp::ReduceTags { subarray: 1 }).unwrap();
        assert_eq!(evens_with_bit1, 300); // values in 0..600 with bit 1 set
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_VL")]
    fn window_beyond_max_vl_panics() {
        small().set_active_window(0, 129);
    }

    #[test]
    fn snapshot_roundtrip_restores_registers_metadata_and_tags() {
        let mut csb = small();
        let data: Vec<u32> = (0..128u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        csb.write_vector(5, &data);
        csb.set_chain_tags(1, 3, 0xF0F0_0F0F);
        csb.set_chain_acc(2, 7, 0x1234_5678);
        csb.write_chain_row(0, 4, crate::subarray::ROW_CARRY, 0xAAAA_5555, u32::MAX);

        let snap = csb.save_registers();

        // Trash everything, then restore.
        csb.write_vector(5, &vec![0xDEAD_BEEF; 128]);
        csb.set_chain_tags(1, 3, 0);
        csb.set_chain_acc(2, 7, 0);
        csb.write_chain_row(0, 4, crate::subarray::ROW_CARRY, 0, u32::MAX);
        csb.restore_registers(&snap);

        assert_eq!(csb.read_vector(5, 128), data);
        assert_eq!(csb.chain_tags(1, 3), 0xF0F0_0F0F);
        assert_eq!(csb.chain_acc(2, 7), 0x1234_5678);
        assert_eq!(csb.chain_row(0, 4, crate::subarray::ROW_CARRY), 0xAAAA_5555);
    }

    #[test]
    fn zeroed_snapshot_wipes_back_to_fresh_state() {
        let mut csb = small();
        csb.write_vector(9, &[7; 128]);
        csb.set_chain_tags(0, 0, u32::MAX);
        csb.restore_registers(&CsbSnapshot::zeroed(csb.geometry()));
        let fresh = small();
        for c in 0..4 {
            assert_eq!(csb.chain(c), fresh.chain(c), "chain {c}");
        }
    }

    #[test]
    fn pooled_snapshot_matches_serial_snapshot() {
        // 1,024 chains crosses the pool threshold on multi-core hosts.
        let mut csb = Csb::new(CsbGeometry::new(1024));
        let data: Vec<u32> = (0..4096).map(|e| e as u32 ^ 0x5A5A).collect();
        csb.write_vector(2, &data);
        csb.set_chain_tags(777, 11, 0xCAFE_F00D);

        let snap = csb.save_registers();
        csb.write_vector(2, &vec![0; 4096]);
        csb.set_chain_tags(777, 11, 0);
        csb.restore_registers(&snap);

        assert_eq!(csb.read_vector(2, 4096), data);
        assert_eq!(csb.chain_tags(777, 11), 0xCAFE_F00D);
        // A second capture of the restored state is identical.
        assert_eq!(csb.save_registers(), snap);
    }

    #[test]
    #[should_panic(expected = "geometry does not match")]
    fn restore_rejects_mismatched_geometry() {
        let snap = CsbSnapshot::zeroed(CsbGeometry::new(8));
        small().restore_registers(&snap);
    }

    // ---- fault injection, detection and recovery ----------------------

    fn armed(chains: usize, spares: usize) -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(chains));
        csb.enable_fault_injection(FaultConfig::quiescent(spares));
        csb
    }

    #[test]
    fn parity_scan_catches_transient_flip_before_next_broadcast() {
        let mut csb = armed(4, 1);
        csb.write_vector(1, &[3u32; 128]);
        assert_eq!(csb.pending_faults(), 0);
        csb.inject_fault(
            0,
            FaultKind::Transient {
                lane: 0,
                subarray: 2,
                row: 1,
                mask: 0x10,
                late: false,
            },
        );
        // The pre-broadcast scan of the next program latches the block.
        csb.execute(&search1(0, 1, true));
        assert_eq!(csb.pending_faults(), 1);
        let stats = csb.fault_stats();
        assert_eq!(stats.detected_parity, 1);
        assert!(stats.fully_accounted(), "{stats:?}");
    }

    #[test]
    fn scrub_detects_stuck_at_without_a_broadcast() {
        let mut csb = armed(4, 1);
        csb.write_vector(2, &[0u32; 128]); // rows all zero → stuck-at-1 flips
        csb.inject_fault(
            1,
            FaultKind::StuckAt {
                lane: 1,
                subarray: 5,
                row: 2,
                mask: 0xFF,
                value: true,
            },
        );
        let report = csb.scrub().unwrap();
        assert_eq!(report.newly_flagged, 1);
        assert_eq!(report.pending, 1);
        assert_eq!(csb.fault_stats().scrubs, 1);
    }

    #[test]
    fn save_inject_detect_remap_restore_is_bit_identical() {
        let mut csb = armed(4, 2);
        let data: Vec<u32> = (0..128u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        csb.write_vector(5, &data);
        csb.set_active_window(0, 128);
        let snap = csb.save_registers();
        let clean = csb.read_vector(5, 128);

        // Kill the whole block under chain 0, detect via scrub, remap
        // onto a spare, then restore the checkpoint.
        csb.inject_fault(0, FaultKind::DeadBlock);
        let report = csb.scrub().unwrap();
        assert_eq!(report.pending, 1);
        let outcome = csb.quarantine_and_remap();
        assert!(outcome.fully_recovered());
        assert_eq!(csb.quarantined_blocks(), 1);
        csb.restore_registers(&snap);

        assert_eq!(csb.read_vector(5, 128), clean);
        assert_eq!(csb.pending_faults(), 0);
        // And the machine still computes correctly on the spare.
        csb.execute(&search1(0, 0, true));
        let stats = csb.fault_stats();
        assert_eq!(stats.blocks_remapped, 1);
        assert!(stats.fully_accounted());
    }

    #[test]
    fn out_of_spares_keeps_block_flagged_forever() {
        let mut csb = armed(4, 0);
        csb.inject_fault(
            0,
            FaultKind::Transient {
                lane: 3,
                subarray: 0,
                row: 0,
                mask: 1,
                late: false,
            },
        );
        let _ = csb.scrub().unwrap();
        let outcome = csb.quarantine_and_remap();
        assert_eq!(outcome.failed, 1);
        assert!(!outcome.fully_recovered());
        // The corruption is never silently re-absorbed: the block stays
        // pending across scrubs and broadcasts.
        csb.execute(&search1(0, 0, true));
        assert_eq!(csb.pending_faults(), 1);
    }

    #[test]
    fn golden_spot_check_catches_late_strike() {
        let mut csb = Csb::new(CsbGeometry::new(4));
        let mut config = FaultConfig::quiescent(1);
        config.spot_check_interval = 1; // sample every program
        csb.enable_fault_injection(config);
        csb.write_vector(1, &[1u32; 128]);
        csb.set_active_window(0, 128);
        // Late transients land *after* the broadcast runs — only the
        // golden replay (or the next scan's dirty-event drain) can see
        // them. Strike every lane so whichever chain the seeded sampler
        // picked is guaranteed to be corrupted.
        for chain in 0..4 {
            csb.inject_fault(
                chain,
                FaultKind::Transient {
                    lane: chain as u8,
                    subarray: 1,
                    row: 1,
                    mask: 0xF0F0,
                    late: true,
                },
            );
        }
        csb.execute(&search1(0, 1, true));
        let stats = csb.fault_stats();
        assert_eq!(stats.detected_golden, 1, "{stats:?}");
        assert!(stats.fully_accounted(), "{stats:?}");
    }

    #[test]
    fn remap_preserves_power_gating_and_padding_invariants() {
        // 20 chains: shard of two blocks, the second partially padded.
        let mut csb = armed(20, 2);
        csb.set_active_window(0, 20 * 32);
        let gated_before = csb.window(19);
        csb.inject_fault(17, FaultKind::DeadBlock);
        let _ = csb.scrub().unwrap();
        let outcome = csb.quarantine_and_remap();
        assert!(outcome.fully_recovered());
        // Window masks survive the remap bit-for-bit (including padding
        // lanes staying gated), and broadcasts still work.
        assert_eq!(csb.window(19), gated_before);
        let snap = CsbSnapshot::zeroed(csb.geometry());
        csb.restore_registers(&snap);
        csb.write_vector(1, &(0..640).map(|i| i as u32).collect::<Vec<_>>());
        csb.execute(&search1(0, 1, true));
        let total = csb.execute(&MicroOp::ReduceTags { subarray: 0 }).unwrap();
        assert_eq!(total, 320); // odd values in 0..640
    }

    #[test]
    fn disabled_fault_layer_reports_zeroes() {
        let mut csb = small();
        assert!(!csb.fault_injection_enabled());
        assert_eq!(csb.fault_stats(), FaultStats::default());
        assert_eq!(csb.pending_faults(), 0);
        assert!(csb.scrub().is_none());
        let outcome = csb.quarantine_and_remap();
        assert_eq!(outcome, RemapOutcome::default());
    }
}

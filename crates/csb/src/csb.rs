//! The full Compute-Storage Block: chains + reduction tree + accounting.

use crate::chain::Chain;
use crate::geometry::{CsbGeometry, ElementLocation};
use crate::microop::MicroOp;
use crate::reduction::ReductionTree;
use crate::stats::{MicroOpKind, MicroOpStats};

/// The Compute-Storage Block: an array of [`Chain`]s executing broadcast
/// [`MicroOp`]s in lockstep, plus the global reduction tree.
///
/// The CSB also owns the *active window* (`vstart..vl`) that implements
/// RISC-V vector-length-agnostic semantics: columns mapped to elements
/// outside the window are masked out of every search and update, and tail
/// elements keep their values as the RVV specification requires
/// (Section V-F).
#[derive(Debug, Clone)]
pub struct Csb {
    geometry: CsbGeometry,
    chains: Vec<Chain>,
    windows: Vec<u32>,
    /// Chains whose window mask is non-zero (fully-masked chains are
    /// power-gated and skipped, Section V-F).
    active: Vec<usize>,
    tree: ReductionTree,
    vstart: usize,
    vl: usize,
    stats: MicroOpStats,
    /// Worker threads for the broadcast fan-out (queried once; it is a
    /// syscall).
    threads: usize,
}

impl Csb {
    /// Creates a zero-initialized CSB with the given geometry. The active
    /// window starts fully open (`vstart = 0`, `vl = MAX_VL`).
    pub fn new(geometry: CsbGeometry) -> Self {
        let n = geometry.num_chains();
        let mut csb = Self {
            geometry,
            chains: vec![Chain::new(); n],
            windows: vec![u32::MAX; n],
            active: (0..n).collect(),
            tree: ReductionTree::new(n),
            vstart: 0,
            vl: geometry.max_vl(),
            stats: MicroOpStats::new(),
            threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(16),
        };
        csb.recompute_windows();
        csb
    }

    /// The CSB geometry.
    pub fn geometry(&self) -> CsbGeometry {
        self.geometry
    }

    /// Maximum hardware vector length.
    pub fn max_vl(&self) -> usize {
        self.geometry.max_vl()
    }

    /// Current vector length.
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Current vector start index.
    pub fn vstart(&self) -> usize {
        self.vstart
    }

    /// The global reduction tree model.
    pub fn reduction_tree(&self) -> ReductionTree {
        self.tree
    }

    /// Reconfigures the active window. Chain controllers locally compute
    /// their column masks from the chain ID, `vstart` and `vl`
    /// (Section V-F); fully-masked chains would power-gate their
    /// peripherals.
    ///
    /// # Panics
    ///
    /// Panics if `vl > MAX_VL` or `vstart > vl`.
    pub fn set_active_window(&mut self, vstart: usize, vl: usize) {
        assert!(vl <= self.max_vl(), "vl {vl} exceeds MAX_VL {}", self.max_vl());
        assert!(vstart <= vl, "vstart {vstart} exceeds vl {vl}");
        self.vstart = vstart;
        self.vl = vl;
        self.recompute_windows();
    }

    fn recompute_windows(&mut self) {
        self.active.clear();
        for c in 0..self.geometry.num_chains() {
            self.windows[c] = self.geometry.window_mask(c, self.vstart, self.vl);
            if self.windows[c] != 0 {
                self.active.push(c);
            }
        }
    }

    /// Number of chains whose window is fully masked (candidates for
    /// power gating).
    pub fn idle_chains(&self) -> usize {
        self.windows.iter().filter(|&&w| w == 0).count()
    }

    /// Executes one broadcast microop on every chain and records it in the
    /// statistics. Returns the summed reduction popcount for
    /// [`MicroOp::ReduceTags`], `None` otherwise (per-chain read data is
    /// accessible through [`Csb::chain`]).
    ///
    /// Large CSBs (>= 512 chains) fan the lockstep broadcast out over a
    /// thread pool — chains are fully independent, exactly as in the
    /// hardware.
    pub fn execute(&mut self, op: &MicroOp) -> Option<u64> {
        self.record(op);
        let is_reduce = matches!(op, MicroOp::ReduceTags { .. });
        let threads = self.threads;
        // Fully-masked chains are power-gated: their searches set no tags
        // and their updates write nothing, and every consumer of their
        // state masks by the (zero) window — skip them entirely.
        if self.active.len() == self.geometry.num_chains() && threads > 1 && self.active.len() >= 512
        {
            // Lockstep broadcast over a thread pool; chains are fully
            // independent, exactly as in the hardware.
            let n = self.chains.len();
            let chunk = n.div_ceil(threads);
            let windows = &self.windows;
            let mut sums = vec![0u64; n.div_ceil(chunk)];
            crossbeam::thread::scope(|s| {
                for ((chains, wins), sum) in self
                    .chains
                    .chunks_mut(chunk)
                    .zip(windows.chunks(chunk))
                    .zip(sums.iter_mut())
                {
                    s.spawn(move |_| {
                        for (chain, window) in chains.iter_mut().zip(wins) {
                            if let Some(r) = chain.execute(op, *window) {
                                *sum += u64::from(r);
                            }
                        }
                    });
                }
            })
            .expect("chain worker panicked");
            return is_reduce.then(|| sums.iter().sum());
        }
        let mut reduce_sum = is_reduce.then_some(0u64);
        for &c in &self.active {
            let r = self.chains[c].execute(op, self.windows[c]);
            if let (Some(sum), Some(r)) = (reduce_sum.as_mut(), r) {
                *sum += u64::from(r);
            }
        }
        reduce_sum
    }

    fn record(&mut self, op: &MicroOp) {
        let bp = op.is_bit_parallel();
        let kind = match op {
            MicroOp::Search { .. } => MicroOpKind::Search,
            MicroOp::Update { .. } if op.propagates() => MicroOpKind::UpdateWithPropagation,
            MicroOp::Update { .. } => MicroOpKind::Update,
            MicroOp::Read { .. } => MicroOpKind::Read,
            MicroOp::Write { .. } => MicroOpKind::Write,
            MicroOp::ReduceTags { .. } => MicroOpKind::Reduce,
            MicroOp::TagCombine { .. } => MicroOpKind::TagCombine,
        };
        self.stats.record(kind, bp);
    }

    /// Accumulated microop statistics.
    pub fn stats(&self) -> MicroOpStats {
        self.stats
    }

    /// Resets the microop statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MicroOpStats::new();
    }

    /// Immutable access to chain `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chain(&self, i: usize) -> &Chain {
        &self.chains[i]
    }

    /// Mutable access to chain `i` (bring-up/test hook).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chain_mut(&mut self, i: usize) -> &mut Chain {
        &mut self.chains[i]
    }

    /// Location of vector element `elem`.
    pub fn locate(&self, elem: usize) -> ElementLocation {
        self.geometry.locate(elem)
    }

    /// Deposits `value` into element `elem` of vector register `reg`
    /// (functional data-transfer path; the VMU accounts for its timing).
    pub fn write_element(&mut self, reg: usize, elem: usize, value: u32) {
        let loc = self.geometry.locate(elem);
        self.chains[loc.chain].write_element(reg, loc.col, value);
    }

    /// Reads element `elem` of vector register `reg`.
    pub fn read_element(&self, reg: usize, elem: usize) -> u32 {
        let loc = self.geometry.locate(elem);
        self.chains[loc.chain].read_element(reg, loc.col)
    }

    /// Reads the first `len` elements of register `reg` into a vector —
    /// convenient for tests and result extraction.
    pub fn read_vector(&self, reg: usize, len: usize) -> Vec<u32> {
        (0..len).map(|e| self.read_element(reg, e)).collect()
    }

    /// Writes `values` into register `reg`, starting at element 0.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > MAX_VL`.
    pub fn write_vector(&mut self, reg: usize, values: &[u32]) {
        for (e, &v) in values.iter().enumerate() {
            self.write_element(reg, e, v);
        }
    }

    /// Per-chain window mask for chain `i`.
    pub fn window(&self, i: usize) -> u32 {
        self.windows[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{ColSel, Probe, TagDest, TagMode, WriteSpec};

    fn small() -> Csb {
        Csb::new(CsbGeometry::new(4))
    }

    fn search1(subarray: usize, row: usize, want: bool) -> MicroOp {
        MicroOp::Search {
            probes: vec![Probe::row(subarray, row, want)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        }
    }

    #[test]
    fn vector_roundtrip_across_chains() {
        let mut csb = small();
        let data: Vec<u32> = (0..128).map(|i| i * 0x0101).collect();
        csb.write_vector(6, &data);
        assert_eq!(csb.read_vector(6, 128), data);
    }

    #[test]
    fn broadcast_search_reaches_every_chain() {
        let mut csb = small();
        // Element e of v1 = e; search bit 0 == 1 finds the odd elements.
        let data: Vec<u32> = (0..16).map(|i| i as u32).collect();
        csb.write_vector(1, &data);
        csb.set_active_window(0, 16);
        csb.execute(&search1(0, 1, true));
        let total = csb.execute(&MicroOp::ReduceTags { subarray: 0 }).unwrap();
        assert_eq!(total, 8); // 8 odd values in 0..16
    }

    #[test]
    fn active_window_masks_tail_elements() {
        let mut csb = small();
        let data: Vec<u32> = vec![1; 16];
        csb.write_vector(2, &data);
        csb.set_active_window(0, 5);
        csb.execute(&search1(0, 2, true));
        let total = csb.execute(&MicroOp::ReduceTags { subarray: 0 }).unwrap();
        assert_eq!(total, 5);
    }

    #[test]
    fn tail_elements_unchanged_by_update() {
        let mut csb = small();
        csb.write_vector(3, &vec![7u32; 8]);
        csb.set_active_window(0, 4);
        // Bulk-clear bit 0 of v3 inside the window.
        csb.execute(&MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 0,
                row: 3,
                value: false,
                cols: ColSel::Window,
            }],
        });
        let out = csb.read_vector(3, 8);
        assert_eq!(&out[..4], &[6, 6, 6, 6]);
        assert_eq!(&out[4..], &[7, 7, 7, 7]); // tail untouched
    }

    #[test]
    fn idle_chains_counts_fully_masked_chains() {
        let mut csb = small();
        // vl = 2 with 4 chains: chains 2 and 3 hold no active element.
        csb.set_active_window(0, 2);
        assert_eq!(csb.idle_chains(), 2);
        csb.set_active_window(0, csb.max_vl());
        assert_eq!(csb.idle_chains(), 0);
    }

    #[test]
    fn stats_classify_ops() {
        let mut csb = small();
        csb.execute(&search1(0, 0, true));
        csb.execute(&MicroOp::Update {
            writes: vec![WriteSpec { subarray: 1, row: 0, value: true, cols: ColSel::Tags(0) }],
        });
        csb.execute(&MicroOp::ReduceTags { subarray: 0 });
        let s = csb.stats();
        assert_eq!(s.searches_bs, 1);
        assert_eq!(s.updates_prop, 1);
        assert_eq!(s.reduces, 1);
        assert_eq!(s.total(), 3);
        csb.reset_stats();
        assert_eq!(csb.stats().total(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_VL")]
    fn window_beyond_max_vl_panics() {
        small().set_active_window(0, 129);
    }
}

//! Physical geometry of the CSB and the element-to-chain mapping.

use serde::{Deserialize, Serialize};

/// Number of columns (= vector lanes) per subarray, and therefore per chain.
pub const SUBARRAY_COLS: usize = 32;

/// Number of subarrays per chain. Subarray `i` stores bit `i` of every
/// 32-bit operand (bit-slicing, Section IV-B of the paper).
pub const SUBARRAYS_PER_CHAIN: usize = 32;

/// Where a vector element lives inside the CSB.
///
/// Adjacent elements are interleaved across chains (like bytes across the
/// chips of a DRAM DIMM, Section V-E) so that one memory sub-request can be
/// consumed by many chains in a single cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ElementLocation {
    /// Index of the chain holding the element.
    pub chain: usize,
    /// Column (lane) within that chain.
    pub col: usize,
}

/// Size and shape of a [`Csb`](crate::Csb).
///
/// The paper's two evaluated configurations are
/// [`CsbGeometry::cape32k`] (1,024 chains = 32,768 lanes) and
/// [`CsbGeometry::cape131k`] (4,096 chains = 131,072 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CsbGeometry {
    num_chains: usize,
}

impl CsbGeometry {
    /// Creates a geometry with `num_chains` chains.
    ///
    /// # Panics
    ///
    /// Panics if `num_chains` is zero.
    pub fn new(num_chains: usize) -> Self {
        assert!(num_chains > 0, "a CSB needs at least one chain");
        Self { num_chains }
    }

    /// The CAPE32k configuration: 1,024 chains, 32,768 lanes.
    pub fn cape32k() -> Self {
        Self::new(1024)
    }

    /// The CAPE131k configuration: 4,096 chains, 131,072 lanes.
    pub fn cape131k() -> Self {
        Self::new(4096)
    }

    /// Number of chains in the CSB.
    pub fn num_chains(&self) -> usize {
        self.num_chains
    }

    /// Maximum hardware vector length (`MAX_VL`): total number of lanes.
    pub fn max_vl(&self) -> usize {
        self.num_chains * SUBARRAY_COLS
    }

    /// Maps a vector element index to its chain and column.
    ///
    /// Elements are interleaved: element `e` lives in chain `e % C`,
    /// column `e / C` where `C` is the chain count.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= max_vl()`.
    pub fn locate(&self, elem: usize) -> ElementLocation {
        assert!(
            elem < self.max_vl(),
            "element {elem} out of range for {} lanes",
            self.max_vl()
        );
        ElementLocation {
            chain: elem % self.num_chains,
            col: elem / self.num_chains,
        }
    }

    /// Inverse of [`locate`](Self::locate).
    pub fn element_at(&self, loc: ElementLocation) -> usize {
        loc.col * self.num_chains + loc.chain
    }

    /// Column activity mask for one chain given an active window
    /// `[vstart, vl)` over element indices.
    ///
    /// Bit `k` of the result is set iff column `k` of `chain` maps to an
    /// element inside the window. Used to implement RISC-V's `vstart`/`vl`
    /// semantics (Section V-F).
    pub fn window_mask(&self, chain: usize, vstart: usize, vl: usize) -> u32 {
        let mut mask = 0u32;
        for k in 0..SUBARRAY_COLS {
            let e = k * self.num_chains + chain;
            if e >= vstart && e < vl {
                mask |= 1 << k;
            }
        }
        mask
    }

    /// Total storage capacity of the CSB in bytes
    /// (32 registers x 4 bytes x lanes).
    pub fn capacity_bytes(&self) -> usize {
        self.max_vl() * crate::subarray::DATA_ROWS * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_interleaves_across_chains() {
        let g = CsbGeometry::new(4);
        assert_eq!(g.locate(0), ElementLocation { chain: 0, col: 0 });
        assert_eq!(g.locate(1), ElementLocation { chain: 1, col: 0 });
        assert_eq!(g.locate(4), ElementLocation { chain: 0, col: 1 });
        assert_eq!(g.locate(7), ElementLocation { chain: 3, col: 1 });
    }

    #[test]
    fn locate_roundtrips() {
        let g = CsbGeometry::new(7);
        for e in 0..g.max_vl() {
            assert_eq!(g.element_at(g.locate(e)), e);
        }
    }

    #[test]
    fn cape_presets_have_paper_lane_counts() {
        assert_eq!(CsbGeometry::cape32k().max_vl(), 32_768);
        assert_eq!(CsbGeometry::cape131k().max_vl(), 131_072);
    }

    #[test]
    fn window_mask_full_window_is_all_ones() {
        let g = CsbGeometry::new(4);
        for c in 0..4 {
            assert_eq!(g.window_mask(c, 0, g.max_vl()), u32::MAX);
        }
    }

    #[test]
    fn window_mask_partial() {
        let g = CsbGeometry::new(4);
        // vl = 6: elements 0..6 active. Chain 0 holds elems 0 (col 0) and 4
        // (col 1); chain 1 holds 1 (col 0) and 5 (col 1); chain 2 holds 2
        // and 6 -- 6 is excluded; chain 3 holds 3 and 7 -- 7 excluded.
        assert_eq!(g.window_mask(0, 0, 6), 0b11);
        assert_eq!(g.window_mask(1, 0, 6), 0b11);
        assert_eq!(g.window_mask(2, 0, 6), 0b01);
        assert_eq!(g.window_mask(3, 0, 6), 0b01);
    }

    #[test]
    fn window_mask_vstart_skips_leading_elements() {
        let g = CsbGeometry::new(2);
        // vstart = 3, vl = 5: elements 3, 4 active.
        // chain 0: elems 0,2,4,.. -> col 2 (elem 4) active.
        // chain 1: elems 1,3,5,.. -> col 1 (elem 3) active.
        assert_eq!(g.window_mask(0, 3, 5), 0b100);
        assert_eq!(g.window_mask(1, 3, 5), 0b010);
    }

    #[test]
    fn capacity_of_cape32k_is_4mib() {
        assert_eq!(CsbGeometry::cape32k().capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        CsbGeometry::new(2).locate(64);
    }
}

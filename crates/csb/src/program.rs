//! Microop *programs*: the program-granularity unit of broadcast.
//!
//! A [`MicroProgram`] is the compiled form of one vector instruction — a
//! fixed microop sequence plus its *sync points*. A sync point is a
//! microop whose result leaves the chains ([`MicroOp::ReduceTags`] feeds
//! the global reduction tree, [`MicroOp::Read`] returns row data); every
//! other microop is chain-local, so a worker owning a subset of chains
//! can run the whole program without talking to anyone and surrender its
//! partial reduction sums at a single join. This is what lets
//! [`Csb::execute_program`](crate::Csb::execute_program) pay one
//! fan-out/fan-in per *instruction* instead of one per *microop*.

use std::sync::Arc;

use crate::geometry::SUBARRAYS_PER_CHAIN;
use crate::microop::{MicroOp, Probe, TagDest, TagMode, WriteSpec};
use crate::stats::MicroOpStats;
use crate::subarray::TOTAL_ROWS;

/// The kind of value a sync point produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// A [`MicroOp::ReduceTags`] op: per-chain popcounts summed by the
    /// reduction tree into one scalar.
    Reduce,
    /// A [`MicroOp::Read`] op: per-chain row data (chain-local; consumers
    /// read chain state after the program completes).
    Read,
}

/// One result-producing microop inside a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPoint {
    /// Index of the microop within the program.
    pub op_index: usize,
    /// What the op produces.
    pub kind: SyncKind,
}

/// A search probe lowered for the broadcast hot loop: key rows live in a
/// fixed inline array (no nested heap to chase per chain) and key polarity
/// is an XOR mask (`0` to match ones, `!0` to match zeros), so the match
/// loop is branchless: `m &= row ^ inv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanProbe {
    pub subarray: u8,
    pub nkeys: u8,
    pub rows: [u8; 4],
    pub inv: [u32; 4],
}

/// A row write lowered to four bytes: `sel` picks the column source
/// (0 = window, 1 = `tags[src]`, 2 = `acc[src]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanWrite {
    pub subarray: u8,
    pub row: u8,
    pub sel: u8,
    pub src: u8,
    pub value: bool,
}

/// A microop lowered into the dense, pre-validated form the broadcast
/// executor runs. Structural checks (probe key counts, one row per
/// subarray per update, index ranges) happen once here, at compile time,
/// instead of once per chain per op in the fan-out. The dominant
/// bit-serial shapes — a single ungated probe, an update of one or two
/// rows — get inline variants so the hot loop touches no per-op heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PlanOp {
    /// One ungated probe (most bit-serial truth-table searches).
    SearchOne {
        probe: PlanProbe,
        dest: TagDest,
        mode: TagMode,
    },
    /// A fused truth-table step: one ungated search immediately followed
    /// by a one- or two-row update (`nwrites` ∈ {1, 2}) — the paper's TTM
    /// search-phase/update-phase pair issued as a single command. Produced
    /// by the peephole pass in [`MicroProgram::new`]; executing it is
    /// exactly the search followed by the update.
    Step {
        probe: PlanProbe,
        dest: TagDest,
        mode: TagMode,
        nwrites: u8,
        writes: [PlanWrite; 2],
    },
    /// General search: several probes and/or gate probes.
    Search {
        probes: Box<[PlanProbe]>,
        gates: Box<[PlanProbe]>,
        dest: TagDest,
        mode: TagMode,
    },
    /// Single-row update (e.g. a carry write).
    UpdateOne {
        write: PlanWrite,
    },
    /// Two-row update (e.g. result bit + carry propagation).
    UpdateTwo {
        writes: [PlanWrite; 2],
    },
    /// General update (bit-parallel clears/copies touching many subarrays).
    Update {
        writes: Box<[PlanWrite]>,
    },
    Read {
        subarray: u8,
        row: u8,
    },
    Write {
        subarray: u8,
        row: u8,
        data: u32,
        mask: u32,
    },
    ReduceTags {
        subarray: u8,
    },
    TagCombine {
        src: u8,
        dst: u8,
        op: TagMode,
    },
}

fn lower_probe(p: &Probe) -> PlanProbe {
    assert!(
        p.keys.len() <= 4,
        "hardware searches at most 4 rows, got {}",
        p.keys.len()
    );
    assert!(
        p.subarray < SUBARRAYS_PER_CHAIN,
        "subarray {} out of range",
        p.subarray
    );
    let mut rows = [0u8; 4];
    let mut inv = [0u32; 4];
    for (k, &(row, want)) in p.keys.iter().enumerate() {
        assert!(row < TOTAL_ROWS, "row {row} out of range");
        rows[k] = row as u8;
        inv[k] = if want { 0 } else { u32::MAX };
    }
    PlanProbe {
        subarray: p.subarray as u8,
        nkeys: p.keys.len() as u8,
        rows,
        inv,
    }
}

fn lower_write(w: &WriteSpec) -> PlanWrite {
    assert!(
        w.subarray < SUBARRAYS_PER_CHAIN,
        "subarray {} out of range",
        w.subarray
    );
    assert!(w.row < TOTAL_ROWS, "row {} out of range", w.row);
    let (sel, src) = match w.cols {
        crate::microop::ColSel::Window => (0u8, 0usize),
        crate::microop::ColSel::Tags(s) => (1, s),
        crate::microop::ColSel::Acc(s) => (2, s),
    };
    assert!(src < SUBARRAYS_PER_CHAIN, "subarray {src} out of range");
    PlanWrite {
        subarray: w.subarray as u8,
        row: w.row as u8,
        sel,
        src: src as u8,
        value: w.value,
    }
}

fn check_index(i: usize) -> u8 {
    assert!(i < SUBARRAYS_PER_CHAIN, "subarray {i} out of range");
    i as u8
}

/// Peephole pass: fuses each single-probe search with a directly
/// following small update into one [`PlanOp::Step`]. Neither fused op
/// produces a result, so running both under a single dispatch is
/// observationally identical — it just halves the op-loop overhead on the
/// dominant search/update alternation of bit-serial arithmetic.
fn fuse_steps(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(plan.len());
    for op in plan {
        let fused = match (out.last(), &op) {
            (Some(PlanOp::SearchOne { .. }), PlanOp::UpdateOne { write }) => Some((
                1u8,
                [
                    *write,
                    PlanWrite {
                        subarray: 0,
                        row: 0,
                        sel: 0,
                        src: 0,
                        value: false,
                    },
                ],
            )),
            (Some(PlanOp::SearchOne { .. }), PlanOp::UpdateTwo { writes }) => Some((2, *writes)),
            _ => None,
        };
        match fused {
            Some((nwrites, writes)) => {
                let Some(PlanOp::SearchOne { probe, dest, mode }) = out.pop() else {
                    unreachable!("guard matched SearchOne")
                };
                out.push(PlanOp::Step {
                    probe,
                    dest,
                    mode,
                    nwrites,
                    writes,
                });
            }
            None => out.push(op),
        }
    }
    out
}

/// Collapses *adjacent identical* [`PlanOp::TagCombine`]s, which show up
/// at fusion-window seams when one instruction ends and the next begins
/// with the same tag-bus transfer. All three modes are idempotent —
/// `Set` re-copies the unchanged source, `And`/`Or` re-apply an absorbed
/// mask — and nothing executes between adjacent plan ops, so dropping
/// the repeat is observationally identical.
fn dedup_tag_combines(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(plan.len());
    for op in plan {
        if let (
            Some(PlanOp::TagCombine {
                src: a,
                dst: b,
                op: m,
            }),
            PlanOp::TagCombine { src, dst, op: mode },
        ) = (out.last(), &op)
        {
            if a == src && b == dst && m == mode {
                continue;
            }
        }
        out.push(op);
    }
    out
}

/// Row-granular dead-store elimination across a fusion window.
///
/// A row write whose every written column is overwritten by a later write
/// in the same window — with nothing reading the row in between — cannot
/// affect final row state, and final state is the only thing the next
/// window (or the golden fault replay, which compares end states) can
/// observe. Coverage is decidable statically because every write's column
/// set is a subset of the active window (`plan_write` masks tag/acc
/// selectors with `win`; `PlanOp::Write` masks with `mask & win`) and the
/// window cannot change inside a program (`vsetvli` is a fusion barrier):
/// a later `ColSel::Window` write (`sel == 0`), or a raw row write with a
/// full mask, covers *any* earlier write to the same `(subarray, row)`.
///
/// Walks the plan backwards with a per-row "covered" latch; probe key
/// rows, gate rows and `PlanOp::Read`s clear the latch. Covered writes
/// inside a fused [`PlanOp::Step`] are stripped down to the surviving
/// search half. The op list (and thus recorded stats, sync points, and
/// modeled cycles/energy) is untouched — this shrinks host broadcast
/// work only.
fn dead_store_eliminate(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut covered = [[false; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN];
    fn uncover(covered: &mut [[bool; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN], p: &PlanProbe) {
        for k in 0..p.nkeys as usize {
            covered[p.subarray as usize][p.rows[k] as usize] = false;
        }
    }
    /// Reverse-order visit of one write: `None` when it is dead, `Some`
    /// when it survives (latching coverage if it is a full-window write).
    fn visit(
        covered: &mut [[bool; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
        w: PlanWrite,
    ) -> Option<PlanWrite> {
        let cell = &mut covered[w.subarray as usize][w.row as usize];
        if *cell {
            return None;
        }
        if w.sel == 0 {
            *cell = true;
        }
        Some(w)
    }
    let mut kept: Vec<PlanOp> = Vec::with_capacity(plan.len());
    for op in plan.into_iter().rev() {
        match op {
            PlanOp::UpdateOne { write } => {
                if let Some(w) = visit(&mut covered, write) {
                    kept.push(PlanOp::UpdateOne { write: w });
                }
            }
            PlanOp::UpdateTwo { writes } => {
                // Later-executing write first (backward scan).
                let b = visit(&mut covered, writes[1]);
                let a = visit(&mut covered, writes[0]);
                match (a, b) {
                    (Some(a), Some(b)) => kept.push(PlanOp::UpdateTwo { writes: [a, b] }),
                    (Some(w), None) | (None, Some(w)) => kept.push(PlanOp::UpdateOne { write: w }),
                    (None, None) => {}
                }
            }
            PlanOp::Update { writes } => {
                let mut survivors: Vec<PlanWrite> = writes
                    .iter()
                    .rev()
                    .filter_map(|w| visit(&mut covered, *w))
                    .collect();
                survivors.reverse();
                match survivors.as_slice() {
                    [] => {}
                    [w] => kept.push(PlanOp::UpdateOne { write: *w }),
                    [a, b] => kept.push(PlanOp::UpdateTwo { writes: [*a, *b] }),
                    _ => kept.push(PlanOp::Update {
                        writes: survivors.into_boxed_slice(),
                    }),
                }
            }
            PlanOp::Write {
                subarray,
                row,
                data,
                mask,
            } => {
                let cell = &mut covered[subarray as usize][row as usize];
                if !*cell {
                    if mask == u32::MAX {
                        *cell = true;
                    }
                    kept.push(PlanOp::Write {
                        subarray,
                        row,
                        data,
                        mask,
                    });
                }
            }
            PlanOp::Step {
                probe,
                dest,
                mode,
                nwrites,
                writes,
            } => {
                // The step's writes execute after its search: visit them
                // first, then let the probe's key rows clear coverage.
                let b = (nwrites == 2)
                    .then(|| visit(&mut covered, writes[1]))
                    .flatten();
                let a = visit(&mut covered, writes[0]);
                uncover(&mut covered, &probe);
                let mut surviving = [writes[0]; 2];
                let mut n = 0u8;
                for w in [a, b].into_iter().flatten() {
                    surviving[n as usize] = w;
                    n += 1;
                }
                if n == 0 {
                    kept.push(PlanOp::SearchOne { probe, dest, mode });
                } else {
                    kept.push(PlanOp::Step {
                        probe,
                        dest,
                        mode,
                        nwrites: n,
                        writes: surviving,
                    });
                }
            }
            PlanOp::SearchOne { probe, dest, mode } => {
                uncover(&mut covered, &probe);
                kept.push(PlanOp::SearchOne { probe, dest, mode });
            }
            PlanOp::Search {
                probes,
                gates,
                dest,
                mode,
            } => {
                for p in probes.iter().chain(gates.iter()) {
                    uncover(&mut covered, p);
                }
                kept.push(PlanOp::Search {
                    probes,
                    gates,
                    dest,
                    mode,
                });
            }
            PlanOp::Read { subarray, row } => {
                covered[subarray as usize][row as usize] = false;
                kept.push(PlanOp::Read { subarray, row });
            }
            other @ (PlanOp::ReduceTags { .. } | PlanOp::TagCombine { .. }) => kept.push(other),
        }
    }
    kept.reverse();
    kept
}

/// The cross-op peephole pipeline a fusion window's plan runs through
/// (on top of the seam-crossing [`fuse_steps`] that
/// [`MicroProgram::new`] already applies to the concatenated op list).
fn optimize_window_plan(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    dead_store_eliminate(dedup_tag_combines(plan))
}

/// The v2 window-compiler pipeline: `TagCombine` dedup followed by the
/// liveness-cascading dead-store pass that also retires dead *match*
/// stores ([`dead_store_eliminate_tagged`]). Runs over the scheduled
/// part order, where co-writer clustering exposes the most coverage.
fn optimize_window_plan_scheduled(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    dead_store_eliminate_tagged(dedup_tag_combines(plan))
}

/// Stores a plan performs: row writes (`PlanWrite`s and raw
/// [`PlanOp::Write`]s), search match stores (one per probe — the tag/acc
/// latch), and tag-bus transfers. The peephole passes only ever remove
/// stores, so the before/after difference of this count is the window's
/// `dead_stores_eliminated` ledger. `fuse_steps` merges ops without
/// dropping stores, so the count is invariant under step fusion — and
/// the multiset of stores is order-independent, so the issue-order and
/// scheduled pre-optimization plans count identically.
fn store_count(plan: &[PlanOp]) -> usize {
    plan.iter()
        .map(|op| match op {
            PlanOp::SearchOne { .. } => 1,
            PlanOp::Step { nwrites, .. } => 1 + *nwrites as usize,
            PlanOp::Search { probes, .. } => probes.len(),
            PlanOp::UpdateOne { .. } => 1,
            PlanOp::UpdateTwo { .. } => 2,
            PlanOp::Update { writes } => writes.len(),
            PlanOp::Write { .. } => 1,
            PlanOp::TagCombine { .. } => 1,
            PlanOp::Read { .. } | PlanOp::ReduceTags { .. } => 0,
        })
        .sum()
}

/// Backward liveness over the three per-subarray register files the
/// window can observe: row cells, tags, and accumulators. A register is
/// *covered* when a later op in the window fully rewrites its active
/// lanes with nothing reading it in between.
struct Liveness {
    rows: [[bool; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
    tags: [bool; SUBARRAYS_PER_CHAIN],
    acc: [bool; SUBARRAYS_PER_CHAIN],
}

impl Liveness {
    fn new() -> Self {
        Self {
            rows: [[false; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
            tags: [false; SUBARRAYS_PER_CHAIN],
            acc: [false; SUBARRAYS_PER_CHAIN],
        }
    }

    fn reg_mut(&mut self, dest: TagDest, sub: u8) -> &mut bool {
        match dest {
            TagDest::Tags => &mut self.tags[sub as usize],
            TagDest::Acc => &mut self.acc[sub as usize],
        }
    }

    fn uncover_probe(&mut self, p: &PlanProbe) {
        for k in 0..p.nkeys as usize {
            self.rows[p.subarray as usize][p.rows[k] as usize] = false;
        }
    }

    /// Reverse-order visit of one row write: `None` when covered. A kept
    /// tag/acc-selected write reads its source register, pinning earlier
    /// match stores to it.
    fn visit_write(&mut self, w: PlanWrite) -> Option<PlanWrite> {
        let cell = &mut self.rows[w.subarray as usize][w.row as usize];
        if *cell {
            return None;
        }
        match w.sel {
            0 => *cell = true,
            1 => self.tags[w.src as usize] = false,
            _ => self.acc[w.src as usize] = false,
        }
        Some(w)
    }

    /// Reverse-order visit of one search's match store into
    /// `dest[sub]`. Returns `true` when the store is dead: a later op
    /// fully rewrites the register's active lanes and nothing read it in
    /// between — every tag/acc mutation is confined to active lanes, so
    /// final register state is unaffected. A surviving `Set` store
    /// covers earlier stores; surviving `And`/`Or` stores read the
    /// register they blend into.
    fn visit_store(&mut self, dest: TagDest, mode: TagMode, sub: u8) -> bool {
        let reg = self.reg_mut(dest, sub);
        if *reg {
            return true;
        }
        *reg = mode == TagMode::Set;
        false
    }
}

/// The v2 dead-store pass: row-granular elimination (as
/// [`dead_store_eliminate`]) extended with tag/accumulator liveness, so
/// it also retires dead *match* stores — and, by dropping them, the
/// probe reads they performed, letting row coverage cascade through
/// searches the PR 9 pass had to treat as barriers.
///
/// Soundness rests on the same window invariant as the row pass: the
/// active window cannot change inside a fused program, every tag/acc
/// mutation (`Set` latch, `And`/`Or` blend) touches active lanes only,
/// and a later `Set`-mode store fully determines those lanes. A search
/// whose only effect is a covered match store therefore cannot affect
/// any final register file and is dropped whole; a [`PlanOp::Step`]
/// whose match store is covered but whose row writes survive demotes to
/// the bare update, and vice versa.
fn dead_store_eliminate_tagged(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut live = Liveness::new();
    let mut kept: Vec<PlanOp> = Vec::with_capacity(plan.len());
    for op in plan.into_iter().rev() {
        match op {
            PlanOp::UpdateOne { write } => {
                if let Some(w) = live.visit_write(write) {
                    kept.push(PlanOp::UpdateOne { write: w });
                }
            }
            PlanOp::UpdateTwo { writes } => {
                let b = live.visit_write(writes[1]);
                let a = live.visit_write(writes[0]);
                match (a, b) {
                    (Some(a), Some(b)) => kept.push(PlanOp::UpdateTwo { writes: [a, b] }),
                    (Some(w), None) | (None, Some(w)) => kept.push(PlanOp::UpdateOne { write: w }),
                    (None, None) => {}
                }
            }
            PlanOp::Update { writes } => {
                let mut survivors: Vec<PlanWrite> = writes
                    .iter()
                    .rev()
                    .filter_map(|w| live.visit_write(*w))
                    .collect();
                survivors.reverse();
                match survivors.as_slice() {
                    [] => {}
                    [w] => kept.push(PlanOp::UpdateOne { write: *w }),
                    [a, b] => kept.push(PlanOp::UpdateTwo { writes: [*a, *b] }),
                    _ => kept.push(PlanOp::Update {
                        writes: survivors.into_boxed_slice(),
                    }),
                }
            }
            PlanOp::Write {
                subarray,
                row,
                data,
                mask,
            } => {
                let cell = &mut live.rows[subarray as usize][row as usize];
                if !*cell {
                    if mask == u32::MAX {
                        *cell = true;
                    }
                    kept.push(PlanOp::Write {
                        subarray,
                        row,
                        data,
                        mask,
                    });
                }
            }
            PlanOp::Step {
                probe,
                dest,
                mode,
                nwrites,
                writes,
            } => {
                // Temporal order inside a step is search, then writes:
                // visit the writes first (they may read the tags the
                // search itself latched, pinning it), then the match
                // store, then the probe's key-row reads.
                let b = (nwrites == 2)
                    .then(|| live.visit_write(writes[1]))
                    .flatten();
                let a = live.visit_write(writes[0]);
                let store_dead = live.visit_store(dest, mode, probe.subarray);
                let mut surviving = [writes[0]; 2];
                let mut n = 0u8;
                for w in [a, b].into_iter().flatten() {
                    surviving[n as usize] = w;
                    n += 1;
                }
                match (store_dead, n) {
                    (true, 0) => {}
                    (true, 1) => kept.push(PlanOp::UpdateOne {
                        write: surviving[0],
                    }),
                    (true, _) => kept.push(PlanOp::UpdateTwo { writes: surviving }),
                    (false, 0) => {
                        live.uncover_probe(&probe);
                        kept.push(PlanOp::SearchOne { probe, dest, mode });
                    }
                    (false, n) => {
                        live.uncover_probe(&probe);
                        kept.push(PlanOp::Step {
                            probe,
                            dest,
                            mode,
                            nwrites: n,
                            writes: surviving,
                        });
                    }
                }
            }
            PlanOp::SearchOne { probe, dest, mode } => {
                if !live.visit_store(dest, mode, probe.subarray) {
                    live.uncover_probe(&probe);
                    kept.push(PlanOp::SearchOne { probe, dest, mode });
                }
            }
            PlanOp::Search {
                probes,
                gates,
                dest,
                mode,
            } => {
                // Per-probe match stores land in the probe's own
                // subarray; the op is dead only when every one is
                // covered. A kept op executes all of them, so visit
                // each (latching `Set` coverage, unpinning `And`/`Or`
                // reads) and then uncover every probed row.
                let all_dead = probes.iter().all(|p| *live.reg_mut(dest, p.subarray));
                if all_dead {
                    continue;
                }
                for p in probes.iter() {
                    live.visit_store(dest, mode, p.subarray);
                }
                for p in probes.iter().chain(gates.iter()) {
                    live.uncover_probe(p);
                }
                kept.push(PlanOp::Search {
                    probes,
                    gates,
                    dest,
                    mode,
                });
            }
            PlanOp::Read { subarray, row } => {
                live.rows[subarray as usize][row as usize] = false;
                kept.push(PlanOp::Read { subarray, row });
            }
            PlanOp::ReduceTags { subarray } => {
                live.tags[subarray as usize] = false;
                kept.push(PlanOp::ReduceTags { subarray });
            }
            PlanOp::TagCombine { src, dst, op } => {
                if live.tags[dst as usize] {
                    continue;
                }
                live.tags[dst as usize] = op == TagMode::Set;
                live.tags[src as usize] = false;
                kept.push(PlanOp::TagCombine { src, dst, op });
            }
        }
    }
    kept.reverse();
    kept
}

/// Lowers one microop, running its structural validation once.
pub(crate) fn lower(op: &MicroOp) -> PlanOp {
    match op {
        MicroOp::Search {
            probes,
            gates,
            dest,
            mode,
        } => {
            if gates.is_empty() && probes.len() == 1 {
                PlanOp::SearchOne {
                    probe: lower_probe(&probes[0]),
                    dest: *dest,
                    mode: *mode,
                }
            } else {
                PlanOp::Search {
                    probes: probes.iter().map(lower_probe).collect(),
                    gates: gates.iter().map(lower_probe).collect(),
                    dest: *dest,
                    mode: *mode,
                }
            }
        }
        MicroOp::Update { writes } => {
            let mut seen = 0u32;
            for w in writes {
                assert!(
                    w.subarray < SUBARRAYS_PER_CHAIN,
                    "subarray {} out of range",
                    w.subarray
                );
                let bit = 1u32 << w.subarray;
                assert!(
                    seen & bit == 0,
                    "update writes two rows of subarray {}",
                    w.subarray
                );
                seen |= bit;
            }
            match writes.as_slice() {
                [w] => PlanOp::UpdateOne {
                    write: lower_write(w),
                },
                [a, b] => PlanOp::UpdateTwo {
                    writes: [lower_write(a), lower_write(b)],
                },
                ws => PlanOp::Update {
                    writes: ws.iter().map(lower_write).collect(),
                },
            }
        }
        MicroOp::Read { subarray, row } => {
            assert!(*row < TOTAL_ROWS, "row {row} out of range");
            PlanOp::Read {
                subarray: check_index(*subarray),
                row: *row as u8,
            }
        }
        MicroOp::Write {
            subarray,
            row,
            data,
            mask,
        } => {
            assert!(*row < TOTAL_ROWS, "row {row} out of range");
            PlanOp::Write {
                subarray: check_index(*subarray),
                row: *row as u8,
                data: *data,
                mask: *mask,
            }
        }
        MicroOp::ReduceTags { subarray } => PlanOp::ReduceTags {
            subarray: check_index(*subarray),
        },
        MicroOp::TagCombine { src, dst, op } => PlanOp::TagCombine {
            src: check_index(*src),
            dst: check_index(*dst),
            op: *op,
        },
    }
}

/// A compiled, immutable microop sequence executed as one broadcast unit.
///
/// The op list (and its lowered broadcast plan) is reference-counted so a
/// cached program can be handed to every pool worker without deep-copying
/// microops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroProgram {
    ops: Arc<Vec<MicroOp>>,
    plan: Arc<Vec<PlanOp>>,
    sync_points: Vec<SyncPoint>,
    /// Stores the window peephole passes removed from the broadcast
    /// plan relative to plain concatenation — compile-time metadata, so
    /// cached windows keep reporting their win on every execution.
    dead_stores: u32,
}

impl MicroProgram {
    /// Wraps an op sequence, locating its sync points and lowering the ops
    /// into the dense plan the broadcast executor runs.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        let sync_points = ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                MicroOp::ReduceTags { .. } => Some(SyncPoint {
                    op_index: i,
                    kind: SyncKind::Reduce,
                }),
                MicroOp::Read { .. } => Some(SyncPoint {
                    op_index: i,
                    kind: SyncKind::Read,
                }),
                _ => None,
            })
            .collect();
        let plan = fuse_steps(ops.iter().map(lower).collect());
        Self {
            ops: Arc::new(ops),
            plan: Arc::new(plan),
            sync_points,
            dead_stores: 0,
        }
    }

    /// Compiles a *fusion window*: several instructions' programs
    /// concatenated into one broadcast unit executed with a single
    /// fan-out/fan-in. [`MicroProgram::new`] over the concatenated op
    /// list gives the seam-crossing `fuse_steps` for free (an op ending
    /// in a search fuses with a successor's opening update); the window
    /// plan then runs the cross-op peephole passes — adjacent
    /// [`MicroOp::TagCombine`] dedup and row-granular dead-store
    /// elimination (an intermediate `vd` fully rewritten later in the
    /// window, unread in between, is never materialized).
    ///
    /// The *op* list is the unoptimized concatenation, so recorded
    /// [`MicroOpStats`] — and everything derived from them (modeled
    /// cycles, energy, the golden fault replay) — are identical to
    /// running the parts one at a time; only the host broadcast plan
    /// shrinks.
    pub fn windowed(parts: &[&MicroProgram]) -> Self {
        Self::windowed_inner(parts, false)
    }

    /// Compiles a fusion window through the v2 pipeline: summarize each
    /// part's architectural footprint, build the RAW/WAR/WAW dependence
    /// graph over subarray row cells, tags and accumulators, and
    /// list-schedule independent parts so co-writers cluster
    /// (`schedule.rs`). The scheduled per-part plans are then
    /// re-fused across the *new* seams and run through the upgraded
    /// peepholes (`TagCombine` dedup plus the liveness-cascading
    /// dead-store pass that also retires dead match stores).
    ///
    /// Exactly like [`Self::windowed`], the op list stays the
    /// issue-order concatenation: stats, sync-point order, modeled
    /// cycles/energy and the golden fault replay are bit-identical to
    /// per-op execution — only the host broadcast plan is rescheduled.
    pub fn windowed_scheduled(parts: &[&MicroProgram]) -> Self {
        Self::windowed_inner(parts, true)
    }

    fn windowed_inner(parts: &[&MicroProgram], reorder: bool) -> Self {
        let ops: Vec<MicroOp> = parts.iter().flat_map(|p| p.ops().iter().cloned()).collect();
        let mut fused = Self::new(ops);
        let before = store_count(fused.plan.as_ref());
        let plan = if reorder {
            let access: Vec<crate::schedule::PlanAccess> = parts
                .iter()
                .map(|p| crate::schedule::PlanAccess::of(p.plan()))
                .collect();
            let order = crate::schedule::schedule(&access);
            let concatenated: Vec<PlanOp> = order
                .iter()
                .flat_map(|&i| parts[i].plan().iter().cloned())
                .collect();
            optimize_window_plan_scheduled(fuse_steps(concatenated))
        } else {
            optimize_window_plan(fused.plan.as_ref().clone())
        };
        fused.dead_stores = (before - store_count(&plan)) as u32;
        fused.plan = Arc::new(plan);
        fused
    }

    /// Stores the window peephole passes eliminated from this program's
    /// broadcast plan (row writes, search match stores, tag-bus
    /// transfers) relative to plain per-op concatenation. Zero for
    /// single-instruction programs.
    pub fn dead_stores(&self) -> u32 {
        self.dead_stores
    }

    /// The microops in broadcast order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// The statistics ledger one broadcast of this program charges,
    /// computed statically from the op list (microop classification is
    /// data-independent). This is what lets an instruction's modeled
    /// time and energy be charged at issue while its broadcast is
    /// deferred into a fusion window: the deferred execution records
    /// exactly these stats.
    pub fn stats(&self) -> MicroOpStats {
        let mut s = MicroOpStats::new();
        for op in self.ops.iter() {
            let (kind, bp) = op.classify();
            s.record(kind, bp);
        }
        s
    }

    /// Number of microops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program contains no microops (e.g. `vid.v`, which is
    /// modeled functionally).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The result-producing microops, in program order.
    pub fn sync_points(&self) -> &[SyncPoint] {
        &self.sync_points
    }

    /// Number of reduction sync points — the length of the sum vector
    /// [`Csb::execute_program`](crate::Csb::execute_program) returns.
    pub fn reduce_count(&self) -> usize {
        self.sync_points
            .iter()
            .filter(|s| s.kind == SyncKind::Reduce)
            .count()
    }

    /// Number of broadcast plan steps the host actually executes. Equal
    /// to [`Self::len`] minus the steps removed by `fuse_steps` and
    /// (for windows) the cross-op peephole passes — the observable size
    /// of the fusion win.
    pub fn plan_len(&self) -> usize {
        self.plan.len()
    }

    /// The lowered broadcast plan, op for op parallel to [`Self::ops`].
    pub(crate) fn plan(&self) -> &[PlanOp] {
        &self.plan
    }

    /// Shared handle to the lowered plan (cheap clone for pool workers).
    pub(crate) fn plan_arc(&self) -> Arc<Vec<PlanOp>> {
        Arc::clone(&self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{Probe, TagDest, TagMode};

    #[test]
    fn sync_points_locate_reduces_and_reads() {
        let prog = MicroProgram::new(vec![
            MicroOp::Search {
                probes: vec![Probe::row(0, 1, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::Read {
                subarray: 0,
                row: 1,
            },
            MicroOp::ReduceTags { subarray: 1 },
        ]);
        assert_eq!(prog.len(), 4);
        assert_eq!(prog.reduce_count(), 2);
        assert_eq!(
            prog.sync_points(),
            &[
                SyncPoint {
                    op_index: 1,
                    kind: SyncKind::Reduce
                },
                SyncPoint {
                    op_index: 2,
                    kind: SyncKind::Read
                },
                SyncPoint {
                    op_index: 3,
                    kind: SyncKind::Reduce
                },
            ]
        );
    }

    #[test]
    fn empty_program() {
        let prog = MicroProgram::new(vec![]);
        assert!(prog.is_empty());
        assert_eq!(prog.reduce_count(), 0);
    }

    fn search1(sub: usize, row: usize) -> MicroOp {
        MicroOp::Search {
            probes: vec![Probe::row(sub, row, true)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        }
    }

    fn upd1(sub: usize, row: usize, value: bool) -> MicroOp {
        MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: sub,
                row,
                value,
                cols: crate::microop::ColSel::Window,
            }],
        }
    }

    #[test]
    fn windowed_fuses_steps_across_op_seams() {
        let a = MicroProgram::new(vec![search1(0, 1)]);
        let b = MicroProgram::new(vec![upd1(0, 2, true)]);
        assert!(matches!(a.plan()[0], PlanOp::SearchOne { .. }));
        assert!(matches!(b.plan()[0], PlanOp::UpdateOne { .. }));
        let fused = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(fused.len(), 2, "op list is the plain concatenation");
        assert_eq!(fused.plan().len(), 1, "seam search+update fuse to a step");
        assert!(matches!(fused.plan()[0], PlanOp::Step { nwrites: 1, .. }));
    }

    #[test]
    fn windowed_collapses_adjacent_identical_tag_combines() {
        let tc = MicroOp::TagCombine {
            src: 3,
            dst: 4,
            op: TagMode::Or,
        };
        let a = MicroProgram::new(vec![tc.clone()]);
        let b = MicroProgram::new(vec![tc.clone(), tc]);
        let fused = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused.plan().len(), 1, "idempotent transfer deduped");
    }

    #[test]
    fn windowed_eliminates_covered_dead_stores() {
        // Op k materializes (5, 3); op k+1 fully rewrites it with the
        // window unchanged and nothing reading it in between.
        let a = MicroProgram::new(vec![upd1(5, 3, true)]);
        let b = MicroProgram::new(vec![upd1(5, 3, false)]);
        let fused = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(fused.len(), 2, "stats still charge both updates");
        assert_eq!(fused.plan().len(), 1, "first store is dead");
        assert!(
            matches!(fused.plan()[0], PlanOp::UpdateOne { write } if !write.value),
            "the surviving store is the later one"
        );
    }

    #[test]
    fn intervening_read_blocks_dead_store_elimination() {
        let a = MicroProgram::new(vec![
            upd1(5, 3, true),
            MicroOp::Read {
                subarray: 5,
                row: 3,
            },
        ]);
        let b = MicroProgram::new(vec![upd1(5, 3, false)]);
        let fused = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(fused.plan().len(), 3, "read pins the earlier store");
    }

    #[test]
    fn intervening_probe_blocks_dead_store_elimination() {
        let a = MicroProgram::new(vec![upd1(5, 3, true)]);
        let probe = MicroProgram::new(vec![search1(5, 3)]);
        let b = MicroProgram::new(vec![upd1(5, 3, false)]);
        let fused = MicroProgram::windowed(&[&a, &probe, &b]);
        // The probe fuses with the trailing update into a step, but the
        // first store must survive: the search reads the row.
        let writes: usize = fused
            .plan()
            .iter()
            .map(|p| match p {
                PlanOp::UpdateOne { .. } => 1,
                PlanOp::Step { nwrites, .. } => *nwrites as usize,
                _ => 0,
            })
            .sum();
        assert_eq!(writes, 2, "both stores execute");
    }

    #[test]
    fn tag_selected_store_is_dead_under_full_window_rewrite() {
        let a = MicroProgram::new(vec![MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 7,
                row: 0,
                value: true,
                cols: crate::microop::ColSel::Tags(7),
            }],
        }]);
        let b = MicroProgram::new(vec![upd1(7, 0, false)]);
        let fused = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(
            fused.plan().len(),
            1,
            "tag-selected columns are a subset of the window"
        );
    }

    #[test]
    fn scheduled_window_retires_orphaned_searches() {
        // Op A is a fused search/update step; op B kills A's row write
        // (full-window rewrite, nothing reading in between); op C's
        // `Set`-mode search overwrites A's match store. The PR 9 pass
        // strips A down to an orphaned search — the v2 liveness cascade
        // sees its match store is covered too and drops the whole step.
        let a = MicroProgram::new(vec![search1(5, 3), upd1(5, 4, true)]);
        let b = MicroProgram::new(vec![upd1(5, 4, false)]);
        let c = MicroProgram::new(vec![search1(5, 10)]);
        let refs = [&a, &b, &c];
        let v1 = MicroProgram::windowed(&refs);
        assert_eq!(v1.plan_len(), 3, "PR 9 pipeline keeps the orphan search");
        assert_eq!(v1.dead_stores(), 1);
        let v2 = MicroProgram::windowed_scheduled(&refs);
        assert_eq!(v2.plan_len(), 2, "cascade drops the orphaned search");
        assert_eq!(v2.dead_stores(), 2, "row write and match store retired");
        assert_eq!(v2.len(), 4, "op list stays the issue-order concatenation");
    }

    #[test]
    fn covered_tag_combine_is_dead_in_the_scheduled_pipeline() {
        // Two *different* Set-mode transfers into tags[9]: adjacency
        // dedup cannot touch them, but the later one fully rewrites the
        // destination with nothing reading it in between.
        let tc = |src: usize| MicroOp::TagCombine {
            src,
            dst: 9,
            op: TagMode::Set,
        };
        let a = MicroProgram::new(vec![tc(2)]);
        let b = MicroProgram::new(vec![tc(4)]);
        let v1 = MicroProgram::windowed(&[&a, &b]);
        assert_eq!(v1.plan_len(), 2, "PR 9 pipeline keeps both transfers");
        let v2 = MicroProgram::windowed_scheduled(&[&a, &b]);
        assert_eq!(v2.plan_len(), 1, "covered transfer retired");
        assert_eq!(v2.dead_stores(), 1);
    }

    #[test]
    fn reduce_pins_the_match_store_it_reads() {
        // search -> reduce -> search: the reduction reads tags[3], so
        // the first match store must survive the v2 pass.
        let parts = [
            MicroProgram::new(vec![search1(3, 1)]),
            MicroProgram::new(vec![MicroOp::ReduceTags { subarray: 3 }]),
            MicroProgram::new(vec![search1(3, 2)]),
        ];
        let refs: Vec<&MicroProgram> = parts.iter().collect();
        let v2 = MicroProgram::windowed_scheduled(&refs);
        assert_eq!(v2.plan_len(), 3, "reduce pins the earlier search");
        assert_eq!(v2.dead_stores(), 0);
    }

    #[test]
    fn tag_selected_write_pins_its_source_register() {
        // search Set tags[6], then a row write selecting tags[6], then a
        // covering search: the sel=1 write reads the first match store,
        // so only stores *after* the read may be treated as covered.
        let sel_write = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 6,
                row: 8,
                value: true,
                cols: crate::microop::ColSel::Tags(6),
            }],
        };
        let parts = [
            MicroProgram::new(vec![search1(6, 1)]),
            MicroProgram::new(vec![sel_write]),
            MicroProgram::new(vec![search1(6, 2)]),
        ];
        let refs: Vec<&MicroProgram> = parts.iter().collect();
        let v2 = MicroProgram::windowed_scheduled(&refs);
        // Seam step-fusion merges the first search with the selected
        // write; the liveness pass must retire nothing, because that
        // write reads the match store the later search would otherwise
        // cover.
        assert_eq!(v2.dead_stores(), 0, "the selected write pins the search");
        assert_eq!(v2.plan_len(), 2);
    }

    #[test]
    fn single_instruction_programs_report_no_dead_stores() {
        let prog = MicroProgram::new(vec![search1(0, 1), upd1(0, 2, true)]);
        assert_eq!(prog.dead_stores(), 0);
    }

    #[test]
    fn static_stats_mirror_the_live_classification() {
        let prog = MicroProgram::new(vec![
            search1(0, 1),
            upd1(1, 2, true),
            MicroOp::Update {
                writes: vec![WriteSpec {
                    subarray: 2,
                    row: 0,
                    value: true,
                    cols: crate::microop::ColSel::Tags(1),
                }],
            },
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::And,
            },
        ]);
        let s = prog.stats();
        assert_eq!(s.searches_bs, 1);
        assert_eq!(s.updates_bs, 1);
        assert_eq!(s.updates_prop, 1);
        assert_eq!(s.reduces, 1);
        assert_eq!(s.tag_combines, 1);
        assert_eq!(s.total(), 5);
    }
}

/// Satellite property test: the whole fusion pipeline — `fuse_steps`
/// across seams plus the cross-op peephole passes — is
/// semantics-preserving on *arbitrary* generated op sequences, not just
/// the shapes today's instruction lowerings emit. Three executions of
/// the same ops on identically seeded CSBs must agree bit for bit in
/// final register-file state, reduction sums, and recorded stats:
/// per-microop, one concatenated program, and a fused window split at
/// arbitrary instruction boundaries.
#[cfg(test)]
mod window_properties {
    use super::*;
    use crate::csb::{Csb, CsbSnapshot};
    use crate::geometry::CsbGeometry;
    use crate::microop::ColSel;
    use proptest::prelude::*;

    const CHAINS: usize = 8;

    fn seeded_csb(vstart_raw: usize, vl_raw: usize) -> Csb {
        let mut csb = Csb::new(CsbGeometry::new(CHAINS));
        for i in 0..CHAINS {
            for sub in 0..SUBARRAYS_PER_CHAIN {
                let x = (i * 131 + sub * 7919 + 17) as u32;
                csb.write_chain_row(i, sub, sub % TOTAL_ROWS, x.wrapping_mul(0x9E37), u32::MAX);
                csb.set_chain_tags(i, sub, x.wrapping_mul(0x85EB).rotate_left(sub as u32));
                csb.set_chain_acc(i, sub, x.wrapping_mul(0xC2B2).rotate_left(i as u32));
            }
        }
        let vl = vl_raw % (csb.max_vl() + 1);
        csb.set_active_window(vstart_raw % (vl + 1), vl);
        csb
    }

    fn arb_probe() -> impl Strategy<Value = Probe> {
        (
            0..SUBARRAYS_PER_CHAIN,
            proptest::collection::vec((0..TOTAL_ROWS, any::<bool>()), 1..=4),
        )
            .prop_map(|(s, keys)| Probe::new(s, keys))
    }

    fn arb_mode() -> impl Strategy<Value = TagMode> {
        prop_oneof![Just(TagMode::Set), Just(TagMode::And), Just(TagMode::Or)]
    }

    fn arb_dest() -> impl Strategy<Value = TagDest> {
        prop_oneof![Just(TagDest::Tags), Just(TagDest::Acc)]
    }

    fn arb_colsel() -> impl Strategy<Value = ColSel> {
        prop_oneof![
            Just(ColSel::Window),
            (0..SUBARRAYS_PER_CHAIN).prop_map(ColSel::Tags),
            (0..SUBARRAYS_PER_CHAIN).prop_map(ColSel::Acc),
        ]
    }

    fn arb_update() -> impl Strategy<Value = MicroOp> {
        proptest::collection::vec(
            (
                0..SUBARRAYS_PER_CHAIN,
                0..TOTAL_ROWS,
                any::<bool>(),
                arb_colsel(),
            ),
            1..=4,
        )
        .prop_map(|raw| {
            // The hardware writes at most one row per subarray per update.
            let mut seen = 0u64;
            let writes: Vec<WriteSpec> = raw
                .into_iter()
                .filter(|(sub, ..)| {
                    let bit = 1u64 << sub;
                    let fresh = seen & bit == 0;
                    seen |= bit;
                    fresh
                })
                .map(|(subarray, row, value, cols)| WriteSpec {
                    subarray,
                    row,
                    value,
                    cols,
                })
                .collect();
            MicroOp::Update { writes }
        })
    }

    fn arb_op() -> impl Strategy<Value = MicroOp> {
        prop_oneof![
            (
                proptest::collection::vec(arb_probe(), 1..=3),
                proptest::collection::vec(arb_probe(), 0..=2),
                arb_dest(),
                arb_mode(),
            )
                .prop_map(|(probes, gates, dest, mode)| MicroOp::Search {
                    probes,
                    gates,
                    dest,
                    mode,
                }),
            arb_update(),
            (0..SUBARRAYS_PER_CHAIN, 0..TOTAL_ROWS)
                .prop_map(|(subarray, row)| MicroOp::Read { subarray, row }),
            (
                0..SUBARRAYS_PER_CHAIN,
                0..TOTAL_ROWS,
                any::<u32>(),
                any::<u32>()
            )
                .prop_map(|(subarray, row, data, mask)| MicroOp::Write {
                    subarray,
                    row,
                    data,
                    mask,
                }),
            (0..SUBARRAYS_PER_CHAIN).prop_map(|subarray| MicroOp::ReduceTags { subarray }),
            (0..SUBARRAYS_PER_CHAIN, 0..SUBARRAYS_PER_CHAIN, arb_mode())
                .prop_map(|(src, dst, op)| MicroOp::TagCombine { src, dst, op }),
        ]
    }

    type Outcome = (CsbSnapshot, Vec<u64>, MicroOpStats);

    fn run_per_op(ops: &[MicroOp], vstart: usize, vl: usize) -> Outcome {
        let mut csb = seeded_csb(vstart, vl);
        let mut sums = Vec::new();
        for op in ops {
            if let Some(s) = csb.execute(op) {
                sums.push(s);
            }
        }
        (csb.save_registers(), sums, csb.stats())
    }

    fn run_program(prog: &MicroProgram, vstart: usize, vl: usize) -> Outcome {
        let mut csb = seeded_csb(vstart, vl);
        let sums = csb.execute_program(prog);
        (csb.save_registers(), sums, csb.stats())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn fusion_window_preserves_semantics(
            ops in proptest::collection::vec(arb_op(), 1..16),
            cuts in proptest::collection::vec(any::<bool>(), 16),
            vstart_raw in 0usize..1024,
            vl_raw in 0usize..1024,
        ) {
            let baseline = run_per_op(&ops, vstart_raw, vl_raw);

            let whole = MicroProgram::new(ops.clone());
            let as_program = run_program(&whole, vstart_raw, vl_raw);
            prop_assert_eq!(&baseline, &as_program);

            // Split at arbitrary "instruction" boundaries and fuse.
            let mut parts: Vec<MicroProgram> = Vec::new();
            let mut current: Vec<MicroOp> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                current.push(op.clone());
                if cuts[i % cuts.len()] {
                    parts.push(MicroProgram::new(std::mem::take(&mut current)));
                }
            }
            if !current.is_empty() {
                parts.push(MicroProgram::new(current));
            }
            let refs: Vec<&MicroProgram> = parts.iter().collect();
            let fused = MicroProgram::windowed(&refs);
            let as_window = run_program(&fused, vstart_raw, vl_raw);
            prop_assert_eq!(&baseline, &as_window);

            // The v2 pipeline — dependence-graph scheduling plus the
            // liveness-cascading dead-store pass — must be just as
            // invisible, including reduction-sum order.
            let scheduled = MicroProgram::windowed_scheduled(&refs);
            let as_scheduled = run_program(&scheduled, vstart_raw, vl_raw);
            prop_assert_eq!(&baseline, &as_scheduled);
            prop_assert!(
                scheduled.plan_len() <= fused.len(),
                "scheduling never grows the plan past the op list"
            );
        }
    }
}

//! Microop *programs*: the program-granularity unit of broadcast.
//!
//! A [`MicroProgram`] is the compiled form of one vector instruction — a
//! fixed microop sequence plus its *sync points*. A sync point is a
//! microop whose result leaves the chains ([`MicroOp::ReduceTags`] feeds
//! the global reduction tree, [`MicroOp::Read`] returns row data); every
//! other microop is chain-local, so a worker owning a subset of chains
//! can run the whole program without talking to anyone and surrender its
//! partial reduction sums at a single join. This is what lets
//! [`Csb::execute_program`](crate::Csb::execute_program) pay one
//! fan-out/fan-in per *instruction* instead of one per *microop*.

use std::sync::Arc;

use crate::geometry::SUBARRAYS_PER_CHAIN;
use crate::microop::{MicroOp, Probe, TagDest, TagMode, WriteSpec};
use crate::subarray::TOTAL_ROWS;

/// The kind of value a sync point produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// A [`MicroOp::ReduceTags`] op: per-chain popcounts summed by the
    /// reduction tree into one scalar.
    Reduce,
    /// A [`MicroOp::Read`] op: per-chain row data (chain-local; consumers
    /// read chain state after the program completes).
    Read,
}

/// One result-producing microop inside a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPoint {
    /// Index of the microop within the program.
    pub op_index: usize,
    /// What the op produces.
    pub kind: SyncKind,
}

/// A search probe lowered for the broadcast hot loop: key rows live in a
/// fixed inline array (no nested heap to chase per chain) and key polarity
/// is an XOR mask (`0` to match ones, `!0` to match zeros), so the match
/// loop is branchless: `m &= row ^ inv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanProbe {
    pub subarray: u8,
    pub nkeys: u8,
    pub rows: [u8; 4],
    pub inv: [u32; 4],
}

/// A row write lowered to four bytes: `sel` picks the column source
/// (0 = window, 1 = `tags[src]`, 2 = `acc[src]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanWrite {
    pub subarray: u8,
    pub row: u8,
    pub sel: u8,
    pub src: u8,
    pub value: bool,
}

/// A microop lowered into the dense, pre-validated form the broadcast
/// executor runs. Structural checks (probe key counts, one row per
/// subarray per update, index ranges) happen once here, at compile time,
/// instead of once per chain per op in the fan-out. The dominant
/// bit-serial shapes — a single ungated probe, an update of one or two
/// rows — get inline variants so the hot loop touches no per-op heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PlanOp {
    /// One ungated probe (most bit-serial truth-table searches).
    SearchOne {
        probe: PlanProbe,
        dest: TagDest,
        mode: TagMode,
    },
    /// A fused truth-table step: one ungated search immediately followed
    /// by a one- or two-row update (`nwrites` ∈ {1, 2}) — the paper's TTM
    /// search-phase/update-phase pair issued as a single command. Produced
    /// by the peephole pass in [`MicroProgram::new`]; executing it is
    /// exactly the search followed by the update.
    Step {
        probe: PlanProbe,
        dest: TagDest,
        mode: TagMode,
        nwrites: u8,
        writes: [PlanWrite; 2],
    },
    /// General search: several probes and/or gate probes.
    Search {
        probes: Box<[PlanProbe]>,
        gates: Box<[PlanProbe]>,
        dest: TagDest,
        mode: TagMode,
    },
    /// Single-row update (e.g. a carry write).
    UpdateOne {
        write: PlanWrite,
    },
    /// Two-row update (e.g. result bit + carry propagation).
    UpdateTwo {
        writes: [PlanWrite; 2],
    },
    /// General update (bit-parallel clears/copies touching many subarrays).
    Update {
        writes: Box<[PlanWrite]>,
    },
    Read {
        subarray: u8,
        row: u8,
    },
    Write {
        subarray: u8,
        row: u8,
        data: u32,
        mask: u32,
    },
    ReduceTags {
        subarray: u8,
    },
    TagCombine {
        src: u8,
        dst: u8,
        op: TagMode,
    },
}

fn lower_probe(p: &Probe) -> PlanProbe {
    assert!(
        p.keys.len() <= 4,
        "hardware searches at most 4 rows, got {}",
        p.keys.len()
    );
    assert!(
        p.subarray < SUBARRAYS_PER_CHAIN,
        "subarray {} out of range",
        p.subarray
    );
    let mut rows = [0u8; 4];
    let mut inv = [0u32; 4];
    for (k, &(row, want)) in p.keys.iter().enumerate() {
        assert!(row < TOTAL_ROWS, "row {row} out of range");
        rows[k] = row as u8;
        inv[k] = if want { 0 } else { u32::MAX };
    }
    PlanProbe {
        subarray: p.subarray as u8,
        nkeys: p.keys.len() as u8,
        rows,
        inv,
    }
}

fn lower_write(w: &WriteSpec) -> PlanWrite {
    assert!(
        w.subarray < SUBARRAYS_PER_CHAIN,
        "subarray {} out of range",
        w.subarray
    );
    assert!(w.row < TOTAL_ROWS, "row {} out of range", w.row);
    let (sel, src) = match w.cols {
        crate::microop::ColSel::Window => (0u8, 0usize),
        crate::microop::ColSel::Tags(s) => (1, s),
        crate::microop::ColSel::Acc(s) => (2, s),
    };
    assert!(src < SUBARRAYS_PER_CHAIN, "subarray {src} out of range");
    PlanWrite {
        subarray: w.subarray as u8,
        row: w.row as u8,
        sel,
        src: src as u8,
        value: w.value,
    }
}

fn check_index(i: usize) -> u8 {
    assert!(i < SUBARRAYS_PER_CHAIN, "subarray {i} out of range");
    i as u8
}

/// Peephole pass: fuses each single-probe search with a directly
/// following small update into one [`PlanOp::Step`]. Neither fused op
/// produces a result, so running both under a single dispatch is
/// observationally identical — it just halves the op-loop overhead on the
/// dominant search/update alternation of bit-serial arithmetic.
fn fuse_steps(plan: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut out: Vec<PlanOp> = Vec::with_capacity(plan.len());
    for op in plan {
        let fused = match (out.last(), &op) {
            (Some(PlanOp::SearchOne { .. }), PlanOp::UpdateOne { write }) => Some((
                1u8,
                [
                    *write,
                    PlanWrite {
                        subarray: 0,
                        row: 0,
                        sel: 0,
                        src: 0,
                        value: false,
                    },
                ],
            )),
            (Some(PlanOp::SearchOne { .. }), PlanOp::UpdateTwo { writes }) => Some((2, *writes)),
            _ => None,
        };
        match fused {
            Some((nwrites, writes)) => {
                let Some(PlanOp::SearchOne { probe, dest, mode }) = out.pop() else {
                    unreachable!("guard matched SearchOne")
                };
                out.push(PlanOp::Step {
                    probe,
                    dest,
                    mode,
                    nwrites,
                    writes,
                });
            }
            None => out.push(op),
        }
    }
    out
}

/// Lowers one microop, running its structural validation once.
pub(crate) fn lower(op: &MicroOp) -> PlanOp {
    match op {
        MicroOp::Search {
            probes,
            gates,
            dest,
            mode,
        } => {
            if gates.is_empty() && probes.len() == 1 {
                PlanOp::SearchOne {
                    probe: lower_probe(&probes[0]),
                    dest: *dest,
                    mode: *mode,
                }
            } else {
                PlanOp::Search {
                    probes: probes.iter().map(lower_probe).collect(),
                    gates: gates.iter().map(lower_probe).collect(),
                    dest: *dest,
                    mode: *mode,
                }
            }
        }
        MicroOp::Update { writes } => {
            let mut seen = 0u32;
            for w in writes {
                assert!(
                    w.subarray < SUBARRAYS_PER_CHAIN,
                    "subarray {} out of range",
                    w.subarray
                );
                let bit = 1u32 << w.subarray;
                assert!(
                    seen & bit == 0,
                    "update writes two rows of subarray {}",
                    w.subarray
                );
                seen |= bit;
            }
            match writes.as_slice() {
                [w] => PlanOp::UpdateOne {
                    write: lower_write(w),
                },
                [a, b] => PlanOp::UpdateTwo {
                    writes: [lower_write(a), lower_write(b)],
                },
                ws => PlanOp::Update {
                    writes: ws.iter().map(lower_write).collect(),
                },
            }
        }
        MicroOp::Read { subarray, row } => {
            assert!(*row < TOTAL_ROWS, "row {row} out of range");
            PlanOp::Read {
                subarray: check_index(*subarray),
                row: *row as u8,
            }
        }
        MicroOp::Write {
            subarray,
            row,
            data,
            mask,
        } => {
            assert!(*row < TOTAL_ROWS, "row {row} out of range");
            PlanOp::Write {
                subarray: check_index(*subarray),
                row: *row as u8,
                data: *data,
                mask: *mask,
            }
        }
        MicroOp::ReduceTags { subarray } => PlanOp::ReduceTags {
            subarray: check_index(*subarray),
        },
        MicroOp::TagCombine { src, dst, op } => PlanOp::TagCombine {
            src: check_index(*src),
            dst: check_index(*dst),
            op: *op,
        },
    }
}

/// A compiled, immutable microop sequence executed as one broadcast unit.
///
/// The op list (and its lowered broadcast plan) is reference-counted so a
/// cached program can be handed to every pool worker without deep-copying
/// microops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroProgram {
    ops: Arc<Vec<MicroOp>>,
    plan: Arc<Vec<PlanOp>>,
    sync_points: Vec<SyncPoint>,
}

impl MicroProgram {
    /// Wraps an op sequence, locating its sync points and lowering the ops
    /// into the dense plan the broadcast executor runs.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        let sync_points = ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                MicroOp::ReduceTags { .. } => Some(SyncPoint {
                    op_index: i,
                    kind: SyncKind::Reduce,
                }),
                MicroOp::Read { .. } => Some(SyncPoint {
                    op_index: i,
                    kind: SyncKind::Read,
                }),
                _ => None,
            })
            .collect();
        let plan = fuse_steps(ops.iter().map(lower).collect());
        Self {
            ops: Arc::new(ops),
            plan: Arc::new(plan),
            sync_points,
        }
    }

    /// The microops in broadcast order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of microops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program contains no microops (e.g. `vid.v`, which is
    /// modeled functionally).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The result-producing microops, in program order.
    pub fn sync_points(&self) -> &[SyncPoint] {
        &self.sync_points
    }

    /// Number of reduction sync points — the length of the sum vector
    /// [`Csb::execute_program`](crate::Csb::execute_program) returns.
    pub fn reduce_count(&self) -> usize {
        self.sync_points
            .iter()
            .filter(|s| s.kind == SyncKind::Reduce)
            .count()
    }

    /// The lowered broadcast plan, op for op parallel to [`Self::ops`].
    pub(crate) fn plan(&self) -> &[PlanOp] {
        &self.plan
    }

    /// Shared handle to the lowered plan (cheap clone for pool workers).
    pub(crate) fn plan_arc(&self) -> Arc<Vec<PlanOp>> {
        Arc::clone(&self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{Probe, TagDest, TagMode};

    #[test]
    fn sync_points_locate_reduces_and_reads() {
        let prog = MicroProgram::new(vec![
            MicroOp::Search {
                probes: vec![Probe::row(0, 1, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::Read {
                subarray: 0,
                row: 1,
            },
            MicroOp::ReduceTags { subarray: 1 },
        ]);
        assert_eq!(prog.len(), 4);
        assert_eq!(prog.reduce_count(), 2);
        assert_eq!(
            prog.sync_points(),
            &[
                SyncPoint {
                    op_index: 1,
                    kind: SyncKind::Reduce
                },
                SyncPoint {
                    op_index: 2,
                    kind: SyncKind::Read
                },
                SyncPoint {
                    op_index: 3,
                    kind: SyncKind::Reduce
                },
            ]
        );
    }

    #[test]
    fn empty_program() {
        let prog = MicroProgram::new(vec![]);
        assert!(prog.is_empty());
        assert_eq!(prog.reduce_count(), 0);
    }
}

//! 32×32 bit-matrix transpose for bulk element transfers.
//!
//! An element transfer between lane-major data (one `u32` value per
//! column) and the CSB's bit-sliced layout (one `u32` row word per
//! subarray, bit `c` = column `c`) is exactly a 32×32 bit-matrix
//! transpose. Doing it word-at-a-time turns the per-element, per-bit
//! `set_bit` walk (1,024 single-bit pokes per chain) into 32 row-word
//! accesses plus ~160 shift/xor ops.

/// Transposes `a` in place: afterwards, bit `j` of `a[i]` equals bit `i`
/// of the original `a[j]` (LSB-first in both indices).
///
/// Recursive block-swap scheme (Hacker's Delight §7-3), oriented for
/// LSB-first bit numbering: at each level, the *high* half-bits of the
/// low words trade places with the *low* half-bits of the high words.
pub fn transpose32(a: &mut [u32; 32]) {
    let mut j = 16;
    let mut m: u32 = 0x0000_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 32 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[u32; 32]) -> [u32; 32] {
        let mut out = [0u32; 32];
        for (i, o) in out.iter_mut().enumerate() {
            for (j, &w) in a.iter().enumerate() {
                *o |= ((w >> i) & 1) << j;
            }
        }
        out
    }

    #[test]
    fn matches_bitwise_reference() {
        let mut a = [0u32; 32];
        let mut x: u32 = 0x1234_5678;
        for v in a.iter_mut() {
            x = x.wrapping_mul(0x9E37_79B9).rotate_left(9);
            *v = x;
        }
        let want = reference(&a);
        let mut got = a;
        transpose32(&mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn identity_and_involution() {
        // Identity matrix (diagonal) is its own transpose.
        let mut diag = [0u32; 32];
        for (i, v) in diag.iter_mut().enumerate() {
            *v = 1 << i;
        }
        let mut t = diag;
        transpose32(&mut t);
        assert_eq!(t, diag);

        // Transposing twice restores any matrix.
        let mut a = [0u32; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as u32).wrapping_mul(0x85EB_CA6B) ^ 0x5A5A_5A5A;
        }
        let orig = a;
        transpose32(&mut a);
        transpose32(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn single_bit_moves_to_mirrored_position() {
        let mut a = [0u32; 32];
        a[3] = 1 << 17; // row 3, column 17
        transpose32(&mut a);
        let mut want = [0u32; 32];
        want[17] = 1 << 3;
        assert_eq!(a, want);
    }
}

//! Persistent broadcast worker pool and chain shards.
//!
//! The CSB's chains are partitioned once, at construction, into
//! [`Shard`]s — contiguous runs of chains that are *owned* (not borrowed)
//! by whoever is executing on them. Program broadcast moves each shard to
//! a long-lived worker thread through a channel, the worker runs the whole
//! microop program on its chains, and the shard (with its partial
//! reduction sums) moves back. Ownership transfer is what lets the pool
//! outlive any single call without scoped threads or `unsafe`: sending a
//! `Shard` is a pointer-width move, and the `Csb` gets its chains back at
//! the join.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::chain::Chain;
use crate::program::PlanOp;

/// A contiguous run of chains plus their window masks, active list, and a
/// reusable partial-sum scratch buffer.
///
/// `active` holds *local* indices of chains whose window mask is non-zero;
/// fully-masked chains are power-gated and skipped (Section V-F). `sums`
/// accumulates one window-masked popcount partial sum per
/// [`PlanOp::ReduceTags`] in the program, in program order, and is
/// cleared and refilled in place on every run — no per-microop
/// allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    pub chains: Vec<Chain>,
    pub windows: Vec<u32>,
    pub active: Vec<u32>,
    pub sums: Vec<u64>,
}

impl Shard {
    /// A zero-initialized shard of `len` chains with fully-open windows.
    pub fn new(len: usize) -> Self {
        Self {
            chains: vec![Chain::new(); len],
            windows: vec![u32::MAX; len],
            active: (0..len as u32).collect(),
            sums: Vec::new(),
        }
    }

    /// Runs a whole lowered microop program over this shard's active
    /// chains, leaving one partial sum per `ReduceTags` op in `self.sums`.
    ///
    /// Every microop except `ReduceTags` is chain-local, so the only
    /// cross-chain synchronization a program needs is the harvest of
    /// `sums` after this returns — one join per program, not per microop.
    ///
    /// Iteration is chain-outer, op-inner: each chain runs the *whole*
    /// program while its few-KB state is cache-resident, instead of the
    /// per-microop path's full sweep of the chain array for every op.
    /// Reduction order across chains changes, but the partial sums are
    /// plain additions, so the totals are identical.
    pub fn run(&mut self, ops: &[PlanOp]) {
        let Shard {
            chains,
            windows,
            active,
            sums,
        } = self;
        sums.clear();
        sums.resize(
            ops.iter()
                .filter(|op| matches!(op, PlanOp::ReduceTags { .. }))
                .count(),
            0,
        );
        for &i in active.iter() {
            let chain = &mut chains[i as usize];
            let window = windows[i as usize];
            let mut k = 0;
            for op in ops {
                if matches!(op, PlanOp::ReduceTags { .. }) {
                    if let Some(r) = chain.execute_plan(op, window) {
                        sums[k] += u64::from(r);
                    }
                    k += 1;
                } else {
                    chain.execute_plan(op, window);
                }
            }
        }
    }
}

/// A closure run on one owned shard by a worker thread. Results travel
/// through whatever channel the closure captures; the shard itself moves
/// back through the pool.
pub(crate) type ShardFn = Box<dyn FnOnce(&mut Shard) + Send + 'static>;

/// What a worker does with the shard it receives: broadcast a lowered
/// microop program over it, or run an arbitrary owned closure (context
/// snapshot/restore uses the latter).
enum Task {
    Broadcast(Arc<Vec<PlanOp>>),
    Apply(ShardFn),
}

/// One unit of work: a shard to own and the task to run on it.
struct Job {
    shard: Shard,
    task: Task,
}

struct Worker {
    /// `None` once the pool starts shutting down.
    tx: Option<Sender<Job>>,
    rx: Receiver<Shard>,
    handle: Option<JoinHandle<()>>,
}

/// Long-lived worker threads for the broadcast fan-out.
///
/// Workers are spawned lazily on first use and live until the pool (and
/// with it the owning [`Csb`](crate::Csb)) is dropped, so the per-call
/// cost of a broadcast is two channel transfers per shard instead of a
/// thread spawn + join per microop.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// An empty pool; threads spawn on the first [`WorkerPool::run`].
    pub fn new() -> Self {
        Self {
            workers: Vec::new(),
        }
    }

    /// Number of worker threads spawned so far.
    pub fn spawned(&self) -> usize {
        self.workers.len()
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (job_tx, job_rx) = channel::<Job>();
            let (res_tx, res_rx) = channel::<Shard>();
            let handle = std::thread::Builder::new()
                .name(format!("csb-broadcast-{}", self.workers.len()))
                .spawn(move || {
                    while let Ok(mut job) = job_rx.recv() {
                        match job.task {
                            Task::Broadcast(ops) => job.shard.run(&ops),
                            Task::Apply(f) => f(&mut job.shard),
                        }
                        if res_tx.send(job.shard).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn CSB broadcast worker");
            self.workers.push(Worker {
                tx: Some(job_tx),
                rx: res_rx,
                handle: Some(handle),
            });
        }
    }

    /// Fans the program out once over all shards and joins. Each shard is
    /// moved to its worker, run through every microop locally, and moved
    /// back with its partial sums filled in.
    pub fn run(&mut self, shards: &mut [Shard], ops: &Arc<Vec<PlanOp>>) {
        self.dispatch(shards, |_| Task::Broadcast(Arc::clone(ops)));
    }

    /// Runs one owned closure per shard concurrently — the context
    /// snapshot/restore fan-out. `make(i)` builds the closure for shard
    /// `i`; any results travel through channels the closures capture.
    pub fn apply(&mut self, shards: &mut [Shard], mut make: impl FnMut(usize) -> ShardFn) {
        self.dispatch(shards, |i| Task::Apply(make(i)));
    }

    fn dispatch(&mut self, shards: &mut [Shard], mut task: impl FnMut(usize) -> Task) {
        self.ensure(shards.len());
        for (i, (slot, worker)) in shards.iter_mut().zip(&self.workers).enumerate() {
            let job = Job {
                shard: std::mem::take(slot),
                task: task(i),
            };
            worker
                .tx
                .as_ref()
                .expect("worker pool is shut down")
                .send(job)
                .expect("CSB broadcast worker exited");
        }
        for (slot, worker) in shards.iter_mut().zip(&self.workers) {
            *slot = worker.rx.recv().expect("CSB broadcast worker panicked");
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("spawned", &self.spawned())
            .finish()
    }
}

/// Cloning a CSB must not share worker threads; the clone gets a fresh
/// pool that lazily spawns its own.
impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping every sender ends each worker's recv loop...
        for w in &mut self.workers {
            w.tx.take();
        }
        // ...then the threads can be joined.
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{MicroOp, Probe, TagDest, TagMode};
    use crate::program::lower;

    fn sample_shard(len: usize) -> Shard {
        let mut s = Shard::new(len);
        for (c, chain) in s.chains.iter_mut().enumerate() {
            for col in 0..Chain::LANES {
                chain.write_element(1, col, (c * 37 + col) as u32);
            }
        }
        s
    }

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::Search {
                probes: vec![Probe::row(0, 1, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 1 },
        ]
    }

    fn sample_plan() -> Vec<PlanOp> {
        sample_ops().iter().map(lower).collect()
    }

    #[test]
    fn shard_run_matches_direct_chain_execution() {
        let ops = sample_ops();
        let mut shard = sample_shard(3);
        let mut reference = shard.clone();

        shard.run(&sample_plan());

        let mut want_sums = Vec::new();
        for op in &ops {
            let mut sum = 0u64;
            for (chain, &w) in reference.chains.iter_mut().zip(&reference.windows) {
                if let Some(r) = chain.execute(op, w) {
                    sum += u64::from(r);
                }
            }
            if matches!(op, MicroOp::ReduceTags { .. }) {
                want_sums.push(sum);
            }
        }
        assert_eq!(shard.sums, want_sums);
        assert_eq!(shard.chains, reference.chains);
    }

    #[test]
    fn shard_run_skips_inactive_chains() {
        let mut shard = sample_shard(4);
        shard.windows[2] = 0;
        shard.active = vec![0, 1, 3];
        let before = shard.chains[2].clone();
        shard.run(&sample_plan());
        assert_eq!(shard.chains[2], before, "power-gated chain must not change");
    }

    #[test]
    fn pool_run_equals_serial_run_and_reuses_workers() {
        let ops = Arc::new(sample_plan());
        let mut pooled: Vec<Shard> = (0..4).map(|i| sample_shard(2 + i)).collect();
        let mut serial = pooled.clone();

        let mut pool = WorkerPool::new();
        pool.run(&mut pooled, &ops);
        pool.run(&mut pooled, &ops); // second dispatch reuses threads
        assert_eq!(pool.spawned(), 4);

        for s in serial.iter_mut() {
            s.run(&ops);
            s.run(&ops);
        }
        for (p, s) in pooled.iter().zip(&serial) {
            assert_eq!(p.chains, s.chains);
            assert_eq!(p.sums, s.sums);
        }
    }
}
